package physical

import (
	"context"
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

// HashAggregateExec implements grouped aggregation as two hash phases with
// a shuffle between them — partial aggregation per input partition (the
// map-side combine), a hash exchange on the grouping key, and a final merge
// phase — mirroring Spark SQL's partial/final Aggregate pairs.
//
// Aggregate output expressions may embed aggregate functions inside larger
// expressions (e.g. the DecimalAggregates rewrite produces
// MakeDecimal(Sum(...))): execution extracts every AggregateFunc subtree,
// maintains one buffer per function, and evaluates the surrounding
// expression over [groupValues..., aggResults...] at the end.
type HashAggregateExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	AdaptiveNote
	Grouping []expr.Expression
	Aggs     []expr.Expression // Named result expressions
	Child    SparkPlan
	// Partitions, when positive, caps the exchange's reducer count below
	// the session default (chosen by the planner from the estimated input
	// size).
	Partitions int
}

func (h *HashAggregateExec) Children() []SparkPlan { return []SparkPlan{h.Child} }
func (h *HashAggregateExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *h
	c.Child = children[0]
	return &c
}
func (h *HashAggregateExec) Output() []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(h.Aggs))
	for i, e := range h.Aggs {
		out[i] = e.(expr.Named).ToAttribute()
	}
	return out
}
func (h *HashAggregateExec) SimpleString() string {
	return fmt.Sprintf("HashAggregate keys=[%s] results=[%s]",
		exprListString(h.Grouping), exprListString(h.Aggs))
}
func (h *HashAggregateExec) String() string { return Format(h) }

// aggPartial is a per-group partial state record flowing through the
// shuffle.
type aggPartial struct {
	key       string
	groupVals row.Row
	buffers   []any
}

func (h *HashAggregateExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	input := h.Child.Output()

	// Bind grouping expressions.
	groupEvals := make([]func(row.Row) any, len(h.Grouping))
	for i, g := range h.Grouping {
		groupEvals[i] = ctx.evaluator(bind(g, input))
	}

	// Extract aggregate functions (bound to input) and build result
	// expressions over the synthetic [groups..., aggValues...] row.
	fns, resultExprs := h.splitAggregates(input)
	resultEvals := make([]func(row.Row) any, len(resultExprs))
	for i, e := range resultExprs {
		resultEvals[i] = ctx.evaluator(e)
	}

	keyOrdinals := make([]int, len(h.Grouping))
	for i := range keyOrdinals {
		keyOrdinals[i] = i
	}

	// Phase 1: partial aggregation per partition. With codegen enabled and
	// a single integral grouping key, the generated path hashes the raw
	// integer and skips per-row group-row and key-string allocation — the
	// "avoids expensive allocation of key-value pairs" specialization the
	// paper credits for the Figure 9 DataFrame win.
	var partials *rdd.RDD[aggPartial]
	if ctx.Codegen && len(h.Grouping) == 1 && types.IsIntegral(h.Grouping[0].DataType()) && !h.Grouping[0].Nullable() {
		groupEval := groupEvals[0]
		partials = rdd.MapPartitions(h.Child.Execute(ctx), func(_ int, in []row.Row) []aggPartial {
			groups := make(map[int64]*aggPartial, 64)
			for _, r := range in {
				kv := groupEval(r)
				var key int64
				if i32, ok := kv.(int32); ok {
					key = int64(i32)
				} else {
					key = kv.(int64)
				}
				g, ok := groups[key]
				if !ok {
					bufs := make([]any, len(fns))
					for i, fn := range fns {
						bufs[i] = fn.NewBuffer()
					}
					g = &aggPartial{groupVals: row.Row{kv}, buffers: bufs}
					groups[key] = g
				}
				for i, fn := range fns {
					g.buffers[i] = fn.Update(g.buffers[i], r)
				}
			}
			out := make([]aggPartial, 0, len(groups))
			for _, g := range groups {
				// The string key is only needed across the shuffle.
				g.key = row.GroupKey(g.groupVals, keyOrdinals)
				out = append(out, *g)
			}
			return out
		})
	} else {
		partials = rdd.MapPartitions(h.Child.Execute(ctx), func(_ int, in []row.Row) []aggPartial {
			groups := make(map[string]*aggPartial, 64)
			for _, r := range in {
				gv := make(row.Row, len(groupEvals))
				for i, ev := range groupEvals {
					gv[i] = ev(r)
				}
				key := row.GroupKey(gv, keyOrdinals)
				g, ok := groups[key]
				if !ok {
					bufs := make([]any, len(fns))
					for i, fn := range fns {
						bufs[i] = fn.NewBuffer()
					}
					g = &aggPartial{key: key, groupVals: gv, buffers: bufs}
					groups[key] = g
				}
				for i, fn := range fns {
					g.buffers[i] = fn.Update(g.buffers[i], r)
				}
			}
			out := make([]aggPartial, 0, len(groups))
			for _, g := range groups {
				out = append(out, *g)
			}
			return out
		})
	}

	return h.finalMerge(ctx, h.EnableMetrics(ctx.Metrics), partials, fns, resultEvals)
}

// finalMerge is phase 2 shared by the row-at-a-time and fused phase-1
// implementations: hash-exchange the partials on the group key, then merge
// per reducer and evaluate result expressions over the synthetic row.
// Keeping one implementation here is what guarantees the fused path inherits
// the grace-partitioned spill behavior (and its tests) unchanged.
func (h *HashAggregateExec) finalMerge(ctx *ExecContext, om *OperatorMetrics, partials *rdd.RDD[aggPartial], fns []expr.AggregateFunc, resultEvals []func(row.Row) any) *rdd.RDD[row.Row] {
	// Global aggregation collapses to one partition; grouped aggregation
	// hash-exchanges on the key.
	numPart := ctx.ShufflePartitions
	if h.Partitions > 0 && h.Partitions < numPart {
		numPart = h.Partitions
	}
	if len(h.Grouping) == 0 {
		numPart = 1
	}
	shuffled := rdd.PartitionByHash(partials, numPart, func(p aggPartial) uint64 {
		return row.HashValue(p.key)
	})

	// Phase 2: final merge + result evaluation. Under a memory budget (and
	// when every aggregate can round-trip its buffer through the spill
	// codec — all built-ins can) the merge map is a grace hash aggregation
	// that partitions itself to disk instead of growing unbounded.
	if fnsS := spillableFns(fns); ctx.SpillEnabled() && fnsS != nil {
		return rdd.MapPartitionsCtx(shuffled, func(_ context.Context, p int, in []aggPartial) ([]row.Row, error) {
			start := time.Now()
			g := newSpillableGroups(ctx, "agg", fnsS)
			defer g.Close()
			for i := range in {
				part := &in[i]
				err := g.upsert(part.key, part.groupVals, func(st *aggState) {
					for j, fn := range fns {
						st.buffers[j] = fn.Merge(st.buffers[j], part.buffers[j])
					}
				})
				if err != nil {
					return nil, err
				}
			}
			states, err := g.Finish()
			if err != nil {
				return nil, err
			}
			// A global aggregate over an empty input still emits one row.
			if len(h.Grouping) == 0 && len(states) == 0 && p == 0 {
				bufs := make([]any, len(fns))
				for i, fn := range fns {
					bufs[i] = fn.NewBuffer()
				}
				states = append(states, &aggState{buffers: bufs})
			}
			out := make([]row.Row, 0, len(states))
			for _, st := range states {
				synthetic := make(row.Row, len(h.Grouping)+len(fns))
				copy(synthetic, st.groupVals)
				for i, fn := range fns {
					synthetic[len(h.Grouping)+i] = fn.Result(st.buffers[i])
				}
				result := make(row.Row, len(resultEvals))
				for i, ev := range resultEvals {
					result[i] = ev(synthetic)
				}
				out = append(out, result)
			}
			om.RecordPartition(len(out), time.Since(start))
			om.RecordSpill(g.Stats())
			return out, nil
		})
	}
	return rdd.MapPartitions(shuffled, func(p int, in []aggPartial) []row.Row {
		start := time.Now()
		groups := make(map[string]*aggPartial, len(in))
		order := make([]string, 0, len(in))
		for i := range in {
			g, ok := groups[in[i].key]
			if !ok {
				cp := in[i]
				groups[cp.key] = &cp
				order = append(order, cp.key)
				continue
			}
			for j, fn := range fns {
				g.buffers[j] = fn.Merge(g.buffers[j], in[i].buffers[j])
			}
		}
		// A global aggregate over an empty input still emits one row
		// (SELECT count(*) FROM empty => 0).
		if len(h.Grouping) == 0 && len(order) == 0 && p == 0 {
			bufs := make([]any, len(fns))
			for i, fn := range fns {
				bufs[i] = fn.NewBuffer()
			}
			groups[""] = &aggPartial{buffers: bufs}
			order = append(order, "")
		}
		out := make([]row.Row, 0, len(order))
		for _, key := range order {
			g := groups[key]
			synthetic := make(row.Row, len(h.Grouping)+len(fns))
			copy(synthetic, g.groupVals)
			for i, fn := range fns {
				synthetic[len(h.Grouping)+i] = fn.Result(g.buffers[i])
			}
			result := make(row.Row, len(resultEvals))
			for i, ev := range resultEvals {
				result[i] = ev(synthetic)
			}
			out = append(out, result)
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}

// splitAggregates extracts the distinct aggregate functions from the result
// expressions (binding their children to the input schema) and rewrites the
// result expressions over the synthetic row layout
// [group0..groupG-1, agg0..aggN-1].
func (h *HashAggregateExec) splitAggregates(input []*expr.AttributeReference) ([]expr.AggregateFunc, []expr.Expression) {
	var fns []expr.AggregateFunc
	fnKeys := make(map[string]int)

	// Grouping expressions map to synthetic ordinals by structural match.
	groupRefs := make([]expr.Expression, len(h.Grouping))
	copy(groupRefs, h.Grouping)

	rewrite := func(e expr.Expression) expr.Expression {
		return expr.TransformDown(e, func(x expr.Expression) (expr.Expression, bool) {
			// Whole-expression match against a grouping expression.
			for gi, g := range groupRefs {
				if expr.Equivalent(x, g) {
					return &expr.BoundReference{
						Ordinal: gi,
						Type:    g.DataType(),
						Null:    g.Nullable(),
					}, true
				}
			}
			if fn, ok := x.(expr.AggregateFunc); ok {
				key := fn.String()
				idx, seen := fnKeys[key]
				if !seen {
					idx = len(fns)
					fnKeys[key] = idx
					bound := bind(fn, input).(expr.AggregateFunc)
					fns = append(fns, bound)
				}
				return &expr.BoundReference{
					Ordinal: len(h.Grouping) + idx,
					Type:    fn.DataType(),
					Null:    fn.Nullable(),
				}, true
			}
			return nil, false
		})
	}

	results := make([]expr.Expression, len(h.Aggs))
	for i, e := range h.Aggs {
		// Strip the top-level alias; naming lives in Output().
		if a, ok := e.(*expr.Alias); ok {
			results[i] = rewrite(a.Child)
		} else {
			results[i] = rewrite(e)
		}
	}
	return fns, results
}

// DistinctExec removes duplicate rows via a hash exchange.
type DistinctExec struct {
	PlanEstimate
	PlanMetrics
	AdaptiveNote
	Child SparkPlan
	// Partitions, when positive, caps the exchange's reducer count below
	// the session default.
	Partitions int
}

func (d *DistinctExec) Children() []SparkPlan { return []SparkPlan{d.Child} }
func (d *DistinctExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *d
	c.Child = children[0]
	return &c
}
func (d *DistinctExec) Output() []*expr.AttributeReference { return d.Child.Output() }
func (d *DistinctExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	n := len(d.Child.Output())
	ords := make([]int, n)
	for i := range ords {
		ords[i] = i
	}
	numPart := ctx.ShufflePartitions
	if d.Partitions > 0 && d.Partitions < numPart {
		numPart = d.Partitions
	}
	shuffled := rdd.PartitionByHashCodec(d.Child.Execute(ctx), numPart, func(r row.Row) uint64 {
		return row.Hash(r, ords)
	}, rowShuffleCodec)
	om := d.EnableMetrics(ctx.Metrics)
	// Under a memory budget the dedup map is the aggregation machinery with
	// zero aggregate buffers: grace-partitioned to disk, re-merged on read,
	// emitted in first-seen order.
	if ctx.SpillEnabled() {
		return rdd.MapPartitionsCtx(shuffled, func(_ context.Context, _ int, in []row.Row) ([]row.Row, error) {
			start := time.Now()
			g := newSpillableGroups(ctx, "distinct", nil)
			defer g.Close()
			for _, r := range in {
				if err := g.upsert(row.GroupKey(r, ords), r, func(*aggState) {}); err != nil {
					return nil, err
				}
			}
			states, err := g.Finish()
			if err != nil {
				return nil, err
			}
			out := make([]row.Row, 0, len(states))
			for _, st := range states {
				out = append(out, st.groupVals)
			}
			om.RecordPartition(len(out), time.Since(start))
			om.RecordSpill(g.Stats())
			return out, nil
		})
	}
	return rdd.MapPartitions(shuffled, func(_ int, in []row.Row) []row.Row {
		start := time.Now()
		seen := make(map[string]struct{}, len(in))
		out := make([]row.Row, 0, len(in))
		for _, r := range in {
			k := row.GroupKey(r, ords)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}
func (d *DistinctExec) SimpleString() string { return "Distinct" }
func (d *DistinctExec) String() string       { return Format(d) }
