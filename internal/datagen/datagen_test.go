package datagen

import (
	"strings"
	"testing"

	"repro/internal/row"
)

func TestGeneratorsAreDeterministic(t *testing.T) {
	for i := int64(0); i < 100; i++ {
		a := RankingRow(1, i)
		b := RankingRow(1, i)
		for j := range a {
			if !row.Equal(a[j], b[j]) {
				t.Fatalf("rankings not deterministic at %d", i)
			}
		}
		if !row.Equal(UserVisitRow(2, i, 100)[0], UserVisitRow(2, i, 100)[0]) {
			t.Fatal("uservisits not deterministic")
		}
		if MessageText(3, i, 10, 0.9) != MessageText(3, i, 10, 0.9) {
			t.Fatal("messages not deterministic")
		}
		if TweetJSON(4, i) != TweetJSON(4, i) {
			t.Fatal("tweets not deterministic")
		}
	}
	// Different seeds diverge.
	if RankingRow(1, 5)[1] == RankingRow(99, 5)[1] &&
		RankingRow(1, 6)[1] == RankingRow(99, 6)[1] &&
		RankingRow(1, 7)[1] == RankingRow(99, 7)[1] {
		t.Fatal("seeds should change the data")
	}
}

func TestRankingsShape(t *testing.T) {
	schema := RankingsSchema()
	if len(schema.Fields) != 3 {
		t.Fatal("rankings schema")
	}
	counts := map[string]int{}
	for i := int64(0); i < 20_000; i++ {
		r := RankingRow(7, i)
		rank := r[1].(int32)
		if rank < 1 || rank > 10000 {
			t.Fatalf("rank out of range: %d", rank)
		}
		switch {
		case rank > 1000:
			counts["a"]++
		case rank > 100:
			counts["b"]++
		case rank > 10:
			counts["c"]++
		}
	}
	// The selectivity ladder must be monotonic: 1a selects fewer rows
	// than 1b than 1c (paper: "1a ... most selective, 1c ... least").
	if !(counts["a"] < counts["a"]+counts["b"] && counts["b"] < counts["b"]+counts["c"]) {
		t.Fatalf("selectivity ladder broken: %v", counts)
	}
	if counts["a"] == 0 {
		t.Fatal("heavy tail must produce some very high ranks")
	}
}

func TestUserVisitsReferenceRankings(t *testing.T) {
	const numURLs = 500
	for i := int64(0); i < 1000; i++ {
		r := UserVisitRow(7, i, numURLs)
		dest := r[1].(string)
		if !strings.HasPrefix(dest, "url_") {
			t.Fatalf("dest = %q", dest)
		}
		date := r[2].(int32)
		if date < 3653 || date > 3653+365 {
			t.Fatalf("visitDate out of 1980 range: %d", date)
		}
		rev := r[3].(float64)
		if rev < 0 || rev > 100 {
			t.Fatalf("revenue out of range: %f", rev)
		}
	}
}

func TestMessageKeepFraction(t *testing.T) {
	const n = 20_000
	kept := 0
	for i := int64(0); i < n; i++ {
		if strings.Contains(MessageText(9, i, 10, 0.9), "spark") {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("keep fraction = %f, want ≈0.9 (Figure 10's 90%% filter)", frac)
	}
}

func TestPartitionedCoversAllRows(t *testing.T) {
	gen := Partitioned(1000, 7, func(i int64) row.Row { return row.Row{i} })
	seen := map[int64]bool{}
	for p := 0; p < 7; p++ {
		for _, r := range gen(p) {
			i := r[0].(int64)
			if seen[i] {
				t.Fatalf("row %d generated twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("covered %d rows", len(seen))
	}
}

func TestPairValueMatchesPairRow(t *testing.T) {
	for i := int64(0); i < 100; i++ {
		r := PairRow(5, i, 50)
		v := PairValue(5, i, 50)
		if r[0] != v.A || r[1] != v.B {
			t.Fatalf("boxed and unboxed generators diverge at %d", i)
		}
	}
}

func TestZipfKey(t *testing.T) {
	const n, keys = 50_000, 64
	counts := make([]int64, keys)
	for i := int64(0); i < n; i++ {
		k := ZipfKey(11, i, keys, 2.0)
		if k != ZipfKey(11, i, keys, 2.0) {
			t.Fatalf("zipf not deterministic at %d", i)
		}
		if k < 0 || k >= keys {
			t.Fatalf("key out of range: %d", k)
		}
		counts[k]++
	}
	// s = 2 must put the majority of rows on the hottest key and keep a
	// monotone-ish head: that head mass is what makes one hash bucket
	// blow past the skew threshold in the adaptive skew-split tests.
	if counts[0] < n/2 {
		t.Fatalf("key 0 holds %d of %d rows; want a hot majority", counts[0], n)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Fatalf("head not decreasing: %v", counts[:4])
	}
	var tail int64
	for _, c := range counts[1:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("degenerate: all rows on one key")
	}
	// s = 0 degenerates to uniform: no key should dominate.
	uni := make([]int64, keys)
	for i := int64(0); i < n; i++ {
		uni[ZipfKey(11, i, keys, 0)]++
	}
	for k, c := range uni {
		if c > n/keys*3 {
			t.Fatalf("uniform mode skewed at key %d: %d", k, c)
		}
	}
}
