// Package datagen produces the deterministic synthetic workloads behind
// the paper's evaluation (§6): the Pavlo et al. web-analytics tables
// (rankings, uservisits) used by the AMPLab big data benchmark (Figure 8),
// the integer-pair dataset of the DataFrame-vs-native comparison
// (Figure 9), the message corpus of the two-stage pipeline (Figure 10),
// and JSON tweet records for the §5.1 schema-inference demos.
//
// All generators are pure functions of (seed, index), so partitions can be
// generated independently inside RDD tasks and regenerated on lineage
// recovery without storing the dataset.
package datagen

import (
	"fmt"
	"math"

	"repro/internal/row"
	"repro/internal/types"
)

// rng is SplitMix64; each record derives its randomness from (seed, i).
func rng(seed, i uint64) uint64 {
	x := seed ^ (i+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rngFloat(seed, i uint64) float64 {
	return float64(rng(seed, i)>>11) / float64(1<<53)
}

// RankingsSchema is the Pavlo benchmark's rankings table:
// (pageURL STRING, pageRank INT, avgDuration INT).
func RankingsSchema() types.StructType {
	return types.StructType{}.
		Add("pageURL", types.String, false).
		Add("pageRank", types.Int, false).
		Add("avgDuration", types.Int, false)
}

// RankingRow generates rankings row i. Page ranks follow a heavy-tailed
// distribution so the Figure 8 selectivity parameters (pageRank > 1000 /
// 100 / 10) select roughly the benchmark's "most selective … least
// selective" progression.
func RankingRow(seed uint64, i int64) row.Row {
	u := uint64(i)
	// Zipf-ish: rank = 10000 / (1 + k) with k uniform keeps a long tail.
	r := rngFloat(seed, u)
	rank := int32(10000.0 / (1.0 + 9999.0*r))
	duration := int32(1 + rng(seed+1, u)%99)
	return row.Row{pageURL(i), rank, duration}
}

func pageURL(i int64) string { return fmt.Sprintf("url_%09d", i) }

// UserVisitsSchema is the Pavlo uservisits table (the benchmark subset used
// by queries 2-4): sourceIP, destURL, visitDate, adRevenue, userAgent,
// countryCode, languageCode, searchWord, duration.
func UserVisitsSchema() types.StructType {
	return types.StructType{}.
		Add("sourceIP", types.String, false).
		Add("destURL", types.String, false).
		Add("visitDate", types.Date, false).
		Add("adRevenue", types.Double, false).
		Add("userAgent", types.String, false).
		Add("countryCode", types.String, false).
		Add("languageCode", types.String, false).
		Add("searchWord", types.String, false).
		Add("duration", types.Int, false)
}

var countryCodes = []string{"USA", "DEU", "FRA", "GBR", "JPN", "BRA", "IND", "CHN", "AUS", "CAN"}
var searchWords = []string{"spark", "sql", "catalyst", "dataframe", "shark", "impala", "hive", "hadoop"}

// UserVisitRow generates uservisits row i against a rankings table of
// numURLs pages. Visit dates span 1980-01-01..1980-04-10 ±, matching the
// Figure 8 Q3 date-range parameters.
func UserVisitRow(seed uint64, i, numURLs int64) row.Row {
	u := uint64(i)
	ip := fmt.Sprintf("%d.%d.%d.%d",
		1+rng(seed, u)%223, rng(seed+1, u)%256, rng(seed+2, u)%256, 1+rng(seed+3, u)%254)
	dest := pageURL(int64(rng(seed+4, u) % uint64(numURLs)))
	// Days since epoch for 1980-01-01 is 3653; spread visits over a year.
	visit := int32(3653 + int32(rng(seed+5, u)%365))
	revenue := rngFloat(seed+6, u) * 100.0
	agent := fmt.Sprintf("agent-%d", rng(seed+7, u)%50)
	cc := countryCodes[rng(seed+8, u)%uint64(len(countryCodes))]
	lang := cc[:2]
	word := searchWords[rng(seed+9, u)%uint64(len(searchWords))]
	dur := int32(1 + rng(seed+10, u)%1000)
	return row.Row{ip, dest, visit, revenue, agent, cc, lang, word, dur}
}

// Partitioned generates n rows split across parts partitions, produced
// lazily per partition by gen.
func Partitioned(n int64, parts int, gen func(i int64) row.Row) func(p int) []row.Row {
	return func(p int) []row.Row {
		lo := n * int64(p) / int64(parts)
		hi := n * int64(p+1) / int64(parts)
		out := make([]row.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, gen(i))
		}
		return out
	}
}

// PairSchema is the Figure 9 dataset: (a INT, b INT) with numKeys distinct
// values of a.
func PairSchema() types.StructType {
	return types.StructType{}.
		Add("a", types.Int, false).
		Add("b", types.Int, false)
}

// PairRow generates pair row i with a ∈ [0, numKeys).
func PairRow(seed uint64, i, numKeys int64) row.Row {
	u := uint64(i)
	return row.Row{
		int32(rng(seed, u) % uint64(numKeys)),
		int32(rng(seed+1, u) % 1000),
	}
}

// ZipfKey draws a key in [0, keys) for record i from a Zipf-like power
// law with exponent s, via the inverse CDF of the continuous density
// p(x) ∝ x^(-s) on [1, keys+1]. Key 0 is the hottest; s = 0 degenerates
// to uniform and larger s concentrates more mass on the head (s = 2 puts
// over half the rows on key 0). Pure in (seed, i) like every generator
// here, so skewed partitions regenerate identically under lineage
// recovery.
func ZipfKey(seed uint64, i, keys int64, s float64) int64 {
	if keys <= 1 {
		return 0
	}
	u := rngFloat(seed, uint64(i))
	n := float64(keys + 1)
	var x float64
	if s == 1 {
		x = math.Exp(u * math.Log(n))
	} else {
		x = math.Pow(1+u*(math.Pow(n, 1-s)-1), 1/(1-s))
	}
	k := int64(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= keys {
		k = keys - 1
	}
	return k
}

// SkewedPairRow is PairRow with a Zipf(s)-distributed join key — the
// natural input for skew-split tests, where one reduce bucket dominates.
func SkewedPairRow(seed uint64, i, numKeys int64, s float64) row.Row {
	return row.Row{
		int32(ZipfKey(seed, i, numKeys, s)),
		int32(rng(seed+1, uint64(i)) % 1000),
	}
}

// Pair is the unboxed form used by the hand-written RDD baselines.
type Pair struct{ A, B int32 }

// PairValue is PairRow without boxing.
func PairValue(seed uint64, i, numKeys int64) Pair {
	u := uint64(i)
	return Pair{
		A: int32(rng(seed, u) % uint64(numKeys)),
		B: int32(rng(seed+1, u) % 1000),
	}
}

// Dictionary is the word list for the Figure 10 message corpus.
var Dictionary = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "spark",
	"sql", "query", "data", "frame", "catalyst", "plan", "filter", "join",
	"aggregate", "shuffle", "partition", "column", "row", "schema", "type",
	"table", "cache", "memory", "cluster", "node", "task", "stage", "job",
}

// MessageSchema is (id BIGINT, text STRING).
func MessageSchema() types.StructType {
	return types.StructType{}.
		Add("id", types.Long, false).
		Add("text", types.String, false)
}

// MessageText generates a message of ~avgWords words; roughly keepFraction
// of messages contain the word "spark" (the Figure 10 filter keeps ~90 %).
func MessageText(seed uint64, i int64, avgWords int, keepFraction float64) string {
	u := uint64(i)
	nWords := avgWords/2 + int(rng(seed, u)%uint64(avgWords))
	buf := make([]byte, 0, nWords*6)
	hasSpark := rngFloat(seed+1, u) < keepFraction
	sparkAt := -1
	if hasSpark {
		sparkAt = int(rng(seed+2, u) % uint64(nWords))
	}
	for w := 0; w < nWords; w++ {
		if w > 0 {
			buf = append(buf, ' ')
		}
		if w == sparkAt {
			buf = append(buf, "spark"...)
			continue
		}
		// Skew word frequencies (Zipf-ish) so word count has hot keys.
		z := rngFloat(seed+3, u*31+uint64(w))
		idx := int(math.Pow(z, 2.0) * float64(len(Dictionary)))
		if idx >= len(Dictionary) {
			idx = len(Dictionary) - 1
		}
		buf = append(buf, Dictionary[idx]...)
	}
	return string(buf)
}

// MessageRow generates message row i.
func MessageRow(seed uint64, i int64) row.Row {
	return row.Row{i, MessageText(seed, i, 10, 0.9)}
}

// TweetJSON renders a synthetic tweet as JSON (Figure 5's shape), with
// occasional missing loc and integer-vs-float coordinates to exercise the
// inference algorithm's generalizations.
func TweetJSON(seed uint64, i int64) string {
	u := uint64(i)
	text := MessageText(seed, i, 8, 0.3)
	tags := ""
	if rng(seed+1, u)%3 == 0 {
		tags = `"#spark"`
	}
	if rng(seed+2, u)%2 == 0 {
		lat := 20.0 + rngFloat(seed+3, u)*40
		long := -120.0 + rngFloat(seed+4, u)*60
		if rng(seed+5, u)%4 == 0 {
			// Integer coordinates in some records force FLOAT/DOUBLE
			// generalization, as in the paper's Figure 5.
			return fmt.Sprintf(`{"text": %q, "tags": [%s], "loc": {"lat": %d, "long": %d}}`,
				text, tags, int(lat), int(long))
		}
		return fmt.Sprintf(`{"text": %q, "tags": [%s], "loc": {"lat": %.4f, "long": %.4f}}`,
			text, tags, lat, long)
	}
	return fmt.Sprintf(`{"text": %q, "tags": [%s]}`, text, tags)
}
