package experiments

import (
	"fmt"
	"path/filepath"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/datasource/colfile"
	"repro/internal/row"
)

// Figure 8: the AMPLab big data benchmark (Pavlo et al. web analytics) —
// scan (Q1a-c), aggregation (Q2a-c), join (Q3a-c) and a UDF-bound
// MapReduce-style query (Q4) — compared across three engines:
//
//   - Shark mode: this engine with code generation, whole-stage pipelining
//     and source pushdown disabled (interpreted row-at-a-time evaluation).
//   - Spark SQL mode: everything on.
//   - Native mode: hand-written Go loops over decoded columnar data — the
//     stand-in for Impala's compiled C++ execution.
//
// Data is stored in the columnar file format (the paper stores Parquet).
type AMPLab struct {
	Dir                    string
	NumRankings, NumVisits int64

	RankingsPath, VisitsPath string

	// Opened columnar files for the native engine (file bytes resident,
	// like the OS page cache on a warmed cluster; columns decode per
	// query, like Impala reading Parquet).
	rankingsRel *colfile.Relation
	visitsRel   *colfile.Relation
}

const amplabSeed = 0xa3f

// NewAMPLab generates the two tables, writes them as columnar files under
// dir, and decodes the columns the native engine needs.
func NewAMPLab(dir string, numRankings, numVisits int64) (*AMPLab, error) {
	a := &AMPLab{
		Dir:          dir,
		NumRankings:  numRankings,
		NumVisits:    numVisits,
		RankingsPath: filepath.Join(dir, "rankings.gcf"),
		VisitsPath:   filepath.Join(dir, "uservisits.gcf"),
	}

	rankings := make([]row.Row, numRankings)
	for i := int64(0); i < numRankings; i++ {
		rankings[i] = datagen.RankingRow(amplabSeed, i)
	}
	if err := colfile.Write(a.RankingsPath, datagen.RankingsSchema(), rankings, 1<<14); err != nil {
		return nil, err
	}

	visits := make([]row.Row, numVisits)
	for i := int64(0); i < numVisits; i++ {
		visits[i] = datagen.UserVisitRow(amplabSeed+1, i, numRankings)
	}
	if err := colfile.Write(a.VisitsPath, datagen.UserVisitsSchema(), visits, 1<<14); err != nil {
		return nil, err
	}

	var err error
	if a.rankingsRel, err = colfile.Open(a.RankingsPath); err != nil {
		return nil, err
	}
	if a.visitsRel, err = colfile.Open(a.VisitsPath); err != nil {
		return nil, err
	}
	return a, nil
}

// NewContext builds an engine in Spark SQL or Shark mode with the two
// tables and the Q4 UDF registered.
func (a *AMPLab) NewContext(shark bool) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	if shark {
		cfg = sparksql.SharkConfig()
	}
	ctx := sparksql.NewContextWithConfig(cfg)
	r, err := ctx.Read().ColFile(a.RankingsPath)
	if err != nil {
		return nil, err
	}
	r.RegisterTempTable("rankings")
	v, err := ctx.Read().ColFile(a.VisitsPath)
	if err != nil {
		return nil, err
	}
	v.RegisterTempTable("uservisits")
	if err := ctx.RegisterUDF("url_key", URLKey); err != nil {
		return nil, err
	}
	return ctx, nil
}

// Queries. The selectivity parameters follow the benchmark: 1a/1b/1c use
// pageRank > 1000/100/10; 2a/2b/2c group on 8/10/12-character IP prefixes;
// 3a/3b/3c widen the visitDate range.

// Q1 is the scan query.
func Q1(x int32) string {
	return fmt.Sprintf("SELECT pageURL, pageRank FROM rankings WHERE pageRank > %d", x)
}

// Q1Params are the a/b/c selectivity parameters.
var Q1Params = []int32{1000, 100, 10}

// Q2 is the aggregation query.
func Q2(prefix int) string {
	return fmt.Sprintf(
		"SELECT SUBSTR(sourceIP, 1, %d), SUM(adRevenue) FROM uservisits GROUP BY SUBSTR(sourceIP, 1, %d)",
		prefix, prefix)
}

// Q2Params are the a/b/c prefix lengths.
var Q2Params = []int{8, 10, 12}

// Q3 is the join query.
func Q3(cutoff string) string {
	return fmt.Sprintf(`
		SELECT sourceIP, SUM(adRevenue) AS totalRevenue, AVG(pageRank) AS avgPageRank
		FROM rankings R JOIN uservisits UV ON R.pageURL = UV.destURL
		WHERE UV.visitDate >= '1980-01-01' AND UV.visitDate <= '%s'
		GROUP BY sourceIP
		ORDER BY totalRevenue DESC
		LIMIT 1`, cutoff)
}

// Q3Params are the a/b/c date cutoffs (≈25 %, 50 %, 100 % of visits).
var Q3Params = []string{"1980-04-01", "1980-07-01", "1981-01-01"}

// Q4 is the UDF-bound query (the paper's Python Hive UDF analogue).
const Q4Query = "SELECT url_key(destURL), count(*) FROM uservisits GROUP BY url_key(destURL)"

// URLKey is the deliberately CPU-expensive UDF behind Q4: an iterated
// string hash, standing in for the benchmark's per-row UDF work.
func URLKey(url string) string {
	var h uint64 = 14695981039346656037
	for round := 0; round < 40; round++ {
		for i := 0; i < len(url); i++ {
			h ^= uint64(url[i])
			h *= 1099511628211
		}
	}
	return fmt.Sprintf("k%02d", h%64)
}

// RunSQL executes a query and returns the row count (forcing full
// materialization like the benchmark).
func RunSQL(ctx *sparksql.Context, query string) (int64, error) {
	df, err := ctx.SQL(query)
	if err != nil {
		return 0, err
	}
	rows, err := df.Collect()
	if err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// ---------------------------------------------------------------------------
// Native (hand-written) engine — the Impala stand-in.

// NativeQ1 decodes the two columns and scans with a tight loop.
func (a *AMPLab) NativeQ1(x int32) int64 {
	ranks, _, err := a.rankingsRel.Int32Column("pageRank")
	if err != nil {
		panic(err)
	}
	urls, _, err := a.rankingsRel.StringColumn("pageURL")
	if err != nil {
		panic(err)
	}
	var n int64
	for i := range ranks {
		if ranks[i] > x {
			_ = urls[i]
			n++
		}
	}
	return n
}

// NativeQ2 aggregates revenue by IP prefix.
func (a *AMPLab) NativeQ2(prefix int) int64 {
	ips, _, err := a.visitsRel.StringColumn("sourceIP")
	if err != nil {
		panic(err)
	}
	revs, _, err := a.visitsRel.Float64Column("adRevenue")
	if err != nil {
		panic(err)
	}
	agg := make(map[string]float64, 1<<16)
	for i := range ips {
		ip := ips[i]
		if len(ip) > prefix {
			ip = ip[:prefix]
		}
		agg[ip] += revs[i]
	}
	return int64(len(agg))
}

// NativeQ3 joins, aggregates and returns the top source IP.
func (a *AMPLab) NativeQ3(cutoff int32) (string, float64) {
	rURL, _, err := a.rankingsRel.StringColumn("pageURL")
	if err != nil {
		panic(err)
	}
	rRank, _, err := a.rankingsRel.Int32Column("pageRank")
	if err != nil {
		panic(err)
	}
	vIP, _, err := a.visitsRel.StringColumn("sourceIP")
	if err != nil {
		panic(err)
	}
	vDest, _, err := a.visitsRel.StringColumn("destURL")
	if err != nil {
		panic(err)
	}
	vDate, _, err := a.visitsRel.Int32Column("visitDate")
	if err != nil {
		panic(err)
	}
	vRev, _, err := a.visitsRel.Float64Column("adRevenue")
	if err != nil {
		panic(err)
	}
	ranks := make(map[string]int32, len(rURL))
	for i, u := range rURL {
		ranks[u] = rRank[i]
	}
	type acc struct {
		rev    float64
		rank   int64
		visits int64
	}
	agg := make(map[string]*acc, 1<<16)
	for i := range vIP {
		if vDate[i] < 3653 || vDate[i] > cutoff {
			continue
		}
		rank, ok := ranks[vDest[i]]
		if !ok {
			continue
		}
		s, ok := agg[vIP[i]]
		if !ok {
			s = &acc{}
			agg[vIP[i]] = s
		}
		s.rev += vRev[i]
		s.rank += int64(rank)
		s.visits++
	}
	bestIP, bestRev := "", -1.0
	for ip, s := range agg {
		if s.rev > bestRev {
			bestIP, bestRev = ip, s.rev
		}
	}
	return bestIP, bestRev
}

// Q3Cutoffs mirror Q3Params as day numbers.
var Q3Cutoffs = []int32{3653 + 91, 3653 + 182, 3653 + 366}

// NativeQ4 runs the UDF aggregation with direct calls.
func (a *AMPLab) NativeQ4() int64 {
	dests, _, err := a.visitsRel.StringColumn("destURL")
	if err != nil {
		panic(err)
	}
	agg := make(map[string]int64, 64)
	for _, u := range dests {
		agg[URLKey(u)]++
	}
	return int64(len(agg))
}
