package experiments

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestFig4AllStrategiesAgree(t *testing.T) {
	f := NewFig4()
	for _, x := range []int64{0, 1, -7, 1 << 40} {
		want := 3 * x
		if got := f.Interpreted(x); got != want {
			t.Fatalf("interpreted(%d) = %d", x, got)
		}
		if got := f.Generated(x); got != want {
			t.Fatalf("generated(%d) = %d", x, got)
		}
		if got := f.GeneratedUnboxed(x); got != want {
			t.Fatalf("unboxed(%d) = %d", x, got)
		}
		if got := f.HandWritten(x); got != want {
			t.Fatalf("hand(%d) = %d", x, got)
		}
	}
}

func TestFig9ImplementationsAgree(t *testing.T) {
	f := NewFig9(20_000, 500)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFig10PipelinesAgree(t *testing.T) {
	f := NewFig10(3_000)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if f.BytesThroughDFS() == 0 {
		t.Fatal("separate pipeline should move bytes through the DFS")
	}
}

func TestAMPLabEnginesAgree(t *testing.T) {
	a, err := NewAMPLab(t.TempDir(), 2_000, 6_000)
	if err != nil {
		t.Fatal(err)
	}
	shark, err := a.NewContext(true)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := a.NewContext(false)
	if err != nil {
		t.Fatal(err)
	}

	// Q1: all engines agree on the row count for each selectivity.
	for _, x := range Q1Params {
		want := a.NativeQ1(x)
		nShark, err := RunSQL(shark, Q1(x))
		if err != nil {
			t.Fatal(err)
		}
		nSpark, err := RunSQL(spark, Q1(x))
		if err != nil {
			t.Fatal(err)
		}
		if nShark != want || nSpark != want {
			t.Fatalf("Q1(%d): native=%d shark=%d spark=%d", x, want, nShark, nSpark)
		}
	}

	// Q2: group counts agree.
	for _, p := range Q2Params {
		want := a.NativeQ2(p)
		got, err := RunSQL(spark, Q2(p))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Q2(%d): native=%d spark=%d", p, want, got)
		}
	}

	// Q3: the winning source IP's revenue agrees.
	for i, cutoff := range Q3Params {
		ip, rev := a.NativeQ3(Q3Cutoffs[i])
		df, err := spark.SQL(Q3(cutoff))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := df.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("Q3(%s): got %d rows", cutoff, len(rows))
		}
		gotRev := rows[0][1].(float64)
		if diff := gotRev - rev; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("Q3(%s): native (%s, %f) vs spark %v", cutoff, ip, rev, rows[0])
		}
	}

	// Q4: bucket counts agree.
	want := a.NativeQ4()
	got, err := RunSQL(spark, Q4Query)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Q4: native=%d spark=%d", want, got)
	}
}

func TestFederationPushdownReducesTransfer(t *testing.T) {
	fed, err := NewFederation(1_000, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	rowsOff, bytesOff, err := fed.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	rowsOn, bytesOn, err := fed.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if rowsOff != rowsOn {
		t.Fatalf("result rows differ: %d vs %d", rowsOff, rowsOn)
	}
	if rowsOn == 0 {
		t.Fatal("federated query returned no rows")
	}
	if bytesOn*2 >= bytesOff {
		t.Fatalf("pushdown should cut link bytes substantially: on=%d off=%d", bytesOn, bytesOff)
	}
	log := fed.RemoteQueryLog()
	if len(log) == 0 {
		t.Fatal("remote database saw no queries")
	}
}

func TestCacheStudyFootprint(t *testing.T) {
	study, err := NewCacheStudy(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if study.Info.ObjectBytes < 4*study.Info.ColumnarBytes {
		t.Fatalf("columnar cache should be several times smaller: columnar=%d objects=%d",
			study.Info.ColumnarBytes, study.Info.ObjectBytes)
	}
	if _, err := study.ScanAggregate(); err != nil {
		t.Fatal(err)
	}
	// Both cache regimes compute identical results.
	a, err := study.ScanAggregate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := study.ScanAggregateObjectCache()
	if err != nil {
		t.Fatal(err)
	}
	if diff := a - b; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cache regimes disagree: %f vs %f", a, b)
	}
}

func TestVectorizedStudyVerify(t *testing.T) {
	study, err := NewVectorizedStudy(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFusionStudyVerify checks the fusion ablation's correctness contract —
// all three engines agree on both shapes — and that the fused engine's plans
// actually contain the fused operators (otherwise the ablation would be
// timing the thing it claims to have replaced).
func TestFusionStudyVerify(t *testing.T) {
	study, err := NewFusionStudy(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Verify(); err != nil {
		t.Fatal(err)
	}
	agg, join, err := study.FusedPlans()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(agg, "FusedHashAggregate") {
		t.Fatalf("aggregate plan not fused:\n%s", agg)
	}
	if !strings.Contains(join, "FusedBroadcastHashJoin") {
		t.Fatalf("join plan not fused:\n%s", join)
	}
}

// TestFusionGate is the perf gate wired into scripts/check.sh: with
// PERF_GATE=1 it fails the build unless fused aggregation beats the unfused
// vectorized path by ≥2x on the cached Q1 aggregate shape (the ISSUE's
// acceptance floor), and the fused join probe is at least as fast as the
// unfused one. Env-gated because thresholds are meaningless on a machine
// running other work.
func TestFusionGate(t *testing.T) {
	if os.Getenv("PERF_GATE") == "" {
		t.Skip("set PERF_GATE=1 to run the fusion regression gate")
	}
	study, err := NewFusionStudy(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Verify(); err != nil {
		t.Fatal(err)
	}
	measure := func(run func(string) (int64, error), q string) time.Duration {
		// Best of 3: the gate asks whether the speedup CAN hold, not
		// whether every noisy sample does.
		best := time.Duration(1<<63 - 1)
		for try := 0; try < 3; try++ {
			start := time.Now()
			if _, err := run(q); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	aggQ := FusedAggQuery()
	vec := measure(study.RunVec, aggQ)
	fused := measure(study.RunFused, aggQ)
	speedup := float64(vec) / float64(fused)
	t.Logf("fused aggregate: vectorized=%v fused=%v speedup=%.2fx", vec, fused, speedup)
	if speedup < 2.0 {
		t.Fatalf("fused aggregation speedup %.2fx, below the 2x acceptance floor", speedup)
	}
	joinQ := FusedJoinQuery()
	vecJ := measure(study.RunVec, joinQ)
	fusedJ := measure(study.RunFused, joinQ)
	speedupJ := float64(vecJ) / float64(fusedJ)
	t.Logf("fused join probe: vectorized=%v fused=%v speedup=%.2fx", vecJ, fusedJ, speedupJ)
	if speedupJ < 1.0 {
		t.Fatalf("fused join probe is slower than the unfused path (%.2fx)", speedupJ)
	}
}

func TestMetricsOverheadStudyVerify(t *testing.T) {
	study, err := NewMetricsOverheadStudy(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Verify(); err != nil {
		t.Fatal(err)
	}
	// Smoke the measurement path; the regression threshold lives in the
	// PERF_GATE test, not here — a loaded CI machine must not flake this.
	if _, err := study.Overhead(true, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := study.Overhead(false, 2); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsOverheadGate is the perf gate wired into scripts/check.sh: with
// PERF_GATE=1 it fails the build when instrumented Q1 throughput regresses
// more than 5% against the metrics-off baseline, on either execution path.
// It is env-gated because the threshold is meaningless on a machine running
// other work.
func TestMetricsOverheadGate(t *testing.T) {
	if os.Getenv("PERF_GATE") == "" {
		t.Skip("set PERF_GATE=1 to run the metrics-overhead regression gate")
	}
	study, err := NewMetricsOverheadStudy(200_000)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 0.05
	for _, path := range []struct {
		name       string
		vectorized bool
	}{{"row", false}, {"vectorized", true}} {
		// Best of 3 measurements: the gate asks whether the overhead CAN
		// stay under the limit, not whether every noisy sample does.
		best := 1.0
		for try := 0; try < 3; try++ {
			ov, err := study.Overhead(path.vectorized, 10)
			if err != nil {
				t.Fatal(err)
			}
			if ov < best {
				best = ov
			}
		}
		t.Logf("metrics overhead on %s path: %.2f%%", path.name, best*100)
		if best > limit {
			t.Fatalf("metrics overhead on %s path is %.2f%%, above the %.0f%% budget",
				path.name, best*100, limit*100)
		}
	}
}

// The memory-budget ablation doubles as a correctness check: identical
// results at every budget, real spilling at the bounded ones, zero spill
// files left behind.
func TestSpillStudy(t *testing.T) {
	s, err := NewSpillStudy(6_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		t.Logf("%-12s budget=%-8d agg=%-12v join=%-12v spilled=%d B in %d runs",
			r.Mode, r.Budget, r.AggTime, r.JoinTime, r.SpillBytes, r.SpillRuns)
	}
}

// TestAdaptiveStudyVerify checks the adaptive ablation's soundness on
// every run: identical answers with adaptation on and off, and a plan
// that really was promoted. The speed thresholds live in the PERF_GATE
// test — a loaded CI machine must not flake this.
func TestAdaptiveStudyVerify(t *testing.T) {
	if err := NewAdaptiveStudy(20_000).Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveGate is the perf gate wired into scripts/check.sh: with
// PERF_GATE=1 it fails the build unless (a) adaptive execution is no
// slower than static planning on uniform data (within a 1.25x noise
// bound) and (b) the skewed-join ablation — where the size-blind static
// plan sorts 200k rows on both sides of the join that adaptation
// promotes to broadcast — speeds up by at least 2x. Env-gated because
// thresholds are meaningless on a machine running other work.
func TestAdaptiveGate(t *testing.T) {
	if os.Getenv("PERF_GATE") == "" {
		t.Skip("set PERF_GATE=1 to run the adaptive regression gate")
	}
	study := NewAdaptiveStudy(200_000)
	if err := study.Verify(); err != nil {
		t.Fatal(err)
	}
	measure := func(adaptive, skewed bool) time.Duration {
		// Best of 3: the gate asks whether the speedup CAN hold, not
		// whether every noisy sample does.
		best := time.Duration(1<<63 - 1)
		for try := 0; try < 3; try++ {
			d, _, err := study.Run(adaptive, skewed)
			if err != nil {
				t.Fatal(err)
			}
			if d < best {
				best = d
			}
		}
		return best
	}
	uniStatic := measure(false, false)
	uniAdaptive := measure(true, false)
	t.Logf("uniform: static=%v adaptive=%v (%.2fx)",
		uniStatic, uniAdaptive, float64(uniStatic)/float64(uniAdaptive))
	if float64(uniAdaptive) > 1.25*float64(uniStatic) {
		t.Fatalf("adaptive execution is %.2fx slower than static on uniform data",
			float64(uniAdaptive)/float64(uniStatic))
	}
	skewStatic := measure(false, true)
	skewAdaptive := measure(true, true)
	speedup := float64(skewStatic) / float64(skewAdaptive)
	t.Logf("skewed join: static=%v adaptive=%v speedup=%.2fx", skewStatic, skewAdaptive, speedup)
	if speedup < 2.0 {
		t.Fatalf("skewed-join ablation speedup %.2fx, below the 2x acceptance floor", speedup)
	}
}

func TestIngestStudyVerify(t *testing.T) {
	cfg := IngestConfig{Dir: t.TempDir(), Rows: 5_000, BatchSize: 500}
	res, err := RunIngestStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 10 {
		t.Fatalf("ran %d batches, want 10", res.Batches)
	}
	t.Logf("ingest: %.0f rows/s, WAL recovery %.1f ms, checkpoint %.1f ms, ckpt recovery %.1f ms",
		res.RowsPerSec, res.WALRecoveryMillis, res.CheckpointMillis, res.CkptRecoveryMillis)
}

// TestIngestGate is the perf gate wired into scripts/check.sh: with
// PERF_GATE=1 it fails the build when durable ingest throughput falls
// below the acceptance floor, or when recovery costs more than the ingest
// that produced the data (replay skips the per-transaction fsyncs, so it
// must win). Env-gated because thresholds are meaningless on a machine
// running other work.
func TestIngestGate(t *testing.T) {
	if os.Getenv("PERF_GATE") == "" {
		t.Skip("set PERF_GATE=1 to run the ingest regression gate")
	}
	// Best of 3: the gate asks whether the throughput CAN hold, not
	// whether every noisy sample does.
	var best *IngestResult
	for try := 0; try < 3; try++ {
		res, err := RunIngestStudy(DefaultIngestConfig(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || res.RowsPerSec > best.RowsPerSec {
			best = res
		}
	}
	t.Logf("ingest: %.0f rows/s over %d batches, WAL recovery %.1f ms, ckpt recovery %.1f ms",
		best.RowsPerSec, best.Batches, best.WALRecoveryMillis, best.CkptRecoveryMillis)
	if best.RowsPerSec < 100_000 {
		t.Fatalf("durable ingest %.0f rows/s, below the 100k rows/s acceptance floor", best.RowsPerSec)
	}
	if best.WALRecoveryMillis > best.IngestMillis {
		t.Fatalf("WAL replay (%.1f ms) is slower than the fsync-bound ingest that wrote it (%.1f ms)",
			best.WALRecoveryMillis, best.IngestMillis)
	}
	if best.CkptRecoveryMillis > best.IngestMillis {
		t.Fatalf("checkpoint recovery (%.1f ms) is slower than the ingest that wrote it (%.1f ms)",
			best.CkptRecoveryMillis, best.IngestMillis)
	}
}
