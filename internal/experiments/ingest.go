package experiments

// Ingest study: durable-table write throughput and recovery cost, the
// numbers EXPERIMENTS.md reports for the storage subsystem. One batch is
// one transaction — WAL append + fsync — so batch size is the classic
// durability/throughput dial. Recovery is measured twice: replaying the
// whole WAL from an empty checkpoint (worst case) and reopening right
// after a checkpoint (best case, manifest load only).

import (
	"fmt"
	"time"

	sparksql "repro"
	"repro/internal/row"
	"repro/internal/types"
)

// IngestConfig shapes one ingest study run.
type IngestConfig struct {
	// Dir is the durable data directory (must start empty).
	Dir string
	// Rows is the total row count to ingest.
	Rows int64
	// BatchSize is rows per transaction (per WAL fsync).
	BatchSize int64
}

// DefaultIngestConfig is what the tests and scripts/check.sh run.
func DefaultIngestConfig(dir string) IngestConfig {
	return IngestConfig{Dir: dir, Rows: 100_000, BatchSize: 1_000}
}

// IngestResult holds one run's measurements.
type IngestResult struct {
	Rows    int64
	Batches int64
	// IngestMillis is the wall time for all inserts (including fsyncs);
	// RowsPerSec is the derived throughput.
	IngestMillis float64
	RowsPerSec   float64
	// WALRecoveryMillis is reopening the directory with the entire load in
	// the WAL (full redo replay).
	WALRecoveryMillis float64
	// CheckpointMillis is the cost of writing the checkpoint;
	// CkptRecoveryMillis is reopening right after it (no replay).
	CheckpointMillis   float64
	CkptRecoveryMillis float64
}

func ingestContext(dir string) *sparksql.Context {
	cfg := sparksql.DefaultConfig()
	cfg.DataDir = dir
	// The study measures explicit phases; keep auto-checkpointing out.
	cfg.CheckpointBytes = 1 << 62
	return sparksql.NewContextWithConfig(cfg)
}

// RunIngestStudy ingests cfg.Rows rows in cfg.BatchSize transactions and
// measures throughput, then WAL-replay and post-checkpoint recovery times,
// verifying the recovered row count after each reopen.
func RunIngestStudy(cfg IngestConfig) (*IngestResult, error) {
	if cfg.Rows <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("ingest: bad config %+v", cfg)
	}
	res := &IngestResult{Rows: cfg.Rows}
	schema := types.StructType{}.
		Add("k", types.Long, false).
		Add("v", types.String, false)

	ctx := ingestContext(cfg.Dir)
	if err := ctx.Store().CreateTable("ingest", schema, false); err != nil {
		ctx.Close()
		return nil, err
	}
	batch := make([]row.Row, 0, cfg.BatchSize)
	start := time.Now()
	for n := int64(0); n < cfg.Rows; {
		batch = batch[:0]
		for int64(len(batch)) < cfg.BatchSize && n < cfg.Rows {
			batch = append(batch, row.Row{n, fmt.Sprintf("value-%08d", n)})
			n++
		}
		if _, err := ctx.Store().Insert("ingest", batch); err != nil {
			ctx.Close()
			return nil, err
		}
		res.Batches++
	}
	res.IngestMillis = float64(time.Since(start).Microseconds()) / 1000
	res.RowsPerSec = float64(cfg.Rows) / (res.IngestMillis / 1000)
	if err := ctx.Close(); err != nil {
		return nil, err
	}

	verify := func(ctx *sparksql.Context) error {
		info, ok := ctx.Store().Info("ingest")
		if !ok || info.Rows != cfg.Rows {
			return fmt.Errorf("ingest: recovered %+v, want %d rows", info, cfg.Rows)
		}
		return nil
	}

	// Worst-case recovery: the whole load is still in the WAL.
	start = time.Now()
	ctx = ingestContext(cfg.Dir)
	res.WALRecoveryMillis = float64(time.Since(start).Microseconds()) / 1000
	if err := verify(ctx); err != nil {
		ctx.Close()
		return nil, err
	}

	start = time.Now()
	if err := ctx.Store().Checkpoint(); err != nil {
		ctx.Close()
		return nil, err
	}
	res.CheckpointMillis = float64(time.Since(start).Microseconds()) / 1000
	if err := ctx.Close(); err != nil {
		return nil, err
	}

	// Best-case recovery: manifest + segment load, empty WAL.
	start = time.Now()
	ctx = ingestContext(cfg.Dir)
	res.CkptRecoveryMillis = float64(time.Since(start).Microseconds()) / 1000
	defer ctx.Close()
	if err := verify(ctx); err != nil {
		return nil, err
	}
	return res, nil
}
