package experiments

// Multi-process chaos: the distributed-execution counterpart of the
// in-process chaos study. The harness runs a coordinator context in this
// process and 3–5 real worker processes (the current executable re-execed
// with REPRO_WORKER_ADDR set — callers' TestMain must route that through
// sqlexec.RunIfWorker), then drives the SQL chaos workload while
// SIGKILLing workers mid-query, respawning them under the same identity,
// evicting one via dropped heartbeats and corrupting a task-result frame.
// Every query's result must stay byte-identical to a fault-free local
// golden run: worker loss may only ever cost time, never answers.

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	sparksql "repro"
	"repro/internal/cluster"
	"repro/internal/cluster/sqlwire"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

// MultiprocConfig shapes one multi-process chaos run.
type MultiprocConfig struct {
	// Workers is how many worker processes to spawn (the issue's 3–5).
	Workers int
	// N is the rankings table size.
	N int64
	// Chaos is the worker-side injected task-failure schedule, shipped to
	// every worker and mirrored on the coordinator so local fallback tasks
	// see the same faults. Zero FailureRate disables injection.
	Chaos ChaosConfig
	// KillWorker SIGKILLs one worker mid-query and respawns it under the
	// same identity (exercising session re-initialization).
	KillWorker bool
	// FrameFaults evicts one worker by dropping its heartbeats and then
	// corrupts a task-result frame, exercising CRC-driven eviction.
	FrameFaults bool
	// MemoryBudget, when non-zero, runs the workload under a spill-forcing
	// budget on the coordinator (the spill suite's distributed variant).
	MemoryBudget int64
}

// DefaultMultiprocConfig is the configuration the multiproc tests and
// scripts/check.sh run: three workers, every fault class enabled.
func DefaultMultiprocConfig() MultiprocConfig {
	return MultiprocConfig{
		Workers:     3,
		N:           1200,
		Chaos:       ChaosConfig{Seed: 0xD157, FailureRate: 0.1, FailedAttempts: 2},
		KillWorker:  true,
		FrameFaults: true,
	}
}

// MultiprocResult summarizes one run for reporting.
type MultiprocResult struct {
	// Queries is how many distributed statements were verified.
	Queries int
	// RemoteTasks is how many tasks completed on worker processes.
	RemoteTasks int64
	// FailedDispatches counts dispatches that errored (worker loss,
	// injected faults, frame faults) and were recovered from.
	FailedDispatches int64
	// Fallbacks counts tasks workers refused (ErrRemoteFallback) that
	// were computed locally — driven nonzero by the unshippable-table
	// phase and surfaced as the cluster.fallback counter.
	Fallbacks int64
	// Kills is how many worker processes were SIGKILLed or evicted.
	Kills int
	// RecoveryMillis is, per kill, the time from the fault to the next
	// successfully verified query (includes eviction detection, retry and
	// any local recompute).
	RecoveryMillis []float64
}

// multiprocQueries is the distributed workload: filter, aggregation,
// count, shuffle join and global sort — every exchange flavor.
func multiprocQueries() []string {
	return []string{
		"SELECT pageURL, pageRank FROM rankings WHERE pageRank > 30",
		"SELECT pageRank, COUNT(*), SUM(avgDuration) FROM rankings GROUP BY pageRank",
		"SELECT COUNT(*) FROM rankings WHERE pageRank > 50",
		"SELECT a.pageURL, a.pageRank, b.avgDuration FROM rankings a JOIN rankings b ON a.pageURL = b.pageURL",
		"SELECT DISTINCT pageRank FROM rankings ORDER BY pageRank",
	}
}

// runUnshippablePhase registers an RDD-backed temp view (which the
// session spec cannot encode), runs a distributed query over it, and
// verifies both the answer and that the refusal surfaced: the
// cluster.fallback counter rose and EXPLAIN ANALYZE's "== Cluster =="
// section reports the tasks computed locally.
func runUnshippablePhase(dist *sparksql.Context, res *MultiprocResult) error {
	schema := types.StructType{}.
		Add("k", types.Long, false).
		Add("v", types.Long, false)
	rows := make([]row.Row, 64)
	var wantSum int64
	for i := range rows {
		rows[i] = row.Row{int64(i % 8), int64(i)}
		wantSum += int64(i)
	}
	r := rdd.Parallelize(dist.RDDContext(), rows, 4)
	df, err := dist.CreateDataFrameFromRDD(schema, r)
	if err != nil {
		return fmt.Errorf("multiproc unshippable: %w", err)
	}
	df.RegisterTempTable("unshippable")

	before := dist.RDDContext().RemoteFallbacks()
	got, err := collectSQL(dist, "SELECT SUM(v) FROM unshippable")
	if err != nil {
		return fmt.Errorf("multiproc unshippable: %w", err)
	}
	if len(got) != 1 || fmt.Sprint(got[0][0]) != fmt.Sprint(wantSum) {
		return fmt.Errorf("multiproc unshippable: got %v, want [[%d]]", got, wantSum)
	}
	if dist.RDDContext().RemoteFallbacks() == before {
		return fmt.Errorf("multiproc: unshippable query never fell back to local compute")
	}
	res.Fallbacks = dist.RDDContext().RemoteFallbacks()

	qdf, err := dist.SQL("SELECT COUNT(*) FROM unshippable")
	if err != nil {
		return err
	}
	ea, err := qdf.ExplainAnalyze()
	if err != nil {
		return err
	}
	if !strings.Contains(ea, "== Cluster ==") {
		return fmt.Errorf("multiproc: EXPLAIN ANALYZE missing cluster section:\n%s", ea)
	}
	if !fallbackLine.MatchString(ea) {
		return fmt.Errorf("multiproc: cluster section does not report fallbacks:\n%s", ea)
	}
	return nil
}

var fallbackLine = regexp.MustCompile(`fallbacks: [1-9]\d* tasks computed locally`)

// workerProc is one spawned worker process.
type workerProc struct {
	id  string
	cmd *exec.Cmd
}

// spawnWorker re-execs the current binary as a worker joining addr. The
// child dies with the parent (PDEATHSIG) so a crashed harness cannot leak
// processes.
func spawnWorker(addr, id string) (*workerProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"REPRO_WORKER_ADDR="+addr,
		"REPRO_WORKER_ID="+id,
		"REPRO_WORKER_HEARTBEAT_MS=100",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// Reap in the background so kills do not leave zombies.
	w := &workerProc{id: id, cmd: cmd}
	go cmd.Wait()
	return w, nil
}

func (w *workerProc) kill() {
	w.cmd.Process.Kill()
}

// waitWorkers blocks until n workers are registered (or errors out).
func waitWorkers(ctx *sparksql.Context, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for ctx.Cluster().Coordinator().NumWorkers() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("multiproc: only %d/%d workers registered after %v",
				ctx.Cluster().Coordinator().NumWorkers(), n, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// RunMultiprocChaos runs the distributed chaos suite. The calling process
// must have passed sqlexec.RunIfWorker in its TestMain (or equivalent) so
// the re-exec spawns workers rather than recursing into the harness.
func RunMultiprocChaos(cfg MultiprocConfig) (*MultiprocResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	res := &MultiprocResult{}
	queries := multiprocQueries()

	// Fault-free local golden run.
	golden, err := chaosContext(cfg.N, false, false)
	if err != nil {
		return nil, err
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		rows, err := collectSQL(golden, q)
		if err != nil {
			return nil, fmt.Errorf("multiproc golden %q: %w", q, err)
		}
		want[i] = formatRows(rows)
	}

	// Coordinator context: aggressive heartbeat deadline so eviction (and
	// therefore recovery) is fast enough to measure in a test run.
	dcfg := sparksql.DefaultConfig()
	dcfg.Parallelism = 4
	dcfg.ShufflePartitions = 4
	dcfg.MemoryBudget = cfg.MemoryBudget
	dcfg.Cluster = &sparksql.ClusterOptions{
		HeartbeatTimeout: 700 * time.Millisecond,
		TaskTimeout:      30 * time.Second,
	}
	dist := sparksql.NewContextWithConfig(dcfg)
	defer dist.Close()
	if err := loadRankings(dist, cfg.N, false); err != nil {
		return nil, err
	}
	rc := dist.RDDContext()
	rc.SetBackoff(time.Microsecond, 50*time.Microsecond)
	if cfg.Chaos.FailureRate > 0 {
		rc.SetFailureHook(cfg.Chaos.hook())
		dist.Cluster().SetChaos(sqlwire.ChaosSpec{
			Enabled:        true,
			Seed:           cfg.Chaos.Seed,
			FailureRate:    cfg.Chaos.FailureRate,
			FailedAttempts: cfg.Chaos.FailedAttempts,
		})
		dist.Cluster().SetWorkerBackoff(time.Microsecond, 50*time.Microsecond, cfg.Chaos.Seed)
	}

	check := func(phase string, idx int) error {
		rows, err := collectSQL(dist, queries[idx])
		if err != nil {
			return fmt.Errorf("multiproc %s %q: %w", phase, queries[idx], err)
		}
		if formatRows(rows) != want[idx] {
			return fmt.Errorf("multiproc %s: %q diverged from local golden", phase, queries[idx])
		}
		res.Queries++
		return nil
	}

	// Phase 0: zero workers — graceful degradation to local execution.
	if err := check("zero-workers", 0); err != nil {
		return nil, err
	}
	if n := dist.Metrics().Counter("cluster.tasks.dispatched").Load(); n != 0 {
		return nil, fmt.Errorf("multiproc: %d tasks dispatched with no workers", n)
	}

	// Phase 1: spawn the fleet, run everything distributed.
	addr := dist.ClusterAddr()
	procs := make(map[string]*workerProc, cfg.Workers)
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	for i := 0; i < cfg.Workers; i++ {
		id := fmt.Sprintf("mp-w%d", i)
		p, err := spawnWorker(addr, id)
		if err != nil {
			return nil, fmt.Errorf("multiproc: spawn %s: %w", id, err)
		}
		procs[id] = p
	}
	if err := waitWorkers(dist, cfg.Workers, 10*time.Second); err != nil {
		return nil, err
	}
	for i := range queries {
		if err := check("distributed", i); err != nil {
			return nil, err
		}
	}

	// Phase 1b: a query over a table the session spec cannot ship. An
	// RDD-backed temp view is neither a LocalRelation nor a cached
	// relation, so collectTables skips it; workers fail analysis, refuse
	// with a fallback error, and every partition computes locally. The
	// fallback must be visible: the cluster.fallback counter and the
	// EXPLAIN ANALYZE "== Cluster ==" section both report it.
	if err := runUnshippablePhase(dist, res); err != nil {
		return nil, err
	}

	// Phase 2: SIGKILL one worker while a query is in flight, then verify
	// the whole workload again. The killed worker's shuffle output and
	// session state die with the process; lineage recompute and retry must
	// absorb the loss. Recovery latency is fault → next verified answer.
	if cfg.KillWorker {
		victim := procs["mp-w0"]
		var killed atomic.Bool
		go func() {
			time.Sleep(2 * time.Millisecond) // land mid-query, not between
			victim.kill()
			killed.Store(true)
		}()
		start := time.Now()
		for i := range queries {
			if err := check("worker-kill", i); err != nil {
				return nil, err
			}
		}
		for !killed.Load() {
			time.Sleep(time.Millisecond)
		}
		res.Kills++
		res.RecoveryMillis = append(res.RecoveryMillis,
			float64(time.Since(start).Microseconds())/1000)

		// Respawn under the same identity: the coordinator's init cache
		// still remembers mp-w0, so the first dispatch to the fresh process
		// must trip the uninitialized-session retry and re-ship the spec.
		p, err := spawnWorker(addr, "mp-w0")
		if err != nil {
			return nil, fmt.Errorf("multiproc: respawn: %w", err)
		}
		procs["mp-w0"] = p
		if err := waitWorkers(dist, cfg.Workers, 10*time.Second); err != nil {
			return nil, err
		}
		if err := check("respawn", 1); err != nil {
			return nil, err
		}
	}

	// Phase 3: frame faults. Drop every heartbeat from one worker — the
	// janitor must evict it even though its TCP connection stays healthy —
	// then corrupt a task-result frame, which reads as a checksum failure
	// and evicts the sender. Answers still may not change.
	if cfg.FrameFaults {
		coord := dist.Cluster().Coordinator()
		coord.SetFrameFaultHook(func(workerID string, frameType byte) cluster.FrameFault {
			if workerID == "mp-w1" && frameType == cluster.FrameTypeHeartbeat {
				return cluster.FrameDrop
			}
			return cluster.FramePass
		})
		start := time.Now()
		evictDeadline := time.Now().Add(10 * time.Second)
		for coord.NumWorkers() > cfg.Workers-1 {
			if time.Now().After(evictDeadline) {
				return nil, fmt.Errorf("multiproc: heartbeat-starved worker never evicted")
			}
			time.Sleep(10 * time.Millisecond)
		}
		coord.SetFrameFaultHook(nil)
		res.Kills++
		if err := check("heartbeat-eviction", 2); err != nil {
			return nil, err
		}
		res.RecoveryMillis = append(res.RecoveryMillis,
			float64(time.Since(start).Microseconds())/1000)

		// One corrupted result frame: the first dispatch after this loses
		// its worker; the retry (elsewhere or local) still answers.
		var corrupted atomic.Bool
		coord.SetFrameFaultHook(func(workerID string, frameType byte) cluster.FrameFault {
			if frameType == cluster.FrameTypeTaskResult && corrupted.CompareAndSwap(false, true) {
				return cluster.FrameCorrupt
			}
			return cluster.FramePass
		})
		if err := check("corrupt-frame", 3); err != nil {
			return nil, err
		}
		coord.SetFrameFaultHook(nil)
		if corrupted.Load() {
			res.Kills++
		}
	}

	res.RemoteTasks = dist.Metrics().Counter("cluster.tasks.completed").Load()
	res.FailedDispatches = dist.Metrics().Counter("cluster.tasks.failed").Load()
	if res.RemoteTasks == 0 {
		return nil, fmt.Errorf("multiproc: no task ever completed on a worker process")
	}
	return res, nil
}
