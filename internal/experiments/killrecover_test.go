// In the external test package so it shares multiproc_test.go's TestMain,
// which routes re-execed children into experiments.RunIfIngest.
package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-and-recover chaos suite in -short mode")
	}
	res, err := experiments.RunKillRecover(experiments.DefaultKillRecoverConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills < 5 {
		t.Fatalf("harness reported %d kills, want 5", res.Kills)
	}
	if res.CommittedBatches == 0 {
		t.Fatal("no batch ever committed — the kill schedule starved ingest")
	}
	t.Logf("killrecover: %d kills, %d acked / %d committed batches (%d orphans), recovery %v ms",
		res.Kills, res.AckedBatches, res.CommittedBatches, res.Orphans, res.RecoveryMillis)
}
