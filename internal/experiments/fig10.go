package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Figure 10: a two-stage pipeline — a relational filter selecting ~90 % of
// a message corpus, followed by a procedural word count — implemented two
// ways:
//
//   - Separate engines (the paper's "SQL + Spark job"): the filter runs as
//     a SQL query whose full result is serialized to the (simulated) HDFS,
//     then a separate Spark job reads it back and counts words. The
//     intermediate materialization + I/O is the cost the paper's first bar
//     pays.
//   - Integrated DataFrame pipeline: df.Where(...).ToRDD() flows straight
//     into the word-count map, pipelined in one job. Paper: ~2x faster.
type Fig10 struct {
	ctx   *sparksql.Context
	fs    *dfs.FileSystem
	n     int64
	parts int
}

const fig10Seed = 0xf16

// NewFig10 prepares a corpus of n messages.
func NewFig10(n int64) *Fig10 {
	ctx := sparksql.NewContext()
	return &Fig10{
		ctx:   ctx,
		fs:    dfs.New(),
		n:     n,
		parts: ctx.RDDContext().Parallelism(),
	}
}

// messages builds the corpus DataFrame and registers it.
func (f *Fig10) messages() (*sparksql.DataFrame, error) {
	n := f.n
	rows := rdd.Generate(f.ctx.RDDContext(), "messages", f.parts, func(p int) []row.Row {
		lo := n * int64(p) / int64(f.parts)
		hi := n * int64(p+1) / int64(f.parts)
		out := make([]row.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, datagen.MessageRow(fig10Seed, i))
		}
		return out
	})
	return f.ctx.CreateDataFrameFromRDD(datagen.MessageSchema(), rows)
}

const fig10Filter = "text LIKE '%spark%'"

// RunSeparate runs the two-engine pipeline with an HDFS intermediate.
func (f *Fig10) RunSeparate() (map[string]int64, error) {
	df, err := f.messages()
	if err != nil {
		return nil, err
	}
	df.RegisterTempTable("messages")

	// Stage 1: the SQL engine runs the filter and SAVES the result.
	filtered, err := f.ctx.SQL("SELECT text FROM messages WHERE " + fig10Filter)
	if err != nil {
		return nil, err
	}
	rddOut, err := filtered.ToRDD()
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, rddOut.NumPartitions())
	err = rddOut.ForeachPartition(func(p int, rows []row.Row) {
		var buf bytes.Buffer
		for _, r := range rows {
			s := r[0].(string)
			var lenBuf [4]byte
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
			buf.Write(lenBuf[:])
			buf.WriteString(s)
		}
		blocks[p] = buf.Bytes()
	})
	if err != nil {
		return nil, err
	}
	f.fs.Write("/tmp/filtered", blocks)

	// Stage 2: a separate Spark job reads the intermediate back and counts
	// words.
	stored, err := f.fs.Read("/tmp/filtered")
	if err != nil {
		return nil, err
	}
	lines := rdd.Generate(f.ctx.RDDContext(), "readBack", len(stored), func(p int) []string {
		data := stored[p]
		var out []string
		for off := 0; off+4 <= len(data); {
			n := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			out = append(out, string(data[off:off+n]))
			off += n
		}
		return out
	})
	return wordCount(lines, f.parts)
}

// RunIntegrated runs the single DataFrame pipeline.
func (f *Fig10) RunIntegrated() (map[string]int64, error) {
	df, err := f.messages()
	if err != nil {
		return nil, err
	}
	filtered, err := df.WhereSQL(fig10Filter)
	if err != nil {
		return nil, err
	}
	sel, err := filtered.Select("text")
	if err != nil {
		return nil, err
	}
	rddOut, err := sel.ToRDD()
	if err != nil {
		return nil, err
	}
	lines := rdd.Map(rddOut, func(r row.Row) string { return r[0].(string) })
	return wordCount(lines, f.parts)
}

// wordCount is the procedural second stage, shared by both pipelines.
func wordCount(lines *rdd.RDD[string], parts int) (map[string]int64, error) {
	words := rdd.FlatMap(lines, func(s string) []rdd.Pair[string, int64] {
		fields := strings.Fields(s)
		out := make([]rdd.Pair[string, int64], len(fields))
		for i, w := range fields {
			out[i] = rdd.Pair[string, int64]{Key: w, Value: 1}
		}
		return out
	})
	counts := rdd.ReduceByKey(words, func(a, b int64) int64 { return a + b }, parts)
	pairs, err := counts.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(pairs))
	for _, p := range pairs {
		out[p.Key] = p.Value
	}
	return out, nil
}

// Verify cross-checks the two pipelines.
func (f *Fig10) Verify() error {
	sep, err := f.RunSeparate()
	if err != nil {
		return err
	}
	integ, err := f.RunIntegrated()
	if err != nil {
		return err
	}
	if len(sep) != len(integ) {
		return fmt.Errorf("fig10: word sets differ: %d vs %d", len(sep), len(integ))
	}
	for w, c := range sep {
		if integ[w] != c {
			return fmt.Errorf("fig10: count for %q differs: %d vs %d", w, c, integ[w])
		}
	}
	return nil
}

// BytesThroughDFS reports the intermediate volume the separate pipeline
// shipped through the file system.
func (f *Fig10) BytesThroughDFS() int64 { return f.fs.BytesWritten() + f.fs.BytesRead() }
