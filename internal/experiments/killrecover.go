package experiments

// Kill-and-recover chaos: the durability counterpart of the multiproc
// study. A child process (this executable re-execed with REPRO_INGEST_DIR
// set — callers' TestMain must route that through RunIfIngest) opens a
// durable context on a shared directory and streams INSERT batches into a
// persistent table, appending one fsync'd ack line per committed batch.
// The parent SIGKILLs it at a random point, reopens the directory and
// checks the recovery invariants: every acked batch is present and exact,
// every committed batch is complete (no torn batch survives replay), the
// committed batches form a contiguous prefix, and at most one committed
// batch per kill lacks an ack (the commit→ack window). kill -9 may cost
// the in-flight batch, never a committed one.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	sparksql "repro"
)

const (
	ingestEnvDir   = "REPRO_INGEST_DIR"
	ingestEnvBatch = "REPRO_INGEST_BATCH"
)

// ackPath is the ack file for a data directory. It lives NEXT TO the
// directory, not inside it: dfs.OpenDir owns its directory outright and
// truncates any file it cannot parse as mirrored frames.
func ackPath(dir string) string {
	return filepath.Clean(dir) + ".acks"
}

// ingestPayload is the deterministic cell content for (batch, i); the
// verifier regenerates it to check recovered bytes, not just counts.
func ingestPayload(batch, i int64) string {
	return fmt.Sprintf("p-%06d-%03d", batch, i)
}

// RunIfIngest turns this process into an ingest child when
// REPRO_INGEST_DIR is set; it never returns in that case. Call it from
// TestMain before running tests, like sqlexec.RunIfWorker.
func RunIfIngest() {
	dir := os.Getenv(ingestEnvDir)
	if dir == "" {
		return
	}
	if err := runIngestChild(dir); err != nil {
		fmt.Fprintln(os.Stderr, "ingest child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runIngestChild recovers the table, figures out where the last run
// stopped, and streams batches until killed. The ack line for a batch is
// written (and fsync'd) strictly after its INSERT commits, so an acked
// batch is always a committed batch; the converse can miss by one.
func runIngestChild(dir string) error {
	rowsPerBatch := int64(8)
	if v := os.Getenv(ingestEnvBatch); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad %s=%q", ingestEnvBatch, v)
		}
		rowsPerBatch = n
	}
	cfg := sparksql.DefaultConfig()
	cfg.DataDir = dir
	ctx := sparksql.NewContextWithConfig(cfg)
	defer ctx.Close()
	if _, err := ctx.SQL("CREATE TABLE IF NOT EXISTS ingest (batch BIGINT NOT NULL, i BIGINT NOT NULL, payload STRING NOT NULL)"); err != nil {
		return err
	}
	// Batches commit in order, so the next batch is simply MAX+1 — recovery
	// already dropped any uncommitted tail.
	next := int64(0)
	rows, err := collectSQL(ctx, "SELECT MAX(batch) FROM ingest")
	if err != nil {
		return err
	}
	if len(rows) == 1 && len(rows[0]) == 1 && rows[0][0] != nil {
		next = rows[0][0].(int64) + 1
	}
	ack, err := os.OpenFile(ackPath(dir), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer ack.Close()
	// Terminate any ack line a previous generation was killed mid-write of,
	// so its digit fragment cannot merge with our first ack. The fragment
	// becomes its own line: a (harmless) digit prefix of an already-acked
	// batch number, or empty.
	if _, err := ack.WriteString("\n"); err != nil {
		return err
	}
	for b := next; ; b++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO ingest VALUES ")
		for i := int64(0); i < rowsPerBatch; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, '%s')", b, i, ingestPayload(b, i))
		}
		if _, err := ctx.SQL(sb.String()); err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		if _, err := fmt.Fprintf(ack, "%d\n", b); err != nil {
			return err
		}
		if err := ack.Sync(); err != nil {
			return err
		}
	}
}

// KillRecoverConfig shapes one kill-and-recover run.
type KillRecoverConfig struct {
	// Dir is the durable data directory shared by all child generations.
	Dir string
	// Kills is how many spawn→SIGKILL→verify rounds to run.
	Kills int
	// RowsPerBatch is the per-INSERT batch size.
	RowsPerBatch int64
	// Seed drives the deterministic kill-delay sequence.
	Seed uint64
}

// DefaultKillRecoverConfig is what the test and scripts/check.sh run.
func DefaultKillRecoverConfig(dir string) KillRecoverConfig {
	return KillRecoverConfig{Dir: dir, Kills: 5, RowsPerBatch: 8, Seed: 0xC0FFEE}
}

// KillRecoverResult summarizes one run for reporting.
type KillRecoverResult struct {
	// Kills is how many child processes were SIGKILLed.
	Kills int
	// AckedBatches is how many batches the children fsync-acked in total.
	AckedBatches int
	// CommittedBatches is how many batches survived the final recovery.
	CommittedBatches int
	// Orphans counts committed-but-unacked batches across the whole run
	// (kill landed in the commit→ack window); bounded by Kills.
	Orphans int
	// RecoveryMillis is, per kill, how long reopening the directory took
	// (WAL replay + catalog rebuild).
	RecoveryMillis []float64
}

// readAcks parses the ack file into the set of acked batch numbers,
// tolerating torn lines (the kill can land mid-write of the ack itself;
// a digit fragment of batch N parses to a smaller, already-acked number).
func readAcks(dir string) (map[int64]bool, error) {
	f, err := os.Open(ackPath(dir))
	if os.IsNotExist(err) {
		return map[int64]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	acks := map[int64]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n, err := strconv.ParseInt(strings.TrimSpace(sc.Text()), 10, 64)
		if err != nil {
			continue
		}
		acks[n] = true
	}
	return acks, sc.Err()
}

// spawnIngest re-execs the current binary as an ingest child on dir.
func spawnIngest(dir string, rowsPerBatch int64) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		ingestEnvDir+"="+dir,
		fmt.Sprintf("%s=%d", ingestEnvBatch, rowsPerBatch),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// verifyRecovered reopens dir and checks every durability invariant,
// returning the committed batch count.
func verifyRecovered(dir string, rowsPerBatch int64, acks map[int64]bool) (int, error) {
	cfg := sparksql.DefaultConfig()
	cfg.DataDir = dir
	ctx := sparksql.NewContextWithConfig(cfg)
	defer ctx.Close()
	rows, err := collectSQL(ctx, "SELECT batch, i, payload FROM ingest ORDER BY batch, i")
	if err != nil {
		return 0, err
	}
	if len(rows)%int(rowsPerBatch) != 0 {
		return 0, fmt.Errorf("killrecover: %d recovered rows is not a whole number of %d-row batches — a torn batch survived replay", len(rows), rowsPerBatch)
	}
	committed := len(rows) / int(rowsPerBatch)
	// Contiguous prefix 0..committed-1, every cell byte-exact.
	for idx, r := range rows {
		b, i := int64(idx)/rowsPerBatch, int64(idx)%rowsPerBatch
		if r[0].(int64) != b || r[1].(int64) != i || r[2].(string) != ingestPayload(b, i) {
			return 0, fmt.Errorf("killrecover: row %d = %v, want [%d %d %s]", idx, r, b, i, ingestPayload(b, i))
		}
	}
	for a := range acks {
		if a >= int64(committed) {
			return 0, fmt.Errorf("killrecover: batch %d was acked but only %d batches recovered — a committed batch was lost", a, committed)
		}
	}
	return committed, nil
}

// RunKillRecover runs the kill-and-recover suite. The calling process
// must have passed RunIfIngest in its TestMain so the re-exec becomes an
// ingest child rather than recursing into the harness.
func RunKillRecover(cfg KillRecoverConfig) (*KillRecoverResult, error) {
	if cfg.Kills <= 0 {
		cfg.Kills = 5
	}
	if cfg.RowsPerBatch <= 0 {
		cfg.RowsPerBatch = 8
	}
	res := &KillRecoverResult{}
	rng := cfg.Seed | 1
	for k := 0; k < cfg.Kills; k++ {
		child, err := spawnIngest(cfg.Dir, cfg.RowsPerBatch)
		if err != nil {
			return nil, fmt.Errorf("killrecover: spawn: %w", err)
		}
		// Alternate between killing mid-stream (after at least one new ack
		// lands, so commits are provably in flight) and killing at a raw
		// random delay (which can land during recovery, CREATE TABLE or the
		// very first batch — "at any point").
		prevAcks, err := readAcks(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if k%2 == 0 {
			deadline := time.Now().Add(10 * time.Second)
			for {
				acks, err := readAcks(cfg.Dir)
				if err != nil {
					return nil, err
				}
				if len(acks) > len(prevAcks) {
					break
				}
				if time.Now().After(deadline) {
					child.Process.Kill()
					child.Wait()
					return nil, fmt.Errorf("killrecover: child made no progress in 10s")
				}
				time.Sleep(time.Millisecond)
			}
		}
		rng = rng*6364136223846793005 + 1442695040888963407 // LCG: deterministic kill points
		time.Sleep(time.Duration(rng%20) * time.Millisecond)
		child.Process.Signal(syscall.SIGKILL)
		child.Wait()
		res.Kills++

		acks, err := readAcks(cfg.Dir)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		committed, err := verifyRecovered(cfg.Dir, cfg.RowsPerBatch, acks)
		if err != nil {
			return nil, err
		}
		res.RecoveryMillis = append(res.RecoveryMillis,
			float64(time.Since(start).Microseconds())/1000)
		res.AckedBatches = len(acks)
		res.CommittedBatches = committed
		if orphans := committed - len(acks); orphans > res.Kills {
			return nil, fmt.Errorf("killrecover: %d committed batches lack acks after %d kills — more than one commit→ack window per kill", orphans, res.Kills)
		} else if orphans > res.Orphans {
			res.Orphans = orphans
		}
	}
	return res, nil
}
