package experiments

import (
	"fmt"
	"time"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/row"
)

// Overhead study: per-operator metrics are on by default, so their cost is
// paid on every query — the study quantifies it. Four engines hold the same
// cached rankings table, crossing {metrics on, metrics off} with
// {vectorized, row-at-a-time}, and run the same Q1 scan under each. The
// acceptance bar for the observability work is that the "on" columns stay
// within a few percent of "off" on both execution paths.
type MetricsOverheadStudy struct {
	OnRow  *sparksql.Context // metrics on, row-at-a-time
	OffRow *sparksql.Context // metrics off, row-at-a-time
	OnVec  *sparksql.Context // metrics on, vectorized
	OffVec *sparksql.Context // metrics off, vectorized
	N      int64
}

// NewMetricsOverheadStudy builds and caches n rankings rows under all four
// engine configurations.
func NewMetricsOverheadStudy(n int64) (*MetricsOverheadStudy, error) {
	s := &MetricsOverheadStudy{N: n}
	rows := make([]row.Row, n)
	for i := int64(0); i < n; i++ {
		rows[i] = datagen.RankingRow(42, i)
	}
	mk := func(metricsOn, vectorized bool) (*sparksql.Context, error) {
		cfg := sparksql.DefaultConfig()
		cfg.Metrics = metricsOn
		cfg.Vectorized = vectorized
		ctx := sparksql.NewContextWithConfig(cfg)
		df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), rows)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		df.RegisterTempTable("rankings")
		return ctx, nil
	}
	for _, c := range []struct {
		dst        **sparksql.Context
		on, vector bool
	}{
		{&s.OnRow, true, false},
		{&s.OffRow, false, false},
		{&s.OnVec, true, true},
		{&s.OffVec, false, true},
	} {
		var err error
		if *c.dst, err = mk(c.on, c.vector); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run executes Q1 under one of the four engines.
func (s *MetricsOverheadStudy) Run(ctx *sparksql.Context, x int32) (int64, error) {
	return RunSQL(ctx, Q1(x))
}

// Overhead measures metrics-on vs metrics-off Q1 throughput on one
// execution path (row or vectorized) and returns the relative slowdown of
// the instrumented engine: 0.05 means metrics cost 5%. Negative values mean
// the instrumented run came out faster (noise). Each side runs iters
// queries after one warm-up, interleaved on/off to decorrelate from
// machine-load drift.
func (s *MetricsOverheadStudy) Overhead(vectorized bool, iters int) (float64, error) {
	on, off := s.OnRow, s.OffRow
	if vectorized {
		on, off = s.OnVec, s.OffVec
	}
	x := Q1Params[0]
	for _, ctx := range []*sparksql.Context{on, off} {
		if _, err := s.Run(ctx, x); err != nil {
			return 0, err
		}
	}
	var onNS, offNS int64
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := s.Run(on, x); err != nil {
			return 0, err
		}
		onNS += time.Since(start).Nanoseconds()
		start = time.Now()
		if _, err := s.Run(off, x); err != nil {
			return 0, err
		}
		offNS += time.Since(start).Nanoseconds()
	}
	if offNS == 0 {
		return 0, fmt.Errorf("metricsoverhead: zero baseline time")
	}
	return float64(onNS-offNS) / float64(offNS), nil
}

// Verify asserts all four engines agree on the Q1 result — instrumentation
// must be observation only.
func (s *MetricsOverheadStudy) Verify() error {
	for _, x := range Q1Params {
		want, err := s.Run(s.OffRow, x)
		if err != nil {
			return err
		}
		for name, ctx := range map[string]*sparksql.Context{
			"on/row": s.OnRow, "on/vec": s.OnVec, "off/vec": s.OffVec,
		} {
			got, err := s.Run(ctx, x)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("metricsoverhead: Q1(%d) %s returned %d rows, baseline %d", x, name, got, want)
			}
		}
	}
	return nil
}
