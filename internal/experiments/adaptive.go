package experiments

import (
	"fmt"
	"strings"
	"time"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

// Ablation: adaptive query execution (stage-graph re-planning from
// runtime statistics). The workload joins an RDD-backed fact table —
// whose size the planner cannot estimate — against a tiny dim side
// under a memory budget. Blind to the input sizes, the static planner
// picks a sort-merge join and sorts both sides; the adaptive driver
// materializes the join's inputs at the exchange barrier, observes a
// few-KB build side, and promotes the join to broadcast-hash, skipping
// both sorts. The fact keys come either uniform or Zipf(2)-distributed
// (the majority of rows on one key), so the same study doubles as the
// skewed-join ablation.
type AdaptiveStudy struct {
	// FactRows is the probe-side size; Keys the dim-side cardinality.
	FactRows int64
	Keys     int64
	// MemoryBudget forces the size-blind static plan to sort-merge.
	MemoryBudget int64
}

// NewAdaptiveStudy sizes the workload.
func NewAdaptiveStudy(factRows int64) *AdaptiveStudy {
	return &AdaptiveStudy{FactRows: factRows, Keys: 256, MemoryBudget: 64 << 20}
}

// adaptiveStudyQuery aggregates the join so the collect cost is a
// single row and the measurement isolates join execution.
const adaptiveStudyQuery = "SELECT SUM(f.v + d.v) FROM fact f JOIN dim d ON f.k = d.k"

func (s *AdaptiveStudy) context(adaptive, skewed bool) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	// Fixed counts so plans do not depend on the host's core count;
	// pipeline collapse off because fused pipelines are opaque to the
	// re-planner.
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 8
	cfg.PipelineCollapse = false
	cfg.Vectorized = false
	cfg.Fusion = false
	cfg.Adaptive = adaptive
	cfg.MemoryBudget = s.MemoryBudget
	ctx := sparksql.NewContextWithConfig(cfg)

	schema := types.StructType{}.
		Add("k", types.Long, false).
		Add("v", types.Long, false)
	fact := make([]row.Row, s.FactRows)
	for i := range fact {
		var k int64
		if skewed {
			k = datagen.ZipfKey(7, int64(i), s.Keys, 2.0)
		} else {
			k = int64(i) % s.Keys
		}
		fact[i] = row.Row{k, int64(i)}
	}
	fdf, err := ctx.CreateDataFrameFromRDD(schema, rdd.Parallelize(ctx.RDDContext(), fact, 4))
	if err != nil {
		return nil, err
	}
	fdf.RegisterTempTable("fact")

	dim := make([]row.Row, s.Keys)
	for i := range dim {
		dim[i] = row.Row{int64(i), int64(i) * 3}
	}
	ddf, err := ctx.CreateDataFrameFromRDD(schema, rdd.Parallelize(ctx.RDDContext(), dim, 2))
	if err != nil {
		return nil, err
	}
	ddf.RegisterTempTable("dim")
	return ctx, nil
}

// Run executes the study query once in a fresh context and returns the
// collect wall time plus the formatted result.
func (s *AdaptiveStudy) Run(adaptive, skewed bool) (time.Duration, string, error) {
	ctx, err := s.context(adaptive, skewed)
	if err != nil {
		return 0, "", err
	}
	df, err := ctx.SQL(adaptiveStudyQuery)
	if err != nil {
		return 0, "", err
	}
	start := time.Now()
	rows, err := df.Collect()
	if err != nil {
		return 0, "", err
	}
	return time.Since(start), formatRows(rows), nil
}

// Verify checks the study is sound before anything is timed: adaptive
// and static answers agree on both workloads, and the adaptive plan
// really is promoted (EXPLAIN ANALYZE shows the broadcast switch).
func (s *AdaptiveStudy) Verify() error {
	for _, skewed := range []bool{false, true} {
		_, static, err := s.Run(false, skewed)
		if err != nil {
			return err
		}
		_, adaptive, err := s.Run(true, skewed)
		if err != nil {
			return err
		}
		if static != adaptive {
			return fmt.Errorf("adaptive study: results diverge (skewed=%v):\n%s\n-- vs --\n%s",
				skewed, static, adaptive)
		}
	}
	ctx, err := s.context(true, true)
	if err != nil {
		return err
	}
	df, err := ctx.SQL(adaptiveStudyQuery)
	if err != nil {
		return err
	}
	ea, err := df.ExplainAnalyze()
	if err != nil {
		return err
	}
	if !strings.Contains(ea, "-> BroadcastHashJoin") {
		return fmt.Errorf("adaptive study: plan was not promoted to broadcast:\n%s", ea)
	}
	return nil
}
