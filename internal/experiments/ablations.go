package experiments

import (
	"fmt"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/memdb"
	"repro/internal/row"
	"repro/internal/types"
)

// Ablation: query federation (paper §5.3). A "remote" users database joins
// local logs; with pushdown the registrationDate predicate and the column
// list ship to the database, so only matching users' (id, name) cross the
// link. Without pushdown every column of every user does.
type Federation struct {
	DB       *memdb.Database
	NumUsers int64
	NumLogs  int64
	ctx      *sparksql.Context
}

// NewFederation builds the remote database and local logs.
func NewFederation(numUsers, numLogs int64) (*Federation, error) {
	db := memdb.New()
	userSchema := types.StructType{}.
		Add("id", types.Long, false).
		Add("name", types.String, false).
		Add("registrationDate", types.Date, false).
		Add("bio", types.String, false) // bulky column pushdown avoids shipping
	users := make([]row.Row, numUsers)
	for i := int64(0); i < numUsers; i++ {
		// Registration dates spread over 2014-2015; epoch day 16071 is
		// 2014-01-01, 16436 is 2015-01-01.
		users[i] = row.Row{
			i,
			fmt.Sprintf("user%06d", i),
			int32(16071 + (i*7)%730),
			fmt.Sprintf("this is a long biography string for user %06d padding padding padding", i),
		}
	}
	db.CreateTable("users", userSchema, users)

	f := &Federation{DB: db, NumUsers: numUsers, NumLogs: numLogs}
	return f, nil
}

// Query is the paper's federation join: traffic log messages for recently
// registered users.
const federationQuery = `
	SELECT users.id, users.name, logs.message
	FROM users JOIN logs ON users.id = logs.userId
	WHERE users.registrationDate > '2015-01-01'`

// Run executes the federated query with or without pushdown, returning the
// result size and the bytes that crossed the link.
func (f *Federation) Run(pushdown bool) (rows int64, bytesTransferred int64, err error) {
	ctx := sparksql.NewContext()
	ctx.RegisterDataSource("jdbc", memdb.Provider(f.DB))
	pd := "true"
	if !pushdown {
		pd = "false"
	}
	if _, err := ctx.SQL(fmt.Sprintf(
		"CREATE TEMPORARY TABLE users USING jdbc OPTIONS(`table` 'users', pushdown '%s')", pd)); err != nil {
		return 0, 0, err
	}

	logSchema := types.StructType{}.
		Add("userId", types.Long, false).
		Add("message", types.String, false)
	logRows := make([]row.Row, f.NumLogs)
	for i := int64(0); i < f.NumLogs; i++ {
		logRows[i] = row.Row{(i * 13) % f.NumUsers, fmt.Sprintf("GET /page/%d", i%97)}
	}
	logs, err := ctx.CreateDataFrame(logSchema, logRows)
	if err != nil {
		return 0, 0, err
	}
	logs.RegisterTempTable("logs")

	f.DB.ResetMeter()
	df, err := ctx.SQL(federationQuery)
	if err != nil {
		return 0, 0, err
	}
	out, err := df.Collect()
	if err != nil {
		return 0, 0, err
	}
	return int64(len(out)), f.DB.BytesTransferred(), nil
}

// RemoteQueryLog exposes the queries the database saw (for the example).
func (f *Federation) RemoteQueryLog() []string { return f.DB.QueryLog() }

// ---------------------------------------------------------------------------
// Ablation: columnar cache vs boxed-object cache (paper §3.6).

// CacheStudy builds an n-row uservisits-like table and caches it columnar,
// keeping a row-cached ("JVM object") twin for comparison — the two cache
// regimes §3.6 contrasts. The columnar cache trades a small per-scan decode
// cost for an order-of-magnitude memory saving.
type CacheStudy struct {
	Ctx *sparksql.Context
	// DF is columnar-cached; ObjectCached holds the same rows as boxed
	// in-memory objects (Spark's native cache model).
	DF           *sparksql.DataFrame
	ObjectCached *sparksql.DataFrame
	Info         sparksql.CacheInfo
}

// NewCacheStudy caches n synthetic rows and records the footprints.
func NewCacheStudy(n int64) (*CacheStudy, error) {
	ctx := sparksql.NewContext()
	rows := make([]row.Row, n)
	for i := int64(0); i < n; i++ {
		rows[i] = datagen.UserVisitRow(42, i, 1000)
	}
	df, err := ctx.CreateDataFrame(datagen.UserVisitsSchema(), rows)
	if err != nil {
		return nil, err
	}
	objectCached, err := ctx.CreateDataFrame(datagen.UserVisitsSchema(), rows)
	if err != nil {
		return nil, err
	}
	info, err := df.Cache()
	if err != nil {
		return nil, err
	}
	return &CacheStudy{Ctx: ctx, DF: df, ObjectCached: objectCached, Info: info}, nil
}

// ScanAggregate runs a two-column aggregate over the cached data (column
// pruning means only two columns decode).
func (c *CacheStudy) ScanAggregate() (float64, error) {
	return scanAggregate(c.DF)
}

// ScanAggregateObjectCache runs the same aggregate over the boxed-row
// cache.
func (c *CacheStudy) ScanAggregateObjectCache() (float64, error) {
	return scanAggregate(c.ObjectCached)
}

func scanAggregate(df *sparksql.DataFrame) (float64, error) {
	agg, err := df.GroupBy("countryCode").Avg("adRevenue")
	if err != nil {
		return 0, err
	}
	rows, err := agg.Collect()
	if err != nil {
		return 0, err
	}
	var total float64
	for _, r := range rows {
		total += r[1].(float64)
	}
	return total, nil
}
