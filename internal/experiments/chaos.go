package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Chaos study: the reproduction's fault-tolerance contract, exercised the
// way Spark's own DAGScheduler is — by injecting failures and checking
// that answers do not change. A deterministic seeded schedule fails a
// fraction of task attempts, drops cached partitions between runs, makes
// DFS reads flaky and plants stragglers; every run must produce results
// byte-identical to a fault-free golden run. All injection is derived from
// ChaosConfig.Seed, so a failing case replays exactly.
type ChaosConfig struct {
	// Seed drives every injection decision.
	Seed uint64
	// N is the rankings table size for the SQL workload.
	N int64
	// FailureRate is the probability that a given (rdd, partition) task is
	// afflicted; afflicted tasks fail their first FailedAttempts attempts.
	FailureRate float64
	// FailedAttempts is how many leading attempts an afflicted task fails.
	// It must stay below the engine's per-task attempt budget or the
	// injected fault becomes a (correctly reported) terminal JobError.
	FailedAttempts int
}

// DefaultChaosConfig is the configuration the chaos tests run.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Seed: 0xC4A05, N: 2000, FailureRate: 0.1, FailedAttempts: 2}
}

// afflicted deterministically decides whether the task (name, partition)
// is hit by the failure schedule.
func (c ChaosConfig) afflicted(name string, partition int) bool {
	h := fnv64(fmt.Sprintf("%d|%s|%d", c.Seed, name, partition))
	return float64(h%10_000) < c.FailureRate*10_000
}

// hook returns the rdd failure hook implementing the schedule. Attempts
// beyond FailedAttempts (including speculative backups, which are numbered
// past the attempt budget) succeed, so every injected fault is recoverable.
func (c ChaosConfig) hook() func(name string, partition, attempt int) error {
	return func(name string, partition, attempt int) error {
		if attempt <= c.FailedAttempts && c.afflicted(name, partition) {
			return fmt.Errorf("chaos: injected failure of %s[%d] attempt %d", name, partition, attempt)
		}
		return nil
	}
}

// Hook exposes the schedule to other packages: worker processes of the
// distributed chaos harness install the same deterministic hook so the
// failure schedule is identical whether a task runs in-process or remote.
func (c ChaosConfig) Hook() func(name string, partition, attempt int) error {
	return c.hook()
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// chaosQueries is the SQL workload: a selective filter, an unordered
// aggregation and a fuller scan, each exercising different operators.
func chaosQueries() []string {
	qs := make([]string, 0, len(Q1Params)+2)
	for _, x := range Q1Params {
		qs = append(qs, Q1(x))
	}
	qs = append(qs,
		"SELECT pageRank, COUNT(*) FROM rankings GROUP BY pageRank",
		"SELECT COUNT(*) FROM rankings WHERE pageRank > 50")
	return qs
}

// formatRows renders rows to a canonical sorted text form so two result
// sets can be compared byte-for-byte regardless of partition ordering.
func formatRows(rows []row.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = row.FormatValue(v)
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// chaosContext builds a context over the rankings table, optionally cached
// and optionally vectorized.
func chaosContext(n int64, vectorized, cached bool) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	cfg.Vectorized = vectorized
	// Multiple partitions regardless of host core count, so the failure
	// schedule has real tasks to afflict.
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 4
	ctx := sparksql.NewContextWithConfig(cfg)
	if err := loadRankings(ctx, n, cached); err != nil {
		return nil, err
	}
	return ctx, nil
}

// chaosSpillContext builds the rankings context under a memory budget small
// enough that every blocking operator in the spill workload spills.
func chaosSpillContext(n, budget int64) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 4
	cfg.MemoryBudget = budget
	ctx := sparksql.NewContextWithConfig(cfg)
	if err := loadRankings(ctx, n, false); err != nil {
		return nil, err
	}
	return ctx, nil
}

func loadRankings(ctx *sparksql.Context, n int64, cached bool) error {
	rows := make([]row.Row, n)
	for i := int64(0); i < n; i++ {
		rows[i] = datagen.RankingRow(42, i)
	}
	df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), rows)
	if err != nil {
		return err
	}
	if cached {
		if _, err := df.Cache(); err != nil {
			return err
		}
	}
	df.RegisterTempTable("rankings")
	return nil
}

// RunSQLChaos runs the SQL workload in all four engine modes
// (row/vectorized × cached/uncached) under the injected failure schedule
// and returns an error unless every result is byte-identical to the
// fault-free golden run. It reports how many faults the schedule injected.
func RunSQLChaos(cfg ChaosConfig) (injected int64, err error) {
	type mode struct {
		name               string
		vectorized, cached bool
	}
	modes := []mode{
		{"row", false, false},
		{"row+cache", false, true},
		{"vec", true, false},
		{"vec+cache", true, true},
	}
	queries := chaosQueries()
	for _, m := range modes {
		golden, err := chaosContext(cfg.N, m.vectorized, m.cached)
		if err != nil {
			return injected, err
		}
		chaotic, err := chaosContext(cfg.N, m.vectorized, m.cached)
		if err != nil {
			return injected, err
		}
		rc := chaotic.RDDContext()
		rc.SetBackoff(time.Microsecond, 50*time.Microsecond)
		var faults atomic.Int64
		base := cfg.hook()
		rc.SetFailureHook(func(name string, partition, attempt int) error {
			if err := base(name, partition, attempt); err != nil {
				faults.Add(1)
				return err
			}
			return nil
		})
		for _, q := range queries {
			want, err := collectSQL(golden, q)
			if err != nil {
				return injected, fmt.Errorf("chaos %s golden %q: %w", m.name, q, err)
			}
			got, err := collectSQL(chaotic, q)
			if err != nil {
				return injected, fmt.Errorf("chaos %s %q: %w", m.name, q, err)
			}
			if formatRows(got) != formatRows(want) {
				return injected, fmt.Errorf("chaos %s: %q diverged under injected failures", m.name, q)
			}
		}
		injected += faults.Load()
	}
	return injected, nil
}

// RunSpillChaos combines the task-failure schedule with forced spilling: the
// chaotic context runs under a memory budget small enough that every blocking
// operator (sort, aggregation, distinct, sort-merge join) spills to the engine
// DFS, while ~FailureRate of tasks fail their leading attempts AND a slice of
// spill-file writes fail transiently too. A failed spill write fails its task;
// the retried task allocates a fresh spill prefix, so the rewrite lands on new
// paths and the fault never repeats deterministically. Results must stay
// byte-identical to an unbudgeted fault-free golden run, spills must actually
// have happened, and no spill file may survive any query.
func RunSpillChaos(cfg ChaosConfig) (injected int64, err error) {
	const budget = 16 << 10
	// Salt the seed so the spill run's schedule is independent of the plain
	// SQL chaos run over the same task names.
	cfg.Seed = fnv64(fmt.Sprintf("%d|spillrun", cfg.Seed))
	queries := []string{
		"SELECT pageRank, COUNT(*), SUM(avgDuration) FROM rankings GROUP BY pageRank",
		"SELECT pageURL, pageRank FROM rankings ORDER BY pageRank, pageURL",
		"SELECT DISTINCT pageRank FROM rankings",
		"SELECT a.pageURL, a.pageRank, b.avgDuration FROM rankings a JOIN rankings b ON a.pageURL = b.pageURL",
	}
	golden, err := chaosContext(cfg.N, false, false)
	if err != nil {
		return 0, err
	}
	chaotic, err := chaosSpillContext(cfg.N, budget)
	if err != nil {
		return 0, err
	}
	rc := chaotic.RDDContext()
	rc.SetBackoff(time.Microsecond, 50*time.Microsecond)
	var faults atomic.Int64
	base := cfg.hook()
	rc.SetFailureHook(func(name string, partition, attempt int) error {
		if err := base(name, partition, attempt); err != nil {
			faults.Add(1)
			return err
		}
		return nil
	})
	sfs := chaotic.SpillFS()
	sfs.WriteNanosPerByte, sfs.ReadNanosPerByte = 0, 0
	// A spill-write fault fails the owning task's whole attempt, and a tiny
	// budget writes dozens of spill files per attempt — so an uncapped
	// per-path schedule would doom every retry too. One injected write fault
	// keeps recovery guaranteed: a task afflicted by the failure schedule
	// loses its first FailedAttempts attempts, at most one more to the spill
	// fault, and still has a clean attempt inside the engine's budget.
	var spillFaults atomic.Int64
	sfs.SetWriteFaultHook(func(path string, attempt int) error {
		if attempt == 1 && cfg.afflicted("spill|"+path, 0) && spillFaults.Add(1) == 1 {
			faults.Add(1)
			return fmt.Errorf("chaos: injected spill-write failure of %s", path)
		}
		return nil
	})
	for _, q := range queries {
		want, err := collectSQL(golden, q)
		if err != nil {
			return faults.Load(), fmt.Errorf("chaos spill golden %q: %w", q, err)
		}
		got, err := collectSQL(chaotic, q)
		if err != nil {
			return faults.Load(), fmt.Errorf("chaos spill %q: %w", q, err)
		}
		if formatRows(got) != formatRows(want) {
			return faults.Load(), fmt.Errorf("chaos spill: %q diverged under budget %d + injected failures", q, budget)
		}
		if nf := sfs.NumFiles(); nf != 0 {
			return faults.Load(), fmt.Errorf("chaos spill: %d spill files left after %q", nf, q)
		}
	}
	if n := rc.Metrics().Counter("memory.spill.count").Load(); n == 0 {
		return faults.Load(), fmt.Errorf("chaos spill: budget %d forced no spills", budget)
	}
	return faults.Load(), nil
}

func collectSQL(ctx *sparksql.Context, query string) ([]row.Row, error) {
	df, err := ctx.SQL(query)
	if err != nil {
		return nil, err
	}
	return df.Collect()
}

// RunRDDChaos exercises the raw RDD layer end to end: a corpus is written
// to the simulated DFS, read back through GenerateCtx tasks whose reads
// fail transiently (per the schedule), word-counted through a shuffle,
// cached, and re-collected after cached partitions are dropped. The final
// counts must match a fault-free run exactly.
func RunRDDChaos(cfg ChaosConfig) error {
	const parts = 6
	fs := dfs.New()
	fs.WriteNanosPerByte, fs.ReadNanosPerByte = 0, 0
	for p := 0; p < parts; p++ {
		var sb strings.Builder
		for i := 0; i < 200; i++ {
			sb.WriteString(fmt.Sprintf("w%d ", fnv64(fmt.Sprintf("%d|%d|%d", cfg.Seed, p, i))%37))
		}
		fs.Write(fmt.Sprintf("/chaos/blk%d", p), [][]byte{[]byte(sb.String())})
	}
	fs.SetReadFaultHook(func(path string, attempt int) error {
		if attempt <= cfg.FailedAttempts && cfg.afflicted(path, 0) {
			return fmt.Errorf("chaos: injected flaky read of %s", path)
		}
		return nil
	})

	run := func(ctx *rdd.Context, dropCached bool) (map[string]int64, error) {
		lines := rdd.GenerateCtx(ctx, "dfsRead", parts, func(jc context.Context, p int) ([]string, error) {
			blocks, err := fs.Read(fmt.Sprintf("/chaos/blk%d", p))
			if err != nil {
				return nil, err
			}
			var out []string
			for _, b := range blocks {
				out = append(out, string(b))
			}
			return out, nil
		})
		counted := rdd.ReduceByKey(rdd.FlatMap(lines, func(s string) []rdd.Pair[string, int64] {
			fields := strings.Fields(s)
			out := make([]rdd.Pair[string, int64], len(fields))
			for i, w := range fields {
				out[i] = rdd.Pair[string, int64]{Key: w, Value: 1}
			}
			return out
		}), func(a, b int64) int64 { return a + b }, 4).Cache()
		if _, err := counted.Collect(); err != nil {
			return nil, err
		}
		if dropCached {
			// Lose some cached partitions; lineage must recover them.
			for p := 0; p < counted.NumPartitions(); p++ {
				if cfg.afflicted("dropCache", p) {
					counted.DropCachedPartition(p)
				}
			}
		}
		pairs, err := counted.Collect()
		if err != nil {
			return nil, err
		}
		out := make(map[string]int64, len(pairs))
		for _, kv := range pairs {
			out[kv.Key] = kv.Value
		}
		return out, nil
	}

	goldenCtx := rdd.NewContext(4)
	golden, err := run(goldenCtx, false)
	if err != nil {
		return fmt.Errorf("chaos rdd golden: %w", err)
	}
	chaosCtx := rdd.NewContext(4)
	chaosCtx.SetBackoff(time.Microsecond, 50*time.Microsecond)
	chaosCtx.SetFailureHook(cfg.hook())
	got, err := run(chaosCtx, true)
	if err != nil {
		return fmt.Errorf("chaos rdd: %w", err)
	}
	if len(got) != len(golden) {
		return fmt.Errorf("chaos rdd: %d words vs %d golden", len(got), len(golden))
	}
	for w, c := range golden {
		if got[w] != c {
			return fmt.Errorf("chaos rdd: count for %q = %d, want %d", w, got[w], c)
		}
	}
	return nil
}

// RunStragglerChaos plants one straggling task and checks that speculation
// launches a backup which rescues the job quickly with an unchanged
// result. It returns the backup launch/win counters for reporting.
func RunStragglerChaos(cfg ChaosConfig) (launches, wins int64, err error) {
	const parts = 8
	ctx := rdd.NewContext(parts)
	ctx.SetSpeculation(true, 2.0, 5*time.Millisecond)
	ctx.SetLatencyHook(func(name string, partition, attempt int) time.Duration {
		// The schedule picks one partition to straggle on its first attempt;
		// the speculative backup (numbered past the attempt budget) is fast.
		if name == "straggly" && partition == int(cfg.Seed%parts) && attempt == 1 {
			return 10 * time.Second
		}
		return 0
	})
	r := rdd.Generate(ctx, "straggly", parts, func(p int) []int { return []int{p} })
	got, err := r.Collect()
	if err != nil {
		return 0, 0, err
	}
	if len(got) != parts {
		return 0, 0, fmt.Errorf("chaos straggler: result = %v", got)
	}
	for i, v := range got {
		if v != i {
			return 0, 0, fmt.Errorf("chaos straggler: wrong value at %d: %v", i, got)
		}
	}
	return ctx.SpeculativeLaunches(), ctx.SpeculativeWins(), nil
}
