package experiments

import (
	"fmt"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Figure 9: a distributed aggregation over N (a, b) integer pairs with K
// distinct values of a, computing AVG(b) per a, implemented three ways:
//
//   - "Python" — the paper's native Spark Python API: boxed tuples, user
//     lambdas run by a bytecode interpreter (our mini VM), map +
//     reduceByKey. Paper: ~173 s.
//   - "Scala" — typed RDD code: still allocates a key-value pair per
//     record but runs compiled. Paper: ~30 s.
//   - "DataFrame" — df.groupBy("a").avg("b"): the logical plan is built in
//     the host language but execution is planned and compiled by Catalyst.
//     Paper: ~4 s (12x over Python, 2x over Scala).
type Fig9 struct {
	ctx     *sparksql.Context
	n       int64
	numKeys int64
	parts   int
	// objects is the shared source: an RDD of heap-allocated native
	// records, cached in memory — the paper's dataset is an RDD of
	// Java/Python objects that every implementation consumes.
	objects *rdd.RDD[*datagen.Pair]
}

// NewFig9 prepares the workload; n rows, numKeys distinct keys.
func NewFig9(n, numKeys int64) *Fig9 {
	ctx := sparksql.NewContext()
	f := &Fig9{ctx: ctx, n: n, numKeys: numKeys, parts: ctx.RDDContext().Parallelism()}
	f.objects = rdd.Generate(ctx.RDDContext(), "pairs", f.parts, func(p int) []*datagen.Pair {
		lo := n * int64(p) / int64(f.parts)
		hi := n * int64(p+1) / int64(f.parts)
		out := make([]*datagen.Pair, 0, hi-lo)
		for i := lo; i < hi; i++ {
			v := datagen.PairValue(fig9Seed, i, numKeys)
			out = append(out, &v)
		}
		return out
	}).Cache()
	return f
}

const fig9Seed = 0x5eed

// RunPython runs the interpreted, boxed implementation:
// data.map(lambda x: (x.a, (x.b, 1))).reduceByKey(lambda x, y: (x[0]+y[0], x[1]+y[1]))
// with the lambdas executed on the mini bytecode VM.
func (f *Fig9) RunPython() (map[int32]float64, error) {
	mapFn := pyMapLambda()
	redFn := pyReduceLambda()
	// Records cross into the "Python worker" as boxed tuples (the
	// pickling boundary).
	boxed := rdd.Map(f.objects, func(p *datagen.Pair) pyValue {
		return pyTuple{int64(p.A), int64(p.B)}
	})
	kv := rdd.Map(boxed, func(v pyValue) rdd.Pair[int64, pyValue] {
		t := mapFn.call(v).(pyTuple)
		return rdd.Pair[int64, pyValue]{Key: t[0].(int64), Value: t[1]}
	})
	reduced := rdd.ReduceByKey(kv, func(a, b pyValue) pyValue {
		return redFn.call(a, b)
	}, f.parts)
	pairs, err := reduced.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[int32]float64, f.numKeys)
	for _, p := range pairs {
		t := p.Value.(pyTuple)
		out[int32(p.Key)] = float64(t[0].(int64)) / float64(t[1].(int64))
	}
	return out, nil
}

// sumCount is the Scala version's per-key accumulator tuple; it is
// allocated per record, the overhead the paper attributes to hand-written
// Scala ("expensive allocation of key-value pairs").
type sumCount struct {
	sum   int64
	count int64
}

// RunScala runs the compiled RDD implementation with JVM semantics: Scala
// generics erase to Object, so reduceByKey's keys and values are boxed and
// the combiner hash map keys on boxed integers — exactly the "expensive
// allocation of key-value pairs that occurs in hand-written Scala code"
// the paper's §6.2 analysis names. (A fully monomorphized Go version would
// be faster than anything the JVM ran; see EXPERIMENTS.md.)
func (f *Fig9) RunScala() (map[int32]float64, error) {
	kv := rdd.Map(f.objects, func(p *datagen.Pair) rdd.Pair[any, any] {
		return rdd.Pair[any, any]{Key: p.A, Value: &sumCount{sum: int64(p.B), count: 1}}
	})
	reduced := rdd.ReduceByKey(kv, func(a, b any) any {
		x, y := a.(*sumCount), b.(*sumCount)
		return &sumCount{sum: x.sum + y.sum, count: x.count + y.count}
	}, f.parts)
	pairs, err := reduced.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[int32]float64, f.numKeys)
	for _, p := range pairs {
		sc := p.Value.(*sumCount)
		out[p.Key.(int32)] = float64(sc.sum) / float64(sc.count)
	}
	return out, nil
}

// DataFrame builds the df.groupBy("a").avg("b") DataFrame (lazy) over the
// same native-object RDD, extracting fields in place (paper §3.5).
func (f *Fig9) DataFrame() (*sparksql.DataFrame, error) {
	rows := rdd.Map(f.objects, func(p *datagen.Pair) row.Row {
		return row.Row{p.A, p.B}
	})
	df, err := f.ctx.CreateDataFrameFromRDD(datagen.PairSchema(), rows)
	if err != nil {
		return nil, err
	}
	return df.GroupBy("a").Avg("b")
}

// RunDataFrame executes the DataFrame implementation.
func (f *Fig9) RunDataFrame() (map[int32]float64, error) {
	df, err := f.DataFrame()
	if err != nil {
		return nil, err
	}
	rows, err := df.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[int32]float64, len(rows))
	for _, r := range rows {
		out[r[0].(int32)] = r[1].(float64)
	}
	return out, nil
}

// Verify cross-checks that all three implementations agree.
func (f *Fig9) Verify() error {
	py, err := f.RunPython()
	if err != nil {
		return err
	}
	sc, err := f.RunScala()
	if err != nil {
		return err
	}
	dfr, err := f.RunDataFrame()
	if err != nil {
		return err
	}
	if len(py) != len(sc) || len(py) != len(dfr) {
		return fmt.Errorf("fig9: group counts differ: py=%d scala=%d df=%d", len(py), len(sc), len(dfr))
	}
	for k, v := range py {
		if sc[k] != v {
			return fmt.Errorf("fig9: scala disagrees at key %d: %v vs %v", k, sc[k], v)
		}
		if diff := dfr[k] - v; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("fig9: dataframe disagrees at key %d: %v vs %v", k, dfr[k], v)
		}
	}
	return nil
}
