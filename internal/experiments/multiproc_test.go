// The multiproc tests live in the external test package so TestMain can
// import sqlexec (the worker-side executor): package experiments itself
// must not, because sqlexec imports experiments for the chaos schedule.
package experiments_test

import (
	"os"
	"testing"

	"repro/internal/cluster/sqlexec"
	"repro/internal/experiments"
)

// TestMain lets the test binary re-exec itself as a worker process: when
// the multiproc harness spawns os.Executable() with REPRO_WORKER_ADDR
// set, RunIfWorker turns this process into a cluster worker and never
// returns. Without the variable, tests run normally.
func TestMain(m *testing.M) {
	sqlexec.RunIfWorker()
	experiments.RunIfIngest()
	os.Exit(m.Run())
}

func TestMultiprocChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos suite in -short mode")
	}
	res, err := experiments.RunMultiprocChaos(experiments.DefaultMultiprocConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteTasks == 0 {
		t.Fatal("no remote task completed")
	}
	if res.Kills < 2 {
		t.Fatalf("harness reported %d kills, want >= 2 (SIGKILL + eviction)", res.Kills)
	}
	if res.Fallbacks == 0 {
		t.Fatal("unshippable-table phase recorded no cluster.fallback tasks")
	}
	t.Logf("multiproc: %d queries verified, %d remote tasks, %d failed dispatches, %d fallbacks, %d kills, recovery %v ms",
		res.Queries, res.RemoteTasks, res.FailedDispatches, res.Fallbacks, res.Kills, res.RecoveryMillis)
}

func TestMultiprocSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process spill suite in -short mode")
	}
	cfg := experiments.DefaultMultiprocConfig()
	cfg.MemoryBudget = 16 << 10
	cfg.KillWorker = false
	cfg.FrameFaults = false
	res, err := experiments.RunMultiprocChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteTasks == 0 {
		t.Fatal("no remote task completed under memory budget")
	}
}
