// Package experiments implements the workloads and harnesses that
// regenerate every figure of the paper's evaluation (§6 Figures 8-10 and
// §4.3.4 Figure 4), plus the ablation studies DESIGN.md calls out. Both
// the testing.B benchmarks in bench_test.go and cmd/benchrunner drive
// these entry points.
package experiments

import (
	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/types"
)

// Figure 4: evaluating x+x+x (integers) 10^9 times, comparing interpreted
// evaluation, hand-written code and (closure-)generated code. The paper
// reports interpreted ≈ 9.36 s, hand-written ≈ 0.54 s, generated ≈ 0.68 s.

// Fig4 bundles the three evaluation strategies over the same expression
// tree; each function evaluates x+x+x once for the given x.
type Fig4 struct {
	// Interpreted walks the expression tree per evaluation (virtual calls
	// + boxing), the pre-codegen Spark SQL path.
	Interpreted func(x int64) int64
	// Generated is the closure-compiled evaluator (generic, boxed
	// results) — Catalyst codegen's general path.
	Generated func(x int64) int64
	// GeneratedUnboxed is the fully specialized compiled path (no boxing),
	// closest to the JVM bytecode the paper generates.
	GeneratedUnboxed func(x int64) int64
	// HandWritten is the direct Go expression.
	HandWritten func(x int64) int64
}

// NewFig4 builds the evaluators for the tree Add(Add(x,x),x) over a
// single-column BIGINT row.
func NewFig4() Fig4 {
	attr := &expr.BoundReference{Ordinal: 0, Type: types.Long, Null: false}
	tree := expr.Add(expr.Add(attr, attr), attr)

	compiled := expr.Compile(tree)
	unboxed, ok := expr.CompileLong(tree)
	if !ok {
		panic("experiments: CompileLong failed for x+x+x")
	}

	scratch := make(row.Row, 1)
	flat := make([]int64, 1)
	return Fig4{
		Interpreted: func(x int64) int64 {
			scratch[0] = x
			return tree.Eval(scratch).(int64)
		},
		Generated: func(x int64) int64 {
			scratch[0] = x
			return compiled(scratch).(int64)
		},
		GeneratedUnboxed: func(x int64) int64 {
			flat[0] = x
			return unboxed(flat)
		},
		HandWritten: func(x int64) int64 {
			return x + x + x
		},
	}
}
