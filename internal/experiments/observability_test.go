// Observability tests live in the external test package for the same
// reason as the multiproc tests: TestMain (in multiproc_test.go) routes
// worker re-execs through sqlexec.RunIfWorker.
package experiments_test

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	sparksql "repro"
	"repro/internal/experiments"
	"repro/internal/row"
	"repro/internal/types"
)

// TestObservabilityFederation runs the federation study twice against
// separate 3-worker clusters and demands byte-identical normalized merged
// traces — the golden-form assertion: trace shape is a deterministic
// function of the query, not of scheduling. It also checks the three
// surfaces individually: worker-attributed spans carrying the
// coordinator's trace id, a federated snapshot with every worker
// answering, and an event-log entry attributing tasks to workers.
func TestObservabilityFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process federation suite in -short mode")
	}
	cfg := experiments.DefaultObsFederationConfig()
	a, err := experiments.RunObsFederation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteSpans == 0 {
		t.Fatal("merged trace has no worker-origin spans")
	}
	if len(a.Workers) == 0 {
		t.Fatal("merged trace attributes no spans to workers")
	}
	if a.HarvestAnswered != cfg.Workers {
		t.Fatalf("harvest answered by %d/%d workers", a.HarvestAnswered, cfg.Workers)
	}
	if a.FederatedSamples == 0 {
		t.Fatal("federated snapshot is empty after harvest")
	}
	remoteTasks := 0
	for w, n := range a.EventWorkers {
		if w != "" {
			remoteTasks += n
		}
	}
	if remoteTasks == 0 {
		t.Fatalf("event log attributes no tasks to workers: %v", a.EventWorkers)
	}

	b, err := experiments.RunObsFederation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MergedJSONL != b.MergedJSONL {
		t.Fatalf("normalized merged trace not stable across runs:\n--- run A ---\n%s--- run B ---\n%s",
			a.MergedJSONL, b.MergedJSONL)
	}
	t.Logf("merged trace: %d remote + %d local spans across workers %v; %d federated samples",
		a.RemoteSpans, a.LocalSpans, a.Workers, a.FederatedSamples)
}

// TestObservabilityChaosTrace SIGKILLs a worker mid-query and asserts the
// partial run cannot corrupt the observability state: the query still
// answers correctly (checked inside the harness), every merged span still
// carries the query's trace id with a well-formed parent (also harness-
// checked), and the event log remains strict JSON line for line.
func TestObservabilityChaosTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos trace suite in -short mode")
	}
	cfg := experiments.DefaultObsFederationConfig()
	cfg.KillWorker = true
	res, err := experiments.RunObsFederation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HarvestAnswered < cfg.Workers-1 {
		t.Fatalf("harvest answered by %d workers, want >= %d survivors", res.HarvestAnswered, cfg.Workers-1)
	}
	assertStrictJSONL(t, res.EventJSONL)
	t.Logf("chaos trace: %d remote + %d local spans survived the kill; harvest answered=%d",
		res.RemoteSpans, res.LocalSpans, res.HarvestAnswered)
}

// TestHarvestUnderLoad is the -race workload: four query lanes against a
// 3-worker cluster while a reader goroutine loops the whole federation
// read path and a 1ms background harvester runs. scripts/check.sh runs
// this package under -race.
func TestHarvestUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harvest-load suite in -short mode")
	}
	if err := experiments.RunHarvestUnderLoad(3, 1200, 6); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityGate is the perf gate wired into scripts/check.sh: with
// PERF_GATE=1 it fails the build when observability-on Q1 throughput on a
// cached table regresses more than 5% against observability-off. Env-gated
// because the threshold is meaningless on a machine running other work.
func TestObservabilityGate(t *testing.T) {
	if os.Getenv("PERF_GATE") == "" {
		t.Skip("set PERF_GATE=1 to run the observability-overhead regression gate")
	}
	const limit = 0.05
	// Best of 3: the gate asks whether the overhead CAN stay under the
	// limit, not whether every noisy sample does.
	best := 1.0
	for try := 0; try < 3; try++ {
		ov, err := experiments.ObservabilityOverhead(200_000, 10)
		if err != nil {
			t.Fatal(err)
		}
		if ov < best {
			best = ov
		}
	}
	t.Logf("observability overhead on cached Q1: %.2f%%", best*100)
	if best > limit {
		t.Fatalf("observability overhead is %.2f%%, above the %.0f%% budget", best*100, limit*100)
	}
}

// TestEventLogStrictJSON runs a local workload and validates the event
// log's wire form: every line one strict JSON object with the required
// fields, one entry per completed action, errors recorded not dropped.
func TestEventLogStrictJSON(t *testing.T) {
	ctx := sparksql.NewContext()
	schema := types.StructType{}.
		Add("k", types.Long, false).
		Add("v", types.Long, false)
	rows := make([]sparksql.Row, 32)
	for i := range rows {
		rows[i] = row.Row{int64(i % 4), int64(i)}
	}
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("kv")

	queries := []string{
		"SELECT k, SUM(v) FROM kv GROUP BY k",
		"SELECT COUNT(*) FROM kv WHERE v > 10",
		"SELECT v FROM kv ORDER BY v LIMIT 5",
	}
	for _, q := range queries {
		qdf, err := ctx.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := qdf.Collect(); err != nil {
			t.Fatal(err)
		}
	}

	events := ctx.EventLog().Events()
	if len(events) < len(queries) {
		t.Fatalf("event log has %d entries, want >= %d", len(events), len(queries))
	}
	for _, ev := range events[len(events)-len(queries):] {
		if ev.ID == "" || ev.Action == "" || ev.PlanHash == "" || ev.Plan == "" {
			t.Fatalf("event missing required fields: %+v", ev)
		}
	}

	var buf bytes.Buffer
	if err := ctx.EventLog().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	assertStrictJSONL(t, buf.String())

	// SHOW HISTORY replays the same entries through SQL.
	hdf, err := ctx.SQL("SHOW HISTORY")
	if err != nil {
		t.Fatal(err)
	}
	hrows, err := hdf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// The SHOW HISTORY collect itself may already have appended an event by
	// the time it renders, so only demand at least the workload's entries.
	if len(hrows) < len(queries) {
		t.Fatalf("SHOW HISTORY returned %d rows, want >= %d", len(hrows), len(queries))
	}
}

// assertStrictJSONL fails unless every line of s is a standalone strict
// JSON object that decodes without unknown-syntax leftovers.
func assertStrictJSONL(t *testing.T, s string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty JSONL document")
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %q", i+1, line)
		}
		dec := json.NewDecoder(strings.NewReader(line))
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("line %d failed to decode: %v", i+1, err)
		}
		if dec.More() {
			t.Fatalf("line %d holds more than one JSON value: %q", i+1, line)
		}
	}
}
