package experiments

// Observability federation study: the distributed-tracing counterpart of
// the multiproc chaos suite. A coordinator context and real re-execed
// worker processes run a fixed query; the harness then inspects the three
// observability surfaces the cluster must agree on — the merged trace
// (worker spans carrying the coordinator's trace id), the federated
// metrics snapshot (worker-labeled counters pulled over the task
// protocol), and the query event log (per-worker actuals replayed from
// the merged spans). With KillWorker set, one worker is SIGKILLed
// mid-query and the same invariants must still hold: a worker's death may
// truncate its spans, never corrupt the merged trace or the event log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	sparksql "repro"
	"repro/internal/metrics"
)

// ObsFederationConfig shapes one federation run.
type ObsFederationConfig struct {
	// Workers is how many worker processes to spawn.
	Workers int
	// N is the rankings table size.
	N int64
	// KillWorker SIGKILLs one worker mid-query before the observed query
	// runs, so the merged trace is built while the cluster is recovering.
	KillWorker bool
}

// DefaultObsFederationConfig is what the tests and scripts/check.sh run.
func DefaultObsFederationConfig() ObsFederationConfig {
	return ObsFederationConfig{Workers: 3, N: 1200}
}

// ObsFederationResult summarizes one run.
type ObsFederationResult struct {
	// TraceID is the observed query's coordinator-allocated trace id.
	TraceID string
	// MergedJSONL is the observed query's merged trace, normalized (ids,
	// workers and timings replaced by stable markers) and sorted — the
	// golden form: two runs of the same workload must render identically.
	MergedJSONL string
	// RemoteSpans / LocalSpans split the merged trace by origin process.
	RemoteSpans int
	LocalSpans  int
	// Workers are the distinct worker ids attributed in the merged trace.
	Workers []string
	// HarvestAnswered is how many workers answered the federation pull;
	// FederatedSamples is the merged snapshot size after it.
	HarvestAnswered  int
	FederatedSamples int
	// EventJSONL is the full event log in its strict-JSON wire form.
	EventJSONL string
	// EventWorkers is the per-worker task attribution recorded in the
	// observed query's event-log entry (worker "" = coordinator-local).
	EventWorkers map[string]int
}

// obsQuery is the observed workload: shuffle-free, so every partition is
// one independent remote dispatch and the merged trace has a fixed shape.
const obsQuery = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 50"

// RunObsFederation runs the study. The calling process must have passed
// sqlexec.RunIfWorker in its TestMain so worker re-execs work.
func RunObsFederation(cfg ObsFederationConfig) (*ObsFederationResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	res := &ObsFederationResult{}

	// Fault-free local golden answer.
	golden, err := chaosContext(cfg.N, false, false)
	if err != nil {
		return nil, err
	}
	wantRows, err := collectSQL(golden, obsQuery)
	if err != nil {
		return nil, err
	}
	want := formatRows(wantRows)

	dcfg := sparksql.DefaultConfig()
	dcfg.Parallelism = 4
	dcfg.ShufflePartitions = 4
	dcfg.Cluster = &sparksql.ClusterOptions{
		HeartbeatTimeout: 700 * time.Millisecond,
		TaskTimeout:      30 * time.Second,
	}
	dist := sparksql.NewContextWithConfig(dcfg)
	defer dist.Close()
	if err := loadRankings(dist, cfg.N, false); err != nil {
		return nil, err
	}
	dist.RDDContext().SetBackoff(time.Microsecond, 50*time.Microsecond)

	addr := dist.ClusterAddr()
	procs := make(map[string]*workerProc, cfg.Workers)
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	for i := 0; i < cfg.Workers; i++ {
		id := fmt.Sprintf("obs-w%d", i)
		p, err := spawnWorker(addr, id)
		if err != nil {
			return nil, fmt.Errorf("obsfed: spawn %s: %w", id, err)
		}
		procs[id] = p
	}
	if err := waitWorkers(dist, cfg.Workers, 10*time.Second); err != nil {
		return nil, err
	}

	// Warm the session (ships the catalog) so the observed query's trace
	// is execution, not initialization.
	if _, err := collectSQL(dist, "SELECT COUNT(*) FROM rankings"); err != nil {
		return nil, err
	}

	if cfg.KillWorker {
		go func() {
			time.Sleep(2 * time.Millisecond) // land mid-query
			procs["obs-w0"].kill()
		}()
	}

	got, err := collectSQL(dist, obsQuery)
	if err != nil {
		return nil, fmt.Errorf("obsfed: observed query: %w", err)
	}
	if formatRows(got) != want {
		return nil, fmt.Errorf("obsfed: distributed answer diverged from local golden")
	}

	// The observed query is the newest event-log entry; its ID is the
	// trace id every one of its spans — local and remote — must carry.
	events := dist.EventLog().Events()
	if len(events) == 0 {
		return nil, fmt.Errorf("obsfed: event log empty after observed query")
	}
	last := events[len(events)-1]
	if last.Action != "collect" || last.Err != "" {
		return nil, fmt.Errorf("obsfed: unexpected final event %+v", last)
	}
	res.TraceID = last.ID
	res.EventWorkers = make(map[string]int)
	for _, wa := range last.Workers {
		res.EventWorkers[wa.Worker] = wa.Tasks
	}

	merged := tracedSpans(dist.Trace().Snapshot(), res.TraceID)
	if len(merged) == 0 {
		return nil, fmt.Errorf("obsfed: no merged spans for trace %s", res.TraceID)
	}
	workers := map[string]bool{}
	for _, s := range merged {
		if s.Trace != res.TraceID {
			return nil, fmt.Errorf("obsfed: span %q carries trace %q, want %q", s.Name, s.Trace, res.TraceID)
		}
		remoteOrigin := s.Worker != "" && !strings.HasSuffix(s.Name, ".remote")
		if remoteOrigin {
			wantParent := fmt.Sprintf("%s/p%d", res.TraceID, s.Partition)
			if s.Parent != wantParent {
				return nil, fmt.Errorf("obsfed: worker span %q parent %q, want %q", s.Name, s.Parent, wantParent)
			}
			res.RemoteSpans++
			workers[s.Worker] = true
		} else {
			res.LocalSpans++
		}
	}
	for w := range workers {
		res.Workers = append(res.Workers, w)
	}
	sort.Strings(res.Workers)
	res.MergedJSONL = NormalizeTrace(merged, res.TraceID)

	// Federation pull: every surviving worker must answer with its
	// registry, and the merged snapshot must attribute counters to it.
	res.HarvestAnswered = dist.Cluster().Harvest(nil)
	snap := dist.Cluster().FederatedSnapshot("")
	res.FederatedSamples = len(snap)
	var fed bytes.Buffer
	if err := dist.Cluster().WriteFederatedMetrics(&fed, "rdd.tasks.*"); err != nil {
		return nil, err
	}
	for _, w := range res.Workers {
		if !strings.Contains(fed.String(), "{worker="+w+"}") {
			return nil, fmt.Errorf("obsfed: federated /metrics view missing worker %s:\n%s", w, fed.String())
		}
	}

	var ev bytes.Buffer
	if err := dist.EventLog().WriteJSONL(&ev); err != nil {
		return nil, err
	}
	res.EventJSONL = ev.String()
	return res, nil
}

func tracedSpans(spans []metrics.Span, tid string) []metrics.Span {
	var out []metrics.Span
	for _, s := range spans {
		if s.Trace == tid {
			out = append(out, s)
		}
	}
	return out
}

// NormalizeTrace renders spans of one trace as deterministic JSONL: the
// trace id becomes "T", parents keep only their partition suffix, worker
// ids collapse to a remote/local origin marker (which worker won a
// partition is scheduling noise), and timings, attempts and byte counts
// are dropped. Spans are sorted by every remaining field, so two runs of
// the same workload produce byte-identical output — the golden form.
func NormalizeTrace(spans []metrics.Span, tid string) string {
	type norm struct {
		Kind      string `json:"kind"`
		Name      string `json:"name"`
		Partition int    `json:"partition"`
		Origin    string `json:"origin"`
		Parent    string `json:"parent,omitempty"`
		Records   int64  `json:"records,omitempty"`
	}
	ns := make([]norm, 0, len(spans))
	for _, s := range spans {
		if s.Trace != tid {
			continue
		}
		n := norm{
			Kind:      string(s.Kind),
			Name:      s.Name,
			Partition: s.Partition,
			Records:   s.Records,
		}
		if s.Worker != "" && !strings.HasSuffix(s.Name, ".remote") {
			n.Origin = "remote"
		} else {
			n.Origin = "local"
		}
		n.Parent = strings.Replace(s.Parent, tid, "T", 1)
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		return a.Records < b.Records
	})
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, n := range ns {
		enc.Encode(n)
	}
	return sb.String()
}

// RunHarvestUnderLoad drives concurrent distributed queries while other
// goroutines hammer the federation read path — Harvest, FederatedSnapshot,
// WriteFederatedMetrics and the merged trace — the whole time. It exists
// to run under -race: the assertion is freedom from data races between
// task-reply absorption and federation reads, not timing.
func RunHarvestUnderLoad(workers int, n int64, queries int) error {
	golden, err := chaosContext(n, false, false)
	if err != nil {
		return err
	}
	wantRows, err := collectSQL(golden, obsQuery)
	if err != nil {
		return err
	}
	want := formatRows(wantRows)

	dcfg := sparksql.DefaultConfig()
	dcfg.Parallelism = 4
	dcfg.ShufflePartitions = 4
	dcfg.Cluster = &sparksql.ClusterOptions{
		HeartbeatTimeout: 5 * time.Second,
		TaskTimeout:      30 * time.Second,
		HarvestInterval:  time.Millisecond, // background harvester at full tilt
	}
	dist := sparksql.NewContextWithConfig(dcfg)
	defer dist.Close()
	if err := loadRankings(dist, n, false); err != nil {
		return err
	}

	addr := dist.ClusterAddr()
	procs := make([]*workerProc, 0, workers)
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	for i := 0; i < workers; i++ {
		p, err := spawnWorker(addr, fmt.Sprintf("load-w%d", i))
		if err != nil {
			return err
		}
		procs = append(procs, p)
	}
	if err := waitWorkers(dist, workers, 10*time.Second); err != nil {
		return err
	}

	done := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-done:
				readerErr <- nil
				return
			default:
			}
			dist.Cluster().Harvest(nil)
			dist.Cluster().FederatedSnapshot("")
			var buf bytes.Buffer
			if err := dist.Cluster().WriteFederatedMetrics(&buf, "rdd.*"); err != nil {
				readerErr <- err
				return
			}
			dist.Trace().Snapshot()
			dist.EventLog().Len()
		}
	}()

	const lanes = 4
	errs := make(chan error, lanes)
	for l := 0; l < lanes; l++ {
		go func() {
			for i := 0; i < queries; i++ {
				rows, err := collectSQL(dist, obsQuery)
				if err != nil {
					errs <- err
					return
				}
				if formatRows(rows) != want {
					errs <- fmt.Errorf("obsfed load: answer diverged under concurrent harvest")
					return
				}
			}
			errs <- nil
		}()
	}
	for l := 0; l < lanes; l++ {
		if err := <-errs; err != nil {
			close(done)
			<-readerErr
			return err
		}
	}
	close(done)
	return <-readerErr
}

// ObservabilityOverhead measures the cost of the observability layer the
// way MetricsOverheadStudy measures metrics: two local engines, identical
// cached rankings tables, observability on vs off, interleaved cached-Q1
// runs. Returns the relative slowdown of the instrumented engine (0.05 =
// 5%); the acceptance gate is that tracing ids + event-log appends stay
// within a few percent.
func ObservabilityOverhead(n int64, iters int) (float64, error) {
	mk := func(obs bool) (*sparksql.Context, error) {
		cfg := sparksql.DefaultConfig()
		cfg.Observability = obs
		ctx := sparksql.NewContextWithConfig(cfg)
		if err := loadRankings(ctx, n, true); err != nil {
			return nil, err
		}
		return ctx, nil
	}
	on, err := mk(true)
	if err != nil {
		return 0, err
	}
	off, err := mk(false)
	if err != nil {
		return 0, err
	}
	x := Q1Params[0]
	for _, ctx := range []*sparksql.Context{on, off} {
		if _, err := RunSQL(ctx, Q1(x)); err != nil {
			return 0, err
		}
	}
	var onNS, offNS int64
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := RunSQL(on, Q1(x)); err != nil {
			return 0, err
		}
		onNS += time.Since(start).Nanoseconds()
		start = time.Now()
		if _, err := RunSQL(off, Q1(x)); err != nil {
			return 0, err
		}
		offNS += time.Since(start).Nanoseconds()
	}
	if offNS == 0 {
		return 0, fmt.Errorf("obsfed: zero baseline time")
	}
	return float64(onNS-offNS) / float64(offNS), nil
}
