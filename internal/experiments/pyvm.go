package experiments

import "fmt"

// This file is the stand-in for CPython in the Figure 9 comparison. The
// paper's "native Spark Python" baseline is slow because each record runs
// user lambdas under a bytecode interpreter over boxed objects. Rather than
// fake that with sleeps, we implement a miniature stack-machine interpreter
// with boxed values and run the benchmark's lambdas on it, so the measured
// gap comes from real interpretation and boxing costs — the same mechanism
// as the paper's, scaled to a small VM.

// pyOp is one VM instruction.
type pyOp struct {
	code pyCode
	arg  int
}

type pyCode int

const (
	opLoadArg    pyCode = iota // push args[arg]
	opLoadConst                // push consts[arg]
	opIndex                    // pop tuple, push tuple[arg]
	opAdd                      // pop b, a; push a+b
	opBuildTuple               // pop arg values; push tuple
	opReturn                   // pop and return
)

// pyValue is a boxed VM value: int64 or tuple.
type pyValue any

// pyTuple is a boxed tuple.
type pyTuple []pyValue

// pyFunc is a "compiled" lambda: bytecode + constants.
type pyFunc struct {
	ops    []pyOp
	consts []pyValue
}

// call interprets the function over boxed arguments.
func (f *pyFunc) call(args ...pyValue) pyValue {
	// A fresh boxed stack per call, like a CPython frame.
	stack := make([]pyValue, 0, 8)
	for _, op := range f.ops {
		switch op.code {
		case opLoadArg:
			stack = append(stack, args[op.arg])
		case opLoadConst:
			stack = append(stack, f.consts[op.arg])
		case opIndex:
			t := stack[len(stack)-1].(pyTuple)
			stack[len(stack)-1] = t[op.arg]
		case opAdd:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			stack = append(stack, a.(int64)+b.(int64))
		case opBuildTuple:
			n := op.arg
			t := make(pyTuple, n)
			copy(t, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			stack = append(stack, t)
		case opReturn:
			return stack[len(stack)-1]
		default:
			panic(fmt.Sprintf("pyvm: bad opcode %d", op.code))
		}
	}
	panic("pyvm: function fell off the end")
}

// pyMapLambda is `lambda x: (x[0], (x[1], 1))` — the map side of the
// paper's Python aggregation.
func pyMapLambda() *pyFunc {
	return &pyFunc{
		consts: []pyValue{int64(1)},
		ops: []pyOp{
			{code: opLoadArg, arg: 0},
			{code: opIndex, arg: 0},
			{code: opLoadArg, arg: 0},
			{code: opIndex, arg: 1},
			{code: opLoadConst, arg: 0},
			{code: opBuildTuple, arg: 2},
			{code: opBuildTuple, arg: 2},
			{code: opReturn},
		},
	}
}

// pyReduceLambda is `lambda x, y: (x[0]+y[0], x[1]+y[1])`.
func pyReduceLambda() *pyFunc {
	return &pyFunc{
		ops: []pyOp{
			{code: opLoadArg, arg: 0},
			{code: opIndex, arg: 0},
			{code: opLoadArg, arg: 1},
			{code: opIndex, arg: 0},
			{code: opAdd},
			{code: opLoadArg, arg: 0},
			{code: opIndex, arg: 1},
			{code: opLoadArg, arg: 1},
			{code: opIndex, arg: 1},
			{code: opAdd},
			{code: opBuildTuple, arg: 2},
			{code: opReturn},
		},
	}
}
