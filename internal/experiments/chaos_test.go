package experiments

import "testing"

// The SQL workload must return byte-identical results in every engine mode
// while ~10 % of tasks fail their first attempts.
func TestChaosSQLWorkload(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.N = 800 // keep the -race run quick
	injected, err := RunSQLChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if injected == 0 {
		t.Fatal("schedule injected no faults; chaos run proved nothing")
	}
	t.Logf("chaos sql: %d task failures injected, results identical", injected)
}

// Spills under fire: a tiny memory budget forces every blocking operator
// to spill while tasks and spill-file writes fail transiently; results must
// stay byte-identical and no spill file may survive.
func TestChaosSpillWorkload(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.N = 800 // keep the -race run quick
	injected, err := RunSpillChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if injected == 0 {
		t.Fatal("schedule injected no faults; chaos run proved nothing")
	}
	t.Logf("chaos spill: %d faults injected, results identical, no spill files leaked", injected)
}

// The RDD pipeline (flaky DFS reads → shuffle word count → cache with
// dropped partitions) must match a fault-free run.
func TestChaosRDDPipeline(t *testing.T) {
	if err := RunRDDChaos(DefaultChaosConfig()); err != nil {
		t.Fatal(err)
	}
}

// A planted straggler must be rescued by a speculative backup attempt.
func TestChaosStragglerSpeculation(t *testing.T) {
	launches, wins, err := RunStragglerChaos(DefaultChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if launches == 0 {
		t.Fatal("no speculative backup launched for the straggler")
	}
	if wins == 0 {
		t.Fatal("the backup attempt should have finished first")
	}
}

// Determinism: the same seed produces the same injection schedule.
func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	for p := 0; p < 32; p++ {
		if cfg.afflicted("x", p) != cfg.afflicted("x", p) {
			t.Fatal("schedule must be a pure function of (seed, name, partition)")
		}
	}
	other := cfg
	other.Seed++
	same := 0
	for p := 0; p < 512; p++ {
		if cfg.afflicted("x", p) == other.afflicted("x", p) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("different seeds should produce different schedules")
	}
}
