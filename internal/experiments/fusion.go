package experiments

import (
	"fmt"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/row"
)

// Ablation: whole-stage fusion over the columnar cache. Three engines hold
// the same cached rankings table. The row engine materializes a boxed row at
// every operator boundary; the vectorized engine runs the scan→filter
// pipeline batch-at-a-time but still hands boxed rows to the aggregate and
// join operators above it; the fused engine runs scan→filter→aggregate-update
// (and scan→filter→join-probe) over batches end to end, with
// type-specialized group and probe tables. A hand-written loop over typed
// slices is the native ceiling for the aggregate shape.
type FusionStudy struct {
	RowCtx   *sparksql.Context // Vectorized off
	VecCtx   *sparksql.Context // Vectorized on, Fusion off
	FusedCtx *sparksql.Context // Vectorized on, Fusion on
	N        int64

	ranks     []int32
	durations []int32
}

// FusedAggQuery aggregates the cached Q1 shape: the scan and pageRank filter
// of AMPLab Q1 (its least-selective variant, so the aggregate sees real
// volume) feeding a grouped aggregate over the 99 distinct durations.
func FusedAggQuery() string {
	return "SELECT avgDuration, count(*), sum(pageRank), avg(pageRank) " +
		"FROM rankings WHERE pageRank > 1 GROUP BY avgDuration"
}

// FusedJoinQuery probes a sparse broadcast dimension (every fifth duration)
// from the same pipeline shape: most probe rows miss, which is exactly where
// the fused probe wins — missed rows are never materialized.
func FusedJoinQuery() string {
	return "SELECT r.pageURL, d.bucket FROM rankings r " +
		"JOIN durdim d ON r.avgDuration = d.avgDuration WHERE r.pageRank > 1"
}

// NewFusionStudy builds and caches n rankings rows (plus a sparse duration
// dimension) under all three engines.
func NewFusionStudy(n int64) (*FusionStudy, error) {
	s := &FusionStudy{N: n}
	rows := make([]row.Row, n)
	s.ranks = make([]int32, n)
	s.durations = make([]int32, n)
	for i := int64(0); i < n; i++ {
		r := datagen.RankingRow(42, i)
		rows[i] = r
		s.ranks[i] = r[1].(int32)
		s.durations[i] = r[2].(int32)
	}
	dimSchema := sparksql.StructType{}.
		Add("avgDuration", sparksql.IntType, false).
		Add("bucket", sparksql.StringType, false)
	var dimRows []row.Row
	for d := int32(5); d <= 99; d += 5 {
		dimRows = append(dimRows, row.Row{d, fmt.Sprintf("bucket%02d", d/10)})
	}
	mk := func(vectorized, fusion bool) (*sparksql.Context, error) {
		cfg := sparksql.DefaultConfig()
		cfg.Vectorized = vectorized
		cfg.Fusion = fusion
		ctx := sparksql.NewContextWithConfig(cfg)
		df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), rows)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		df.RegisterTempTable("rankings")
		ddf, err := ctx.CreateDataFrame(dimSchema, dimRows)
		if err != nil {
			return nil, err
		}
		if _, err := ddf.Cache(); err != nil {
			return nil, err
		}
		ddf.RegisterTempTable("durdim")
		return ctx, nil
	}
	var err error
	if s.RowCtx, err = mk(false, false); err != nil {
		return nil, err
	}
	if s.VecCtx, err = mk(true, false); err != nil {
		return nil, err
	}
	if s.FusedCtx, err = mk(true, true); err != nil {
		return nil, err
	}
	return s, nil
}

// RunRow / RunVec / RunFused execute a query on the respective engine.
func (s *FusionStudy) RunRow(q string) (int64, error)   { return RunSQL(s.RowCtx, q) }
func (s *FusionStudy) RunVec(q string) (int64, error)   { return RunSQL(s.VecCtx, q) }
func (s *FusionStudy) RunFused(q string) (int64, error) { return RunSQL(s.FusedCtx, q) }

// NativeAgg is the hand-written ceiling for the aggregate shape: one pass
// over typed slices into dense per-duration accumulators.
func (s *FusionStudy) NativeAgg() int64 {
	var counts [100]int64
	var sums [100]int64
	for i, rank := range s.ranks {
		if rank > 10 {
			d := s.durations[i]
			counts[d]++
			sums[d] += int64(rank)
		}
	}
	var groups int64
	for _, c := range counts {
		if c > 0 {
			groups++
		}
	}
	return groups
}

// Verify asserts all three engines produce identical result sets for both
// shapes (sorted comparison: aggregate emission order is map-random on the
// row path), and that the aggregate matches the native group count.
func (s *FusionStudy) Verify() error {
	for _, q := range []string{FusedAggQuery(), FusedJoinQuery()} {
		rowRes, err := collectSorted(s.RowCtx, q)
		if err != nil {
			return err
		}
		vecRes, err := collectSorted(s.VecCtx, q)
		if err != nil {
			return err
		}
		fusedRes, err := collectSorted(s.FusedCtx, q)
		if err != nil {
			return err
		}
		if rowRes != vecRes {
			return fmt.Errorf("fusion: %q vectorized diverged from row path", q)
		}
		if rowRes != fusedRes {
			return fmt.Errorf("fusion: %q fused diverged from row path", q)
		}
	}
	aggRows, err := s.RunFused(FusedAggQuery())
	if err != nil {
		return err
	}
	if aggRows != s.NativeAgg() {
		return fmt.Errorf("fusion: fused agg %d groups, native %d", aggRows, s.NativeAgg())
	}
	return nil
}

// collectSorted runs a query and renders its rows in canonical sorted form.
func collectSorted(ctx *sparksql.Context, q string) (string, error) {
	df, err := ctx.SQL(q)
	if err != nil {
		return "", err
	}
	rows, err := df.Collect()
	if err != nil {
		return "", err
	}
	return formatRows(rows), nil
}

// FusedPlans returns the fused engine's EXPLAIN output for both shapes, so
// callers can assert fusion actually engaged before timing it.
func (s *FusionStudy) FusedPlans() (agg, join string, err error) {
	adf, err := s.FusedCtx.SQL(FusedAggQuery())
	if err != nil {
		return "", "", err
	}
	if agg, err = adf.Explain(); err != nil {
		return "", "", err
	}
	jdf, err := s.FusedCtx.SQL(FusedJoinQuery())
	if err != nil {
		return "", "", err
	}
	if join, err = jdf.Explain(); err != nil {
		return "", "", err
	}
	return agg, join, nil
}
