package experiments

import (
	"fmt"
	"time"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/row"
)

// Memory-budget ablation: what does bounding execution memory cost? Spark
// runs the same operators in memory when they fit and spills sorted runs /
// hash partitions to disk when they don't; this study runs a cached
// Q1-style aggregation and a large self-join at three budgets — unlimited,
// 10% of the data size and 1% of the data size — and reports runtime plus
// the spill traffic each budget forces. Results must be identical at every
// budget (the spill paths' byte-identical contract) and no spill file may
// survive a run.
type SpillStudy struct {
	// N is the rankings table size.
	N int64
	// DataBytes is the boxed in-memory size of the table, the reference
	// the fractional budgets are computed from.
	DataBytes int64
	rows      []row.Row
}

// SpillResult is one budget's measurements.
type SpillResult struct {
	Mode       string
	Budget     int64 // bytes; 0 = unlimited
	AggTime    time.Duration
	JoinTime   time.Duration
	SpillBytes int64 // encoded bytes written to the spill DFS
	SpillRuns  int64 // spill events across all operators
	aggText    string
	joinText   string
}

const (
	spillAggQuery = "SELECT pageRank, COUNT(*), SUM(avgDuration), AVG(avgDuration) FROM rankings GROUP BY pageRank"
	// A key-unique self-join: every row matches exactly once, so the
	// output is N rows and the join state — not the result — dominates
	// memory.
	spillJoinQuery = "SELECT a.pageURL, a.pageRank, b.avgDuration FROM rankings a JOIN rankings b ON a.pageURL = b.pageURL"
)

// NewSpillStudy generates the rankings table and measures its boxed size.
func NewSpillStudy(n int64) (*SpillStudy, error) {
	s := &SpillStudy{N: n, rows: make([]row.Row, n)}
	for i := int64(0); i < n; i++ {
		s.rows[i] = datagen.RankingRow(42, i)
		s.DataBytes += s.rows[i].ObjectSize()
	}
	return s, nil
}

// Context builds an engine at the given budget with the rankings table
// registered and cached (the aggregation scans the columnar cache, like
// the paper's warmed benchmarks).
func (s *SpillStudy) Context(budget int64) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	cfg.MemoryBudget = budget
	ctx := sparksql.NewContextWithConfig(cfg)
	df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), s.rows)
	if err != nil {
		return nil, err
	}
	if _, err := df.Cache(); err != nil {
		return nil, err
	}
	df.RegisterTempTable("rankings")
	return ctx, nil
}

// Run measures all three budgets. Spill I/O keeps the DFS's default
// simulated disk cost, so the reported times include what spilling pays.
func (s *SpillStudy) Run() ([]SpillResult, error) {
	modes := []SpillResult{
		{Mode: "unlimited", Budget: 0},
		{Mode: "10% of data", Budget: s.DataBytes / 10},
		{Mode: "1% of data", Budget: s.DataBytes / 100},
	}
	for i := range modes {
		m := &modes[i]
		ctx, err := s.Context(m.Budget)
		if err != nil {
			return nil, err
		}
		collect := func(q string) (string, time.Duration, error) {
			best := time.Duration(1<<63 - 1)
			var text string
			for r := 0; r < 3; r++ {
				df, err := ctx.SQL(q)
				if err != nil {
					return "", 0, err
				}
				t0 := time.Now()
				rows, err := df.Collect()
				if err != nil {
					return "", 0, err
				}
				if d := time.Since(t0); d < best {
					best = d
				}
				text = formatRows(rows)
			}
			return text, best, nil
		}
		if m.aggText, m.AggTime, err = collect(spillAggQuery); err != nil {
			return nil, fmt.Errorf("spill study %s agg: %w", m.Mode, err)
		}
		if m.joinText, m.JoinTime, err = collect(spillJoinQuery); err != nil {
			return nil, fmt.Errorf("spill study %s join: %w", m.Mode, err)
		}
		reg := ctx.Metrics()
		m.SpillBytes = reg.Counter("memory.spill.bytes").Load()
		m.SpillRuns = reg.Counter("memory.spill.count").Load()
		if nf := ctx.SpillFS().NumFiles(); nf != 0 {
			return nil, fmt.Errorf("spill study %s: %d spill files leaked", m.Mode, nf)
		}
	}
	for _, m := range modes[1:] {
		if m.aggText != modes[0].aggText {
			return nil, fmt.Errorf("spill study %s: aggregation diverged from unlimited run", m.Mode)
		}
		if m.joinText != modes[0].joinText {
			return nil, fmt.Errorf("spill study %s: join diverged from unlimited run", m.Mode)
		}
		if m.SpillBytes == 0 {
			return nil, fmt.Errorf("spill study %s: budget %d forced no spilling", m.Mode, m.Budget)
		}
	}
	if modes[0].SpillBytes != 0 {
		return nil, fmt.Errorf("spill study: unlimited run spilled %d bytes", modes[0].SpillBytes)
	}
	return modes, nil
}
