package experiments

import (
	"fmt"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/row"
)

// Ablation: vectorized batch execution over the columnar cache. Two engines
// hold the same cached rankings table; one runs fused pipelines
// row-at-a-time, the other batch-at-a-time with typed vectors and selection
// vectors. A hand-written loop over pre-extracted typed columns is the
// native ceiling (the Figure 8 "hand-written" analogue for the Q1 shape).
type VectorizedStudy struct {
	RowCtx *sparksql.Context // Vectorized off
	VecCtx *sparksql.Context // Vectorized on
	N      int64

	// Native columns: the rankings table decoded once into typed slices.
	urls  []string
	ranks []int32
}

// NewVectorizedStudy builds and caches n rankings rows under both engines.
func NewVectorizedStudy(n int64) (*VectorizedStudy, error) {
	s := &VectorizedStudy{N: n}
	rows := make([]row.Row, n)
	s.urls = make([]string, n)
	s.ranks = make([]int32, n)
	for i := int64(0); i < n; i++ {
		r := datagen.RankingRow(42, i)
		rows[i] = r
		s.urls[i] = r[0].(string)
		s.ranks[i] = r[1].(int32)
	}
	mk := func(vectorized bool) (*sparksql.Context, error) {
		cfg := sparksql.DefaultConfig()
		cfg.Vectorized = vectorized
		ctx := sparksql.NewContextWithConfig(cfg)
		df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), rows)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		df.RegisterTempTable("rankings")
		return ctx, nil
	}
	var err error
	if s.RowCtx, err = mk(false); err != nil {
		return nil, err
	}
	if s.VecCtx, err = mk(true); err != nil {
		return nil, err
	}
	return s, nil
}

// RunRow executes Q1 with the row-at-a-time pipeline.
func (s *VectorizedStudy) RunRow(x int32) (int64, error) { return RunSQL(s.RowCtx, Q1(x)) }

// RunVec executes Q1 with the vectorized pipeline.
func (s *VectorizedStudy) RunVec(x int32) (int64, error) { return RunSQL(s.VecCtx, Q1(x)) }

// RunNative is the hand-written ceiling: a tight loop over typed slices.
func (s *VectorizedStudy) RunNative(x int32) int64 {
	var n int64
	for i, rank := range s.ranks {
		if rank > x {
			_ = s.urls[i]
			n++
		}
	}
	return n
}

// Verify asserts both engines produce identical rows for every Q1
// selectivity — the correctness contract of the vectorized path.
func (s *VectorizedStudy) Verify() error {
	for _, x := range Q1Params {
		q := Q1(x)
		rowDF, err := s.RowCtx.SQL(q)
		if err != nil {
			return err
		}
		vecDF, err := s.VecCtx.SQL(q)
		if err != nil {
			return err
		}
		rowRes, err := rowDF.Collect()
		if err != nil {
			return err
		}
		vecRes, err := vecDF.Collect()
		if err != nil {
			return err
		}
		if len(rowRes) != len(vecRes) {
			return fmt.Errorf("vectorized: Q1(%d) row-path %d rows, vectorized %d",
				x, len(rowRes), len(vecRes))
		}
		native := s.RunNative(x)
		if int64(len(rowRes)) != native {
			return fmt.Errorf("vectorized: Q1(%d) engine %d rows, native %d", x, len(rowRes), native)
		}
		for i := range rowRes {
			for j := range rowRes[i] {
				if !row.Equal(rowRes[i][j], vecRes[i][j]) {
					return fmt.Errorf("vectorized: Q1(%d) row %d col %d: %v != %v",
						x, i, j, rowRes[i][j], vecRes[i][j])
				}
			}
		}
	}
	return nil
}
