package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

func TestExplainShowsAllPhases(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	qe, err := e.Execute(&plan.Filter{
		Cond:  expr.GT(rel.Attrs[1], expr.Lit(int32(20))),
		Child: rel,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := qe.Explain()
	for _, section := range []string{"Logical Plan", "Analyzed Plan", "Optimized Plan", "Physical Plan"} {
		if !strings.Contains(out, section) {
			t.Errorf("explain missing %s:\n%s", section, out)
		}
	}
	// All four plan snapshots are retained.
	if qe.Logical == nil || qe.Analyzed == nil || qe.Optimized == nil || qe.Physical == nil {
		t.Fatal("QueryExecution must retain every phase")
	}
}

func TestConfigKnobsChangePhysicalPlans(t *testing.T) {
	rel := usersRelation()
	build := func(cfg Config) string {
		e := NewEngine(cfg)
		qe, err := e.Execute(&plan.Project{
			List:  []expr.Expression{rel.Attrs[0]},
			Child: &plan.Filter{Cond: expr.GT(rel.Attrs[1], expr.Lit(int32(20))), Child: rel},
		})
		if err != nil {
			t.Fatal(err)
		}
		return qe.Physical.String()
	}
	full := build(DefaultConfig())
	if !strings.Contains(full, "WholeStagePipeline") {
		t.Errorf("default config should fuse pipelines:\n%s", full)
	}
	shark := build(SharkConfig())
	if strings.Contains(shark, "WholeStagePipeline") {
		t.Errorf("shark config must not fuse pipelines:\n%s", shark)
	}
}

func TestExecutionErrorsSurfaceAsErrors(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	// A UDF that panics at runtime: Collect must return an error, not
	// crash the process (tasks run on worker goroutines).
	udf := &expr.ScalarUDF{
		Name: "boom",
		Fn:   func([]any) any { panic("kaboom") },
		In:   []types.DataType{types.Int},
		Ret:  types.Int,
		Args: []expr.Expression{rel.Attrs[1]},
	}
	qe, err := e.Execute(&plan.Project{
		List:  []expr.Expression{expr.NewAlias(udf, "b")},
		Child: rel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qe.Collect(); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	if _, err := qe.Count(); err == nil {
		t.Fatal("Count must surface task panics too")
	}
}

func TestTaskFailureInjectionSurfaces(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	e.RDDCtx.SetFailureHook(func(name string, p, attempt int) error {
		return errors.New("node down") // every attempt fails
	})
	qe, err := e.Execute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qe.Collect(); err == nil || !strings.Contains(err.Error(), "node down") {
		t.Fatalf("err = %v", err)
	}
}

func TestAddStrategyInterceptsPlanning(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	hits := 0
	e.AddStrategy(func(pl *physical.Planner, lp plan.LogicalPlan) (physical.SparkPlan, bool, error) {
		hits++
		return nil, false, nil
	})
	if _, err := e.Execute(rel); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("strategies must be consulted")
	}
}

func TestEngineParallelismDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 0
	cfg.ShufflePartitions = 0
	e := NewEngine(cfg)
	if e.RDDCtx.Parallelism() < 1 {
		t.Fatal("parallelism must default to a positive value")
	}
	if e.Cfg.ShufflePartitions < 1 {
		t.Fatal("shuffle partitions must default")
	}
	_ = rdd.NewContext(0) // zero-clamped too
}

func TestCollectEmptyRelation(t *testing.T) {
	e := NewEngine(DefaultConfig())
	empty := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "x", Type: types.Int, Nullable: false},
	), nil)
	qe, err := e.Execute(empty)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := qe.Collect()
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
	var _ row.Row
}

// Acceptance: a terminal task failure is retrievable as *rdd.JobError with
// errors.As from the engine's Collect and Count.
func TestJobErrorRetrievableViaErrorsAs(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	e.RDDCtx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	e.RDDCtx.SetFailureHook(func(name string, p, attempt int) error {
		return errors.New("node down")
	})
	qe, err := e.Execute(rel)
	if err != nil {
		t.Fatal(err)
	}
	_, err = qe.Collect()
	var je *rdd.JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *rdd.JobError via errors.As, got %T: %v", err, err)
	}
	if je.Attempts == 0 || je.RDDName == "" {
		t.Fatalf("JobError not populated: %+v", je)
	}
	if _, err := qe.Count(); !errors.As(err, &je) {
		t.Fatalf("Count should surface *rdd.JobError too: %v", err)
	}
}

// Acceptance: the engine's QueryTimeout cancels a stuck query promptly and
// surfaces context.DeadlineExceeded.
func TestQueryTimeoutCancelsStuckQuery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 30 * time.Millisecond
	e := NewEngine(cfg)
	rel := usersRelation()
	// Every first attempt hangs far beyond the timeout; the latency hook
	// sleeps context-aware, so cancellation tears it down immediately.
	e.RDDCtx.SetLatencyHook(func(name string, p, attempt int) time.Duration {
		return 10 * time.Second
	})
	qe, err := e.Execute(rel)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = qe.Collect()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout not prompt: %v", elapsed)
	}
}

// Acceptance: a caller-cancelled context propagates context.Canceled.
func TestCollectContextCancelled(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	qe, err := e.Execute(rel)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := qe.CollectContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := qe.CountContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountContext: want context.Canceled, got %v", err)
	}
}
