package core

// The query event log — this reproduction's analog of Spark's event log
// and history server. Every completed query action appends one JSON object
// (plan, plan hash, AQE decisions, per-stage actuals, spill/fallback
// counters, per-worker task breakdown) to an append-only JSONL file stored
// via internal/dfs, so event I/O is metered and fault-injectable like spill
// and shuffle traffic. SHOW HISTORY and the SQL server's /history endpoint
// replay it.

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/dfs"
)

// StageActual is one stage's observed output, lifted from its trace span.
type StageActual struct {
	Name   string  `json:"name"`
	Rows   int64   `json:"rows"`
	Millis float64 `json:"millis"`
	Err    string  `json:"err,omitempty"`
}

// WorkerActual is one worker's contribution to a query: how many task
// spans it reported, and the rows/bytes/time they carried. Worker "" is
// the coordinator process itself (locally computed partitions).
type WorkerActual struct {
	Worker string  `json:"worker"`
	Tasks  int     `json:"tasks"`
	Rows   int64   `json:"rows"`
	Bytes  int64   `json:"bytes"`
	Millis float64 `json:"millis"`
}

// QueryEvent is one event-log entry: a completed query action end to end.
type QueryEvent struct {
	ID          string         `json:"id"` // trace id; also the span correlation key
	SQL         string         `json:"sql,omitempty"`
	Action      string         `json:"action"` // collect | count | explain-analyze
	PlanHash    string         `json:"planHash,omitempty"`
	Plan        string         `json:"plan,omitempty"`
	Decisions   []string       `json:"decisions,omitempty"` // AQE "adapted:" rewrites
	StartUnixMS int64          `json:"startUnixMS"`
	Millis      float64        `json:"millis"`
	Rows        int64          `json:"rows"`
	Err         string         `json:"err,omitempty"`
	Spills      int64          `json:"spills,omitempty"`    // memory.spill.count at completion
	Fallbacks   int64          `json:"fallbacks,omitempty"` // cluster.fallback at completion
	Stages      []StageActual  `json:"stages,omitempty"`
	Workers     []WorkerActual `json:"workers,omitempty"`
}

// eventLogPath is the JSONL file inside the event log's DFS namespace.
const eventLogPath = "events/queries.jsonl"

// EventLog is the append-only query history. It owns a private DFS (events
// must survive spill-file cleanup, which deletes aggressively by prefix on
// the engine's SpillFS) and appends one block per event — blocks are the
// DFS append unit, and one block per JSON line is exactly the JSONL framing
// the history endpoints serve.
type EventLog struct {
	mu sync.Mutex
	fs *dfs.FileSystem
}

// NewEventLog builds an empty event log.
func NewEventLog() *EventLog {
	return &EventLog{fs: dfs.New()}
}

// FS exposes the underlying DFS for fault-injection tests.
func (l *EventLog) FS() *dfs.FileSystem {
	if l == nil {
		return nil
	}
	return l.fs
}

// Record appends one event. Nil-safe; append errors (injected DFS faults)
// drop the event rather than failing the query — observability must never
// change query outcomes.
func (l *EventLog) Record(ev QueryEvent) {
	if l == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fs.AppendBlock(eventLogPath, b)
}

// Events replays the log oldest-first. Blocks that fail to read or decode
// (injected faults, torn writes) are skipped, never corrupting the replay.
func (l *EventLog) Events() []QueryEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.fs.NumBlocks(eventLogPath)
	if err != nil {
		return nil
	}
	out := make([]QueryEvent, 0, n)
	for i := 0; i < n; i++ {
		blk, err := l.fs.ReadBlock(eventLogPath, i)
		if err != nil {
			continue
		}
		var ev QueryEvent
		if err := json.Unmarshal(blk, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Len returns the number of replayable events.
func (l *EventLog) Len() int { return len(l.Events()) }

// WriteJSONL streams the log oldest-first, one strict JSON object per line
// — the format the /history endpoint serves and CI validates.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
