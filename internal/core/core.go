// Package core ties the Catalyst phases together (paper Figure 3): a
// QueryExecution carries a query from logical plan through analysis,
// logical optimization and physical planning to RDD execution. The Engine
// owns the catalog, the RDD execution context and the configuration knobs
// that the evaluation section's baselines toggle (code generation, logical
// optimization, pipelining, pushdown).
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/dfs"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Config selects an engine operating mode.
type Config struct {
	// Codegen compiles expressions to fused closures (the paper's §4.3.4
	// code generation); false falls back to the tree-walking interpreter.
	Codegen bool
	// Optimizer toggles logical optimization groups.
	Optimizer optimizer.Config
	// Planner carries physical-planning knobs (broadcast threshold,
	// pipeline collapse).
	Planner physical.PlannerConfig
	// ShufflePartitions is the reducer count for exchanges.
	ShufflePartitions int
	// Parallelism is the task concurrency (defaults to GOMAXPROCS).
	Parallelism int
	// QueryTimeout, when positive, bounds each query execution; a query
	// exceeding it is cancelled (all in-flight and pending tasks torn
	// down) and returns context.DeadlineExceeded.
	QueryTimeout time.Duration
	// Speculation enables straggler mitigation: a task running longer
	// than SpeculationMultiplier × the job's median completed-task time
	// gets a backup attempt, and the first finisher wins.
	Speculation bool
	// SpeculationMultiplier is the straggler threshold (0 = default 3x).
	SpeculationMultiplier float64
	// SpeculationMin is the minimum elapsed time before a task may be
	// considered a straggler (0 = default).
	SpeculationMin time.Duration
	// Metrics enables per-operator instrumentation: every physical exec
	// node records rows, batches, build sizes and wall time per partition
	// into its PlanMetrics embed, which EXPLAIN ANALYZE reads back. The
	// recording cost is a few atomic adds per partition (never per row),
	// cheap enough to leave on; EXPLAIN ANALYZE forces it on regardless.
	Metrics bool
	// MemoryBudget bounds each query's execution memory (bytes; zero =
	// unlimited). When set, every query runs under a memory pool: blocking
	// operators (sort, aggregation, sort-merge join, distinct) reserve
	// their buffered state through it and spill encoded runs/partitions to
	// the engine's spill DFS when the pool is exhausted, with results
	// byte-identical to the unbounded path.
	MemoryBudget int64
	// Adaptive enables adaptive query execution: plans split into a stage
	// DAG at their exchanges, stages materialize bottom-up, and observed
	// output statistics drive re-planning (partition coalescing,
	// broadcast promotion/demotion, skew-split). Off, plans and results
	// are byte-identical to static execution.
	Adaptive bool
	// SkewFactor is the multiple of the mean reduce-bucket size above which
	// adaptive execution splits a skewed partition (0 = default 4x).
	SkewFactor float64
	// Observability enables distributed query observability: each action
	// gets a trace id threaded through its job context (and, under a
	// cluster, shipped in task specs so worker spans merge back with
	// attribution), and completed actions append to the engine's query
	// event log. Off, task payloads and replies are byte-identical to an
	// engine without this layer.
	Observability bool
}

// DefaultConfig is the full Spark SQL feature set.
func DefaultConfig() Config {
	return Config{
		Codegen:           true,
		Optimizer:         optimizer.DefaultConfig(),
		Planner:           physical.DefaultPlannerConfig(),
		ShufflePartitions: runtime.GOMAXPROCS(0),
		Parallelism:       runtime.GOMAXPROCS(0),
		Metrics:           true,
		Adaptive:          true,
		Observability:     true,
	}
}

// SharkConfig models the paper's Shark baseline: same engine and storage,
// but no Catalyst code generation, no whole-stage pipelining, and no
// pushdown into data sources — the features §6.1 credits for Spark SQL's
// win over Shark.
func SharkConfig() Config {
	cfg := DefaultConfig()
	cfg.Codegen = false
	cfg.Planner.CollapsePipelines = false
	cfg.Planner.Vectorize = false
	cfg.Optimizer.SourcePushdown = false
	cfg.Optimizer.DecimalAggregates = false
	return cfg
}

// Engine is the shared query-execution machinery under a Context.
type Engine struct {
	Catalog *analysis.Catalog
	RDDCtx  *rdd.Context
	Cfg     Config
	// SpillFS receives operator spill files when MemoryBudget is set — a
	// simulated DFS shared by all queries so spill I/O is metered and
	// fault-injectable like any other file traffic.
	SpillFS *dfs.FileSystem
	// Events is the append-only query event log (eventlog.go); populated
	// only when Cfg.Observability is on, but always non-nil so history
	// surfaces are unconditional.
	Events  *EventLog
	planner *physical.Planner
	opt     *optimizer.Optimizer
	// cluster is the distributed-execution runtime (nil = local engine);
	// see cluster.go and EnableCluster.
	cluster *ClusterRuntime
	// traceSeq numbers this engine's query traces.
	traceSeq atomic.Uint64
}

// NewEngine builds an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.ShufflePartitions <= 0 {
		cfg.ShufflePartitions = cfg.Parallelism
	}
	cfg.Planner.MemoryBudget = cfg.MemoryBudget
	pl := physical.NewPlanner(cfg.Planner)
	pl.TranslateFilter = optimizer.TranslateFilter
	rddCtx := rdd.NewContext(cfg.Parallelism)
	if cfg.Speculation {
		rddCtx.SetSpeculation(true, cfg.SpeculationMultiplier, cfg.SpeculationMin)
	}
	return &Engine{
		Catalog: analysis.NewCatalog(),
		RDDCtx:  rddCtx,
		Cfg:     cfg,
		SpillFS: dfs.New(),
		Events:  NewEventLog(),
		planner: pl,
		opt:     optimizer.New(cfg.Optimizer),
	}
}

// AddStrategy registers a custom planner strategy (the §7 extension point).
func (e *Engine) AddStrategy(s physical.Strategy) {
	e.planner.Strategies = append(e.planner.Strategies, s)
}

// Analyze resolves a logical plan against the catalog.
func (e *Engine) Analyze(lp plan.LogicalPlan) (plan.LogicalPlan, error) {
	return analysis.Analyze(e.Catalog, lp)
}

// QueryExecution is the Figure 3 pipeline for one query, with every
// intermediate plan retained for EXPLAIN and tests.
type QueryExecution struct {
	engine    *Engine
	Logical   plan.LogicalPlan
	Analyzed  plan.LogicalPlan
	Optimized plan.LogicalPlan
	Physical  physical.SparkPlan
	// SQLText is the statement this execution came from (""
	// for programmatically built plans); the event log records it.
	SQLText string
	// Executed is the adaptively re-planned tree (stage barriers in place)
	// once a query action has run with Config.Adaptive on; nil means the
	// static Physical plan is (or will be) what executes. Decisions is the
	// rewrite list that derives Executed from Physical — the coordinator
	// ships it so workers reproduce the identical adapted plan.
	Executed  physical.SparkPlan
	Decisions []physical.Decision
}

// Execute runs analysis, optimization and physical planning.
func (e *Engine) Execute(lp plan.LogicalPlan) (*QueryExecution, error) {
	analyzed, err := e.Analyze(lp)
	if err != nil {
		return nil, err
	}
	return e.ExecuteResolved(lp, analyzed)
}

// ExecuteResolved runs optimization and physical planning over an
// already-analyzed plan, keeping logical as the pre-resolution tree for
// EXPLAIN. DataFrames use it so an action executes against the exact
// relation versions its eager analysis resolved — for persistent store
// tables, that pin is what makes reads snapshot-isolated against
// concurrent DML.
func (e *Engine) ExecuteResolved(logical, analyzed plan.LogicalPlan) (*QueryExecution, error) {
	optimized, err := e.opt.Optimize(analyzed)
	if err != nil {
		return nil, fmt.Errorf("core: optimization: %w", err)
	}
	phys, err := e.planner.Plan(optimized)
	if err != nil {
		return nil, fmt.Errorf("core: physical planning: %w", err)
	}
	return &QueryExecution{
		engine:    e,
		Logical:   logical,
		Analyzed:  analyzed,
		Optimized: optimized,
		Physical:  phys,
	}, nil
}

// ExecContext builds the physical execution context. With a MemoryBudget
// configured it attaches a fresh per-query memory pool and the engine's
// spill DFS; the caller then owns spill-file cleanup (CleanupSpills), which
// Collect/Count/ExplainAnalyze defer.
func (e *Engine) ExecContext() *physical.ExecContext {
	ec := &physical.ExecContext{
		RDD:               e.RDDCtx,
		Codegen:           e.Cfg.Codegen,
		Vectorized:        e.Cfg.Planner.Vectorize,
		ShufflePartitions: e.Cfg.ShufflePartitions,
		Metrics:           e.Cfg.Metrics,
	}
	if e.Cfg.Adaptive {
		ec.Adaptive = &physical.AdaptiveConfig{
			BroadcastThreshold:   e.Cfg.Planner.BroadcastThreshold,
			TargetPartitionBytes: e.Cfg.Planner.TargetPartitionBytes,
			MemoryBudget:         e.Cfg.MemoryBudget,
			SkewFactor:           e.Cfg.SkewFactor,
		}
	}
	if e.Cfg.MemoryBudget > 0 {
		ec.Pool = memory.NewPool(e.Cfg.MemoryBudget, e.RDDCtx.Metrics().Scoped("memory"))
		ec.SpillFS = e.SpillFS
	}
	return ec
}

// RDD lazily builds the result RDD. The context it executes under has no
// memory pool: spill lifecycle needs a query scope to clean up after, which
// a bare RDD handed to arbitrary caller code does not have. Operators run
// their unbounded in-memory paths, exactly as before memory management.
func (q *QueryExecution) RDD() *rdd.RDD[row.Row] {
	ec := q.engine.ExecContext()
	ec.Pool = nil
	ec.SpillFS = nil
	// Adaptation is eager (it materializes stages under a job context); a
	// lazy RDD handle executes the static plan.
	ec.Adaptive = nil
	return q.Physical.Execute(ec)
}

// prepare resolves the plan a query action executes: with adaptation off it
// is the static Physical plan untouched; with adaptation on the adaptive
// driver materializes stages bottom-up and re-plans from observed
// statistics. The adapted tree and its decision list are memoized so every
// action of this QueryExecution (and the cluster path) runs one plan.
func (q *QueryExecution) prepare(jc context.Context, ec *physical.ExecContext) (physical.SparkPlan, error) {
	if ec.Adaptive == nil {
		return q.Physical, nil
	}
	if q.Executed != nil {
		return q.Executed, nil
	}
	adapted, decisions, err := physical.AdaptPlan(jc, ec, q.Physical)
	if err != nil {
		return nil, err
	}
	q.Executed = adapted
	q.Decisions = decisions
	return adapted, nil
}

// executedPlan is the plan that runs (or ran): the adapted tree when
// adaptation produced one, the static plan otherwise.
func (q *QueryExecution) executedPlan() physical.SparkPlan {
	if q.Executed != nil {
		return q.Executed
	}
	return q.Physical
}

// queryContext derives the job context for one query execution, applying
// the engine's QueryTimeout when set.
func (e *Engine) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.Cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, e.Cfg.QueryTimeout)
	}
	return context.WithCancel(ctx)
}

// Collect materializes the full result. Task failures (including recovered
// compute panics) surface as a *rdd.JobError; no recover wrapper is needed
// because no panic crosses the rdd boundary for task failures.
func (q *QueryExecution) Collect() ([]row.Row, error) {
	return q.CollectContext(context.Background())
}

// CollectContext is Collect under a caller context: cancelling it (or the
// engine's QueryTimeout expiring) tears down all in-flight and pending
// tasks and returns the context error.
func (q *QueryExecution) CollectContext(ctx context.Context) ([]row.Row, error) {
	ec := q.engine.ExecContext()
	defer ec.CleanupSpills()
	jc, cancel := q.engine.queryContext(ctx)
	defer cancel()
	jc, tid := q.engine.beginQuery(jc)
	start := time.Now()
	p, err := q.prepare(jc, ec)
	if err != nil {
		q.finishEvent(tid, "collect", start, 0, err)
		return nil, err
	}
	rows, err := p.Execute(ec).CollectContext(jc)
	q.finishEvent(tid, "collect", start, int64(len(rows)), err)
	return rows, err
}

// Count counts result rows without materializing them centrally.
func (q *QueryExecution) Count() (int64, error) {
	return q.CountContext(context.Background())
}

// CountContext is Count under a caller context.
func (q *QueryExecution) CountContext(ctx context.Context) (int64, error) {
	ec := q.engine.ExecContext()
	defer ec.CleanupSpills()
	jc, cancel := q.engine.queryContext(ctx)
	defer cancel()
	jc, tid := q.engine.beginQuery(jc)
	start := time.Now()
	p, err := q.prepare(jc, ec)
	if err != nil {
		q.finishEvent(tid, "count", start, 0, err)
		return 0, err
	}
	n, err := p.Execute(ec).CountContext(jc)
	q.finishEvent(tid, "count", start, n, err)
	return n, err
}

// Explain renders all plan phases.
func (q *QueryExecution) Explain() string {
	var sb strings.Builder
	sb.WriteString("== Logical Plan ==\n")
	sb.WriteString(q.Logical.String())
	sb.WriteString("== Analyzed Plan ==\n")
	sb.WriteString(plan.FormatEstimated(q.Analyzed))
	sb.WriteString("== Optimized Plan ==\n")
	sb.WriteString(plan.FormatEstimated(q.Optimized))
	sb.WriteString("== Physical Plan ==\n")
	sb.WriteString(q.Physical.String())
	return sb.String()
}

// ExplainAnalyze is ExplainAnalyzeContext under a background context.
func (q *QueryExecution) ExplainAnalyze() (string, error) {
	return q.ExplainAnalyzeContext(context.Background())
}

// ExplainAnalyzeContext runs the query with per-operator instrumentation
// forced on (regardless of Config.Metrics) and renders the optimized plan
// with cardinality estimates and the physical plan annotated with both
// `est:` (the CBO's prediction) and `actual:` (what the run measured) per
// node — the feedback loop that confronts estimates with reality — plus a
// runtime summary of the result cardinality and wall time.
func (q *QueryExecution) ExplainAnalyzeContext(ctx context.Context) (string, error) {
	ec := q.engine.ExecContext()
	ec.Metrics = true
	defer ec.CleanupSpills()
	jc, cancel := q.engine.queryContext(ctx)
	defer cancel()
	jc, tid := q.engine.beginQuery(jc)
	start := time.Now()
	p, err := q.prepare(jc, ec)
	if err != nil {
		q.finishEvent(tid, "explain-analyze", start, 0, err)
		return "", err
	}
	rows, err := p.Execute(ec).CollectContext(jc)
	q.finishEvent(tid, "explain-analyze", start, int64(len(rows)), err)
	if err != nil {
		return "", err
	}
	elapsed := time.Since(start)
	var sb strings.Builder
	sb.WriteString("== Optimized Plan ==\n")
	sb.WriteString(plan.FormatEstimated(q.Optimized))
	sb.WriteString("== Physical Plan ==\n")
	sb.WriteString(p.String())
	fmt.Fprintf(&sb, "== Runtime ==\nresult: %d rows in %.1f ms\n",
		len(rows), float64(elapsed.Microseconds())/1e3)
	if q.engine.cluster != nil {
		sb.WriteString("== Cluster ==\n")
		sb.WriteString(q.engine.cluster.ClusterSummary())
	}
	return sb.String(), nil
}

// planIDs matches the per-process unique expression IDs (#42) that differ
// between two plannings of the same query text.
var planIDs = regexp.MustCompile(`#\d+`)

// planActuals matches the runtime "(actual: ...)" annotations that
// instrumentation appends to operator strings once a plan has executed;
// they must not perturb the plan fingerprint.
var planActuals = regexp.MustCompile(`  \(actual: [^)]*\)`)

// planAdapted matches the adaptive "(adapted: <from> -> <to> (<reason>))"
// annotations. Unlike actuals, reasons nest one paren level (and a skewed
// join can carry two adapted segments in one annotation), so the body
// admits any run of non-paren text or single-level groups.
var planAdapted = regexp.MustCompile(`  \(adapted: (?:[^()]|\([^()]*\))*\)`)

// PlanHash returns a stable FNV-1a fingerprint of the physical plan with
// expression IDs normalized out, so identical statements (and identical
// plan shapes) hash alike across executions — the query log's correlation
// key for "which plan ran". Runtime annotations (actuals, adapted notes)
// are stripped: two runs of one adapted plan shape hash alike even when
// the observed byte counts in their notes differ.
func (q *QueryExecution) PlanHash() uint64 {
	h := fnv.New64a()
	norm := planIDs.ReplaceAllString(q.executedPlan().String(), "#")
	norm = planActuals.ReplaceAllString(norm, "")
	norm = planAdapted.ReplaceAllString(norm, "")
	h.Write([]byte(norm))
	return h.Sum64()
}
