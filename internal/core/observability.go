package core

// Query-level observability: trace-id allocation, event-log recording, and
// the trace-derived per-stage / per-worker actuals that feed both the event
// log and EXPLAIN ANALYZE's cluster section.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/rdd"
)

// newTraceID allocates a query trace id, or "" with observability off —
// the empty id keeps every wire payload and span byte-identical to an
// engine without this layer.
func (e *Engine) newTraceID() string {
	if !e.Cfg.Observability {
		return ""
	}
	return fmt.Sprintf("q-%d-%d", os.Getpid(), e.traceSeq.Add(1))
}

// beginQuery opens the observability scope of one action: it allocates the
// trace id and threads it through the job context so every span the action
// emits (local or, via the cluster runtime, remote) correlates.
func (e *Engine) beginQuery(jc context.Context) (context.Context, string) {
	tid := e.newTraceID()
	if tid == "" {
		return jc, ""
	}
	return rdd.WithTraceContext(jc, tid, "", nil), tid
}

// SetSQL records the SQL text this execution was parsed from, for the
// event log.
func (q *QueryExecution) SetSQL(sql string) { q.SQLText = sql }

// finishEvent appends one event-log entry for a completed action. No-op
// when observability is off (tid == "").
func (q *QueryExecution) finishEvent(tid, action string, start time.Time, rows int64, err error) {
	if tid == "" {
		return
	}
	e := q.engine
	reg := e.RDDCtx.Metrics()
	ev := QueryEvent{
		ID:          tid,
		SQL:         q.SQLText,
		Action:      action,
		PlanHash:    fmt.Sprintf("%016x", q.PlanHash()),
		Plan:        q.executedPlan().String(),
		Decisions:   decisionNotes(q),
		StartUnixMS: start.UnixMilli(),
		Millis:      float64(time.Since(start).Microseconds()) / 1e3,
		Rows:        rows,
		Spills:      reg.Counter("memory.spill.count").Load(),
		Fallbacks:   reg.Counter("cluster.fallback").Load(),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	spans := traceSpans(e.RDDCtx.Trace(), tid)
	ev.Stages = stageActuals(spans)
	ev.Workers = workerActuals(spans)
	e.Events.Record(ev)
}

// decisionNotes renders the AQE decision list the way EXPLAIN ANALYZE
// annotates it ("adapted: ..." notes).
func decisionNotes(q *QueryExecution) []string {
	if len(q.Decisions) == 0 {
		return nil
	}
	out := make([]string, len(q.Decisions))
	for i, d := range q.Decisions {
		if d.Note != "" {
			out[i] = d.Note
		} else {
			out[i] = d.Kind
		}
	}
	return out
}

// traceSpans snapshots the spans of one trace id.
func traceSpans(tb *metrics.TraceBuffer, tid string) []metrics.Span {
	var out []metrics.Span
	for _, s := range tb.Snapshot() {
		if s.Trace == tid {
			out = append(out, s)
		}
	}
	return out
}

// stageActuals lifts per-stage observed rows/time from stage spans.
func stageActuals(spans []metrics.Span) []StageActual {
	var out []StageActual
	for _, s := range spans {
		if s.Kind != metrics.SpanStage {
			continue
		}
		out = append(out, StageActual{
			Name:   s.Name,
			Rows:   s.Records,
			Millis: float64(s.DurNS) / 1e6,
			Err:    s.Err,
		})
	}
	return out
}

// workerActuals aggregates task spans per executing worker, sorted by
// worker id. Coordinator-side dispatch spans (the ".remote" wrappers) are
// skipped when the worker's own span for the same work is present —
// worker-origin spans carry the true compute time; dispatch spans measure
// compute plus round trip. Worker "" is locally computed work.
func workerActuals(spans []metrics.Span) []WorkerActual {
	type agg struct {
		tasks int
		rows  int64
		bytes int64
		durNS int64
	}
	// Which (worker, partition) pairs have a worker-origin task span?
	origin := make(map[string]bool)
	for _, s := range spans {
		if s.Kind == metrics.SpanTask && s.Worker != "" && !isDispatchSpan(s.Name) {
			origin[fmt.Sprintf("%s/%d", s.Worker, s.Partition)] = true
		}
	}
	byWorker := make(map[string]*agg)
	for _, s := range spans {
		if s.Kind != metrics.SpanTask {
			continue
		}
		if isDispatchSpan(s.Name) && s.Worker != "" && origin[fmt.Sprintf("%s/%d", s.Worker, s.Partition)] {
			continue // counted from the worker's own span
		}
		a := byWorker[s.Worker]
		if a == nil {
			a = &agg{}
			byWorker[s.Worker] = a
		}
		a.tasks++
		a.rows += s.Records
		a.bytes += s.Bytes
		a.durNS += s.DurNS
	}
	ids := make([]string, 0, len(byWorker))
	for id := range byWorker {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerActual, len(ids))
	for i, id := range ids {
		a := byWorker[id]
		out[i] = WorkerActual{
			Worker: id,
			Tasks:  a.tasks,
			Rows:   a.rows,
			Bytes:  a.bytes,
			Millis: float64(a.durNS) / 1e6,
		}
	}
	return out
}

// isDispatchSpan reports whether a task-span name is the coordinator-side
// RemoteOrLocal wrapper rather than worker-origin compute.
func isDispatchSpan(name string) bool {
	return len(name) > 7 && name[len(name)-7:] == ".remote"
}
