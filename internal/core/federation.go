package core

// Metrics federation: the coordinator pulls (or receives, piggybacked on
// task replies) each worker's registry snapshot and exposes the merged view
// with worker labels — the Monarch-style pull model over the cluster's
// existing CRC-framed task protocol, with no second transport.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster/sqlwire"
	"repro/internal/metrics"
)

// absorbReply merges one traced task reply into coordinator state: the
// worker's spans append to the engine trace buffer (already tagged with
// trace id, parent span and worker identity) and its counter samples
// replace the previous snapshot for that worker.
func (rt *ClusterRuntime) absorbReply(r *sqlwire.TaskReply) {
	if r == nil {
		return
	}
	tb := rt.e.RDDCtx.Trace()
	for _, s := range r.Spans {
		tb.Append(s)
	}
	if len(r.Counters) > 0 {
		rt.storeSamples(r.Worker, r.Counters)
	}
}

func (rt *ClusterRuntime) storeSamples(worker string, samples []sqlwire.CounterSample) {
	if worker == "" {
		return
	}
	rt.obsMu.Lock()
	defer rt.obsMu.Unlock()
	m := rt.obsWorkers[worker]
	if m == nil {
		m = make(map[string]int64)
		rt.obsWorkers[worker] = m
	}
	for _, s := range samples {
		m[s.Name] = s.Value
	}
}

// harvestTimeout bounds one worker's federation pull; a wedged worker
// costs the harvest this much, not forever.
const harvestTimeout = 2 * time.Second

// Harvest pulls a full registry snapshot from every registered,
// non-blacklisted worker over the task protocol ("obs.fetch"). Workers
// that fail to answer keep their previous snapshot — federation is
// best-effort by design; liveness is the heartbeat layer's job. Returns
// how many workers answered.
func (rt *ClusterRuntime) Harvest(ctx context.Context) int {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := sqlwire.EncodeObsRequest(&sqlwire.ObsRequest{})
	if err != nil {
		return 0
	}
	ws := rt.coord.Workers()
	type res struct {
		worker  string
		samples []sqlwire.CounterSample
	}
	ch := make(chan res, len(ws))
	n := 0
	for _, w := range ws {
		if w.Banned {
			continue
		}
		n++
		go func(id string) {
			hc, cancel := context.WithTimeout(ctx, harvestTimeout)
			defer cancel()
			data, err := rt.coord.RunOnWorker(hc, id, "obs.fetch", req)
			if err != nil {
				ch <- res{worker: id}
				return
			}
			reply, err := sqlwire.DecodeObsReply(data)
			if err != nil {
				ch <- res{worker: id}
				return
			}
			ch <- res{worker: id, samples: reply.Counters}
		}(w.ID)
	}
	answered := 0
	for i := 0; i < n; i++ {
		r := <-ch
		if r.samples != nil {
			rt.storeSamples(r.worker, r.samples)
			answered++
		}
	}
	return answered
}

// StartHarvester runs Harvest on a fixed period until Close.
func (rt *ClusterRuntime) StartHarvester(interval time.Duration) {
	rt.mu.Lock()
	if rt.harvestStop != nil {
		rt.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	rt.harvestStop = stop
	rt.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rt.Harvest(context.Background())
			}
		}
	}()
}

// WorkerSample is one federated metric value in a merged snapshot.
type WorkerSample struct {
	Worker string
	Name   string
	Value  int64
}

// FederatedSnapshot returns the harvested per-worker samples filtered by
// pattern (metrics.MatchGlob semantics), sorted by (name, worker).
func (rt *ClusterRuntime) FederatedSnapshot(pattern string) []WorkerSample {
	rt.obsMu.Lock()
	out := make([]WorkerSample, 0, 64)
	for worker, m := range rt.obsWorkers {
		for name, v := range m {
			if !metrics.MatchGlob(pattern, name) {
				continue
			}
			out = append(out, WorkerSample{Worker: worker, Name: name, Value: v})
		}
	}
	rt.obsMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// WorkerCounter returns the latest harvested value of one worker's counter.
func (rt *ClusterRuntime) WorkerCounter(worker, name string) int64 {
	rt.obsMu.Lock()
	defer rt.obsMu.Unlock()
	return rt.obsWorkers[worker][name]
}

// WriteFederatedMetrics renders the merged per-worker view in the /metrics
// text format with worker labels: `name{worker=id} value`.
func (rt *ClusterRuntime) WriteFederatedMetrics(w io.Writer, pattern string) error {
	for _, s := range rt.FederatedSnapshot(pattern) {
		if _, err := fmt.Fprintf(w, "%s{worker=%s} %d\n", s.Name, s.Worker, s.Value); err != nil {
			return err
		}
	}
	return nil
}
