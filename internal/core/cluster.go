package core

// Distributed execution: ClusterRuntime adapts internal/cluster's
// coordinator to the rdd layer's RemoteRunner hook. The runtime ships the
// engine's catalog to workers as a sqlwire.SessionSpec (bumping an epoch
// whenever catalog contents change), dispatches "sql.partition" tasks
// with partition→worker affinity, and translates cluster-level failures
// into the rdd error vocabulary: worker loss and remote task failures
// stay retryable (the executor's ordinary backoff/re-pick loop handles
// them), while "this can never run remotely" conditions map to
// rdd.ErrRemoteFallback so the partition computes locally from lineage.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/sqlwire"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

// ClusterOptions configures distributed execution for an engine.
type ClusterOptions struct {
	// Listen is the coordinator's TCP listen address ("" = 127.0.0.1:0).
	Listen string
	// HeartbeatTimeout, TaskTimeout, BlacklistThreshold and
	// BlacklistCooldown forward to cluster.CoordinatorConfig (zero =
	// that package's defaults).
	HeartbeatTimeout   time.Duration
	TaskTimeout        time.Duration
	BlacklistThreshold int
	BlacklistCooldown  time.Duration
	// Session is the config-knob template shipped to workers; the caller
	// (sparksql) fills it from its Config so worker contexts plan
	// identically. ID, Epoch and Tables are overwritten by the runtime.
	Session sqlwire.SessionSpec
	// HarvestInterval, when positive, starts a background federation
	// harvester that pulls every live worker's metrics registry over the
	// task protocol on this period. Zero leaves harvesting on-demand
	// (Harvest is called by SHOW CLUSTER and the /metrics endpoint).
	HarvestInterval time.Duration
}

// maxSpecBytes caps a shipped session: a spec that does not fit well
// inside one frame marks the session unshippable and queries run locally.
const maxSpecBytes = cluster.MaxFrameSize - 4096

var sessionSeq atomic.Uint64

// ClusterRuntime owns the coordinator and the session-shipping state.
type ClusterRuntime struct {
	e     *Engine
	coord *cluster.Coordinator

	mu        sync.Mutex
	template  sqlwire.SessionSpec
	sessionID string
	epoch     uint64
	fp        uint64
	specBytes []byte
	shippable bool
	inited    map[string]uint64      // workerID → epoch it holds
	initLocks map[string]*sync.Mutex // serializes init per worker

	// Federated observability: the latest counter samples harvested from
	// (or piggybacked by) each worker, keyed worker id → metric name →
	// absolute value. Samples are absolute, so last-write-wins merging
	// never double-counts concurrent tasks from one worker.
	obsMu      sync.Mutex
	obsWorkers map[string]map[string]int64
	// harvestStop terminates the background harvester (nil = none).
	harvestStop chan struct{}
}

// EnableCluster starts a coordinator for the engine and installs the
// runtime as the rdd layer's remote dispatcher.
func EnableCluster(e *Engine, opts ClusterOptions) (*ClusterRuntime, error) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout:   opts.HeartbeatTimeout,
		TaskTimeout:        opts.TaskTimeout,
		BlacklistThreshold: opts.BlacklistThreshold,
		BlacklistCooldown:  opts.BlacklistCooldown,
		Registry:           e.RDDCtx.Metrics(),
	})
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if _, err := coord.Start(addr); err != nil {
		return nil, fmt.Errorf("core: cluster listen: %w", err)
	}
	rt := &ClusterRuntime{
		e:          e,
		coord:      coord,
		template:   opts.Session,
		sessionID:  fmt.Sprintf("s%d-%d", os.Getpid(), sessionSeq.Add(1)),
		inited:     make(map[string]uint64),
		initLocks:  make(map[string]*sync.Mutex),
		obsWorkers: make(map[string]map[string]int64),
	}
	e.cluster = rt
	e.RDDCtx.SetRemoteRunner(rt)
	if opts.HarvestInterval > 0 {
		rt.StartHarvester(opts.HarvestInterval)
	}
	return rt, nil
}

// Cluster returns the engine's cluster runtime (nil when not enabled).
func (e *Engine) Cluster() *ClusterRuntime { return e.cluster }

// Coordinator exposes the underlying coordinator for membership queries
// and chaos hooks.
func (rt *ClusterRuntime) Coordinator() *cluster.Coordinator { return rt.coord }

// Addr returns the coordinator's listen address.
func (rt *ClusterRuntime) Addr() string { return rt.coord.Addr() }

// Close stops the coordinator; workers see a goodbye and exit.
func (rt *ClusterRuntime) Close() error {
	rt.mu.Lock()
	if rt.harvestStop != nil {
		close(rt.harvestStop)
		rt.harvestStop = nil
	}
	rt.mu.Unlock()
	return rt.coord.Close()
}

// SetChaos forwards a fault-injection schedule to workers (the next
// refresh bumps the epoch, re-shipping sessions with the new schedule).
func (rt *ClusterRuntime) SetChaos(c sqlwire.ChaosSpec) {
	rt.mu.Lock()
	rt.template.Chaos = c
	rt.mu.Unlock()
}

// SetWorkerBackoff shapes worker-side internal retries.
func (rt *ClusterRuntime) SetWorkerBackoff(base, max time.Duration, seed uint64) {
	rt.mu.Lock()
	rt.template.BackoffBaseNS = int64(base)
	rt.template.BackoffMaxNS = int64(max)
	rt.template.BackoffSeed = seed
	rt.mu.Unlock()
}

// RefreshSession rebuilds the shipped session spec from the catalog. If
// anything changed since the last refresh the epoch advances and every
// worker is re-initialized before its next task. Failures only mark the
// session unshippable — queries then run locally, never wrongly.
func (rt *ClusterRuntime) RefreshSession() {
	tables := rt.collectTables()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	spec := rt.template
	spec.ID = rt.sessionID
	spec.Epoch = 0
	spec.Tables = tables
	probe, err := sqlwire.EncodeSession(&spec)
	if err != nil {
		rt.shippable = false
		return
	}
	h := fnv.New64a()
	h.Write(probe)
	fp := h.Sum64()
	if fp != rt.fp || rt.specBytes == nil {
		rt.epoch++
		rt.fp = fp
		spec.Epoch = rt.epoch
		if rt.specBytes, err = sqlwire.EncodeSession(&spec); err != nil {
			rt.shippable = false
			return
		}
		rt.inited = make(map[string]uint64)
	}
	rt.shippable = len(rt.specBytes) <= maxSpecBytes
}

// collectTables converts every shippable catalog table into a TableSpec.
// Tables whose plan or schema cannot ship (views, data sources, exotic
// column types) are skipped: queries referencing them fail analysis on
// the worker and fall back to local compute.
func (rt *ClusterRuntime) collectTables() []sqlwire.TableSpec {
	names := rt.e.Catalog.TableNames()
	sort.Strings(names)
	var out []sqlwire.TableSpec
	for _, name := range names {
		lp, ok := rt.e.Catalog.LookupTable(name)
		if !ok {
			continue
		}
		switch t := lp.(type) {
		case *plan.LocalRelation:
			fields, ok := attrFields(t.Attrs)
			if !ok {
				continue
			}
			blk, err := row.EncodeRows(t.Rows)
			if err != nil {
				continue
			}
			out = append(out, sqlwire.TableSpec{
				Name: name, Fields: fields, Partitions: [][]byte{blk},
			})
		case *plan.InMemoryRelation:
			fields, ok := sqlwire.Fields(t.Table.Schema)
			if !ok {
				continue
			}
			parts := make([][]byte, len(t.Table.Partitions))
			shippable := true
			for p := range t.Table.Partitions {
				blk, err := row.EncodeRows(t.Table.ScanPartition(p, nil, nil))
				if err != nil {
					shippable = false
					break
				}
				parts[p] = blk
			}
			if !shippable {
				continue
			}
			out = append(out, sqlwire.TableSpec{
				Name: name, Cached: true, Fields: fields, Partitions: parts,
			})
		}
	}
	return out
}

func attrFields(attrs []*expr.AttributeReference) ([]sqlwire.FieldSpec, bool) {
	fields := make([]types.StructField, len(attrs))
	for i, a := range attrs {
		fields[i] = types.StructField{Name: a.Name, Type: a.Type, Nullable: a.Null}
	}
	return sqlwire.Fields(types.NewStruct(fields...))
}

// session snapshots the shipped identity for query payloads.
func (rt *ClusterRuntime) session() (id string, epoch uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sessionID, rt.epoch
}

func (rt *ClusterRuntime) clearInit(workerID string) {
	rt.mu.Lock()
	delete(rt.inited, workerID)
	rt.mu.Unlock()
}

// ensureInit ships the current session to the worker unless it already
// holds this epoch. Init is serialized per worker so concurrent partition
// tasks do not each ship the (potentially large) spec.
func (rt *ClusterRuntime) ensureInit(jc context.Context, workerID string) error {
	rt.mu.Lock()
	if rt.inited[workerID] == rt.epoch {
		rt.mu.Unlock()
		return nil
	}
	lk := rt.initLocks[workerID]
	if lk == nil {
		lk = &sync.Mutex{}
		rt.initLocks[workerID] = lk
	}
	rt.mu.Unlock()

	lk.Lock()
	defer lk.Unlock()
	rt.mu.Lock()
	done := rt.inited[workerID] == rt.epoch
	spec, epoch := rt.specBytes, rt.epoch
	rt.mu.Unlock()
	if done {
		return nil
	}
	if _, err := rt.coord.RunOnWorker(jc, workerID, "sql.init", spec); err != nil {
		return err
	}
	rt.mu.Lock()
	if rt.epoch == epoch {
		rt.inited[workerID] = epoch
	}
	rt.mu.Unlock()
	return nil
}

// Available implements rdd.RemoteRunner.
func (rt *ClusterRuntime) Available() bool { return rt.coord.Available() }

// RunTask implements rdd.RemoteRunner: pick a worker by partition
// affinity, make sure it holds the session, dispatch, translate errors.
func (rt *ClusterRuntime) RunTask(jc context.Context, kind string, partition int, payload []byte) ([]byte, string, error) {
	rt.mu.Lock()
	shippable := rt.shippable
	rt.mu.Unlock()
	if !shippable {
		return nil, "", rdd.ErrRemoteFallback
	}
	workerID, err := rt.coord.Pick(partition)
	if err != nil {
		return nil, "", translateNoWorker(err)
	}
	if err := rt.ensureInit(jc, workerID); err != nil {
		return nil, workerID, translateTaskErr(rt, workerID, err)
	}
	res, err := rt.coord.RunOnWorker(jc, workerID, kind, payload)
	if err != nil {
		return nil, workerID, translateTaskErr(rt, workerID, err)
	}
	return res, workerID, nil
}

func translateNoWorker(err error) error {
	if errors.Is(err, cluster.ErrNoWorkers) || errors.Is(err, cluster.ErrClosed) {
		return fmt.Errorf("%w: %v", rdd.ErrNoWorkers, err)
	}
	return err
}

func translateTaskErr(rt *ClusterRuntime, workerID string, err error) error {
	var lost *cluster.WorkerLostError
	if errors.As(err, &lost) {
		// The worker (or its connection) died: drop our init record so a
		// respawned process under the same id is re-shipped the session,
		// and keep the error retryable — the executor re-picks.
		rt.clearInit(workerID)
		return err
	}
	var re *cluster.RemoteError
	if errors.As(err, &re) && strings.Contains(re.Message, sqlwire.UninitializedMarker) {
		// A fresh process re-registered under a known id between our init
		// and this task: clear the cache so the retry re-initializes.
		rt.clearInit(workerID)
		return err
	}
	if cluster.IsFallback(err) {
		return fmt.Errorf("%w: %v", rdd.ErrRemoteFallback, err)
	}
	return err
}

// --- distributed actions -------------------------------------------------

// CollectDistributedContext is CollectContext, but partitions are
// dispatched to cluster workers when the engine has one attached and the
// query arrived as SQL text (the only form we can ship). Every failure
// mode degrades to the local path; results are identical either way.
func (q *QueryExecution) CollectDistributedContext(ctx context.Context, sql string) ([]row.Row, error) {
	r, cleanup, jc, tid, ok := q.distributed(ctx, sql)
	if !ok {
		return q.CollectContext(ctx)
	}
	defer cleanup()
	start := time.Now()
	rows, err := r.CollectContext(jc)
	q.finishEvent(tid, "collect", start, int64(len(rows)), err)
	return rows, err
}

// CountDistributedContext is CountContext over the distributed wrapper.
func (q *QueryExecution) CountDistributedContext(ctx context.Context, sql string) (int64, error) {
	r, cleanup, jc, tid, ok := q.distributed(ctx, sql)
	if !ok {
		return q.CountContext(ctx)
	}
	defer cleanup()
	start := time.Now()
	n, err := r.CountContext(jc)
	q.finishEvent(tid, "count", start, n, err)
	return n, err
}

// distributed builds the RemoteOrLocal wrapper for this query, or reports
// ok=false when the query must run locally. With observability on, the
// returned trace id tags every span of the query (local and remote) and
// task payloads carry it so worker replies come back as TaskReply
// envelopes; with it off the trace id is "" and the wire format is
// byte-identical to the pre-observability protocol.
func (q *QueryExecution) distributed(ctx context.Context, sql string) (*rdd.RDD[row.Row], func(), context.Context, string, bool) {
	rt := q.engine.cluster
	if rt == nil || sql == "" {
		return nil, nil, nil, "", false
	}
	rt.RefreshSession()
	sessionID, epoch := rt.session()
	ec := q.engine.ExecContext()
	jc, cancel := q.engine.queryContext(ctx)
	jc, traceID := q.engine.beginQuery(jc)
	cleanup := func() {
		cancel()
		ec.CleanupSpills()
	}
	// Adaptive re-planning runs on the coordinator only: stages materialize
	// here, decisions are taken once, and the decision list ships in every
	// task so workers replay — never re-derive — the adapted plan.
	pp, err := q.prepare(jc, ec)
	if err != nil {
		cleanup()
		return nil, nil, nil, "", false
	}
	decisions := decisionSpecs(q.Decisions)
	local := pp.Execute(ec)
	np := local.NumPartitions()
	planHash := q.PlanHash()
	payload := func(p int) []byte {
		task := &sqlwire.QueryTask{
			SessionID:     sessionID,
			Epoch:         epoch,
			SQL:           sql,
			Partition:     p,
			NumPartitions: np,
			PlanHash:      planHash,
			Decisions:     decisions,
		}
		if traceID != "" {
			task.TraceID = traceID
			task.ParentSpan = fmt.Sprintf("%s/p%d", traceID, p)
		}
		b, err := sqlwire.EncodeQuery(task)
		if err != nil {
			return nil // undecodable payload fails worker-side → fallback
		}
		return b
	}
	decode := row.DecodeRows
	if traceID != "" {
		// Traced replies arrive as TaskReply envelopes: unwrap the rows and
		// merge the worker's spans and counter samples into this
		// coordinator's observability state.
		decode = func(data []byte) ([]row.Row, error) {
			reply, err := sqlwire.DecodeTaskReply(data)
			if err != nil {
				return nil, err
			}
			rt.absorbReply(reply)
			return row.DecodeRows(reply.Rows)
		}
	}
	return rdd.RemoteOrLocal(local, "sql.partition", payload, decode), cleanup, jc, traceID, true
}

// decisionSpecs converts adaptive decisions to their wire form.
func decisionSpecs(ds []physical.Decision) []sqlwire.DecisionSpec {
	if len(ds) == 0 {
		return nil
	}
	out := make([]sqlwire.DecisionSpec, len(ds))
	for i, d := range ds {
		out[i] = sqlwire.DecisionSpec{
			Path: d.Path, Kind: d.Kind, Parts: d.Parts,
			BuildRight: d.BuildRight, Splits: d.Splits, Note: d.Note,
		}
	}
	return out
}

// DecisionsFromSpecs is the worker-side inverse of decisionSpecs.
func DecisionsFromSpecs(ds []sqlwire.DecisionSpec) []physical.Decision {
	if len(ds) == 0 {
		return nil
	}
	out := make([]physical.Decision, len(ds))
	for i, d := range ds {
		out[i] = physical.Decision{
			Path: d.Path, Kind: d.Kind, Parts: d.Parts,
			BuildRight: d.BuildRight, Splits: d.Splits, Note: d.Note,
		}
	}
	return out
}

// ApplyDecisions replays a coordinator's adaptive decision list over this
// query's static physical plan, recording the adapted tree as Executed so
// PlanHash and RDD-building reflect it — the worker-side half of adaptive
// plan parity.
func (q *QueryExecution) ApplyDecisions(ds []physical.Decision) error {
	if len(ds) == 0 {
		return nil
	}
	adapted, err := physical.ApplyDecisions(q.Physical, ds)
	if err != nil {
		return err
	}
	q.Executed = adapted
	q.Decisions = ds
	return nil
}

// ExecutedRDD lazily builds the result RDD of the executed (adapted when
// present) plan — what a worker runs partitions of.
func (q *QueryExecution) ExecutedRDD() *rdd.RDD[row.Row] {
	ec := q.engine.ExecContext()
	ec.Pool = nil
	ec.SpillFS = nil
	ec.Adaptive = nil
	return q.executedPlan().Execute(ec)
}

// ClusterSummary renders current membership and per-worker task counts —
// the "== Cluster ==" section of EXPLAIN ANALYZE under a cluster engine.
func (rt *ClusterRuntime) ClusterSummary() string { return rt.ClusterSummaryFor("") }

// ClusterSummaryFor is ClusterSummary with a per-worker rows/bytes/time
// breakdown derived from merged trace spans; a non-empty trace id restricts
// the breakdown to that query's spans, "" covers the whole retained trace.
func (rt *ClusterRuntime) ClusterSummaryFor(traceID string) string {
	ws := rt.coord.Workers()
	var sb strings.Builder
	fmt.Fprintf(&sb, "workers: %d registered\n", len(ws))
	reg := rt.e.RDDCtx.Metrics()
	fmt.Fprintf(&sb, "fallbacks: %d tasks computed locally\n",
		reg.Counter("cluster.fallback").Load())
	byWorker := make(map[string]WorkerActual)
	spans := rt.e.RDDCtx.Trace().Snapshot()
	if traceID != "" {
		spans = filterTrace(spans, traceID)
	}
	for _, wa := range workerActuals(spans) {
		byWorker[wa.Worker] = wa
	}
	for _, w := range ws {
		status := ""
		if w.Banned {
			status = " BLACKLISTED"
		}
		fmt.Fprintf(&sb, "  %s pid=%d inflight=%d failures=%d tasks=%d%s\n",
			w.ID, w.PID, w.Inflight, w.Failures,
			reg.Counter("cluster.tasks.worker."+w.ID).Load(), status)
		if wa, ok := byWorker[w.ID]; ok {
			fmt.Fprintf(&sb, "    spans=%d rows=%d bytes=%d time=%.1fms\n",
				wa.Tasks, wa.Rows, wa.Bytes, wa.Millis)
		}
	}
	if wa, ok := byWorker[""]; ok {
		fmt.Fprintf(&sb, "  local spans=%d rows=%d bytes=%d time=%.1fms\n",
			wa.Tasks, wa.Rows, wa.Bytes, wa.Millis)
	}
	return sb.String()
}

func filterTrace(spans []metrics.Span, traceID string) []metrics.Span {
	out := spans[:0:0]
	for _, s := range spans {
		if s.Trace == traceID {
			out = append(out, s)
		}
	}
	return out
}
