package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/types"
)

func usersRelation() *plan.LocalRelation {
	schema := types.NewStruct(
		types.StructField{Name: "name", Type: types.String, Nullable: false},
		types.StructField{Name: "age", Type: types.Int, Nullable: true},
		types.StructField{Name: "deptId", Type: types.Int, Nullable: false},
	)
	return plan.NewLocalRelation(schema, []row.Row{
		{"Alice", int32(22), int32(1)},
		{"Bob", int32(19), int32(2)},
		{"Carol", int32(35), int32(1)},
		{"Dan", nil, int32(2)},
	})
}

func TestFilterProjectEndToEnd(t *testing.T) {
	for _, codegen := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Codegen = codegen
		e := NewEngine(cfg)
		rel := usersRelation()
		age := rel.Attrs[1]
		name := rel.Attrs[0]

		lp := &plan.Project{
			List: []expr.Expression{name},
			Child: &plan.Filter{
				Cond:  expr.LT(age, expr.Lit(21)),
				Child: rel,
			},
		}
		qe, err := e.Execute(lp)
		if err != nil {
			t.Fatalf("codegen=%v: %v", codegen, err)
		}
		rows, err := qe.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0] != "Bob" {
			t.Fatalf("codegen=%v: got %v, want [Bob]", codegen, rows)
		}
	}
}

func TestGroupByCountEndToEnd(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	dept := rel.Attrs[2]

	lp := &plan.Aggregate{
		Grouping: []expr.Expression{dept},
		Aggs: []expr.Expression{
			dept,
			expr.NewAlias(expr.NewCountStar(), "n"),
			expr.NewAlias(&expr.Avg{Child: rel.Attrs[1]}, "avgAge"),
		},
		Child: rel,
	}
	qe, err := e.Execute(lp)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := qe.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(rows), rows)
	}
	byDept := map[int32]row.Row{}
	for _, r := range rows {
		byDept[r[0].(int32)] = r
	}
	if byDept[1][1] != int64(2) || byDept[2][1] != int64(2) {
		t.Fatalf("counts wrong: %v", rows)
	}
	if got := byDept[1][2].(float64); got != 28.5 {
		t.Fatalf("avg dept1 = %v, want 28.5", got)
	}
	// Dan's NULL age is excluded from AVG.
	if got := byDept[2][2].(float64); got != 19 {
		t.Fatalf("avg dept2 = %v, want 19", got)
	}
}

func TestJoinEndToEnd(t *testing.T) {
	e := NewEngine(DefaultConfig())
	users := usersRelation()
	depts := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "id", Type: types.Int, Nullable: false},
		types.StructField{Name: "dept", Type: types.String, Nullable: false},
	), []row.Row{
		{int32(1), "eng"},
		{int32(2), "sales"},
	})

	lp := &plan.Project{
		List: []expr.Expression{users.Attrs[0], depts.Attrs[1]},
		Child: &plan.Join{
			Left:  plan.LogicalPlan(users),
			Right: depts,
			Type:  plan.InnerJoin,
			Cond:  expr.EQ(users.Attrs[2], depts.Attrs[0]),
		},
	}
	qe, err := e.Execute(lp)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := qe.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(rows), rows)
	}
}

func TestUnresolvedColumnFailsEagerly(t *testing.T) {
	e := NewEngine(DefaultConfig())
	rel := usersRelation()
	lp := &plan.Filter{
		Cond:  expr.LT(expr.UnresolvedAttr("nosuch"), expr.Lit(21)),
		Child: rel,
	}
	if _, err := e.Execute(lp); err == nil {
		t.Fatal("expected analysis error for unknown column")
	}
}

func TestSharkConfigProducesSameResults(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), SharkConfig()} {
		e := NewEngine(cfg)
		rel := usersRelation()
		lp := &plan.Aggregate{
			Grouping: nil,
			Aggs:     []expr.Expression{expr.NewAlias(&expr.Sum{Child: rel.Attrs[1]}, "s")},
			Child:    rel,
		}
		qe, err := e.Execute(lp)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := qe.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0] != int64(76) {
			t.Fatalf("sum = %v, want 76", rows)
		}
	}
}
