// Package jsonds is the JSON data source with automatic schema inference
// (paper §5.1): a single pass over the records computes, for each distinct
// field path, the most specific Spark SQL type matching every observed
// instance, merging per-record schemata with an associative
// most-specific-supertype function. Fields that display incompatible types
// generalize to STRING; fields absent from some records become nullable.
package jsonds

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

// Provider returns the json relation provider. Options:
//
//	path       (required) file of newline- or stream-delimited JSON objects
//	samplesize optional max records used for inference (default all)
func Provider() datasource.Provider {
	return datasource.ProviderFunc(func(options map[string]string) (datasource.Relation, error) {
		path := options["path"]
		if path == "" {
			return nil, fmt.Errorf("json: missing required option 'path'")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("json: %w", err)
		}
		records, err := DecodeRecords(data)
		if err != nil {
			return nil, err
		}
		return NewRelation(records, int64(len(data))), nil
	})
}

// DecodeRecords parses a stream of JSON objects (newline-delimited or
// back-to-back), preserving integer-vs-float distinctions via json.Number.
func DecodeRecords(data []byte) ([]map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var records []map[string]any
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("json: record %d: %w", len(records)+1, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// Relation is a JSON dataset with an inferred schema.
type Relation struct {
	schema  types.StructType
	records []map[string]any
	size    int64
}

var _ datasource.PrunedScan = (*Relation)(nil)
var _ datasource.SizedRelation = (*Relation)(nil)

// NewRelation infers the schema and wraps the records.
func NewRelation(records []map[string]any, sizeHint int64) *Relation {
	return &Relation{schema: InferSchema(records), records: records, size: sizeHint}
}

// Schema implements datasource.Relation.
func (r *Relation) Schema() types.StructType { return r.schema }

// SizeInBytes implements datasource.SizedRelation.
func (r *Relation) SizeInBytes() int64 { return r.size }

// ScanAll implements datasource.TableScan.
func (r *Relation) ScanAll() (datasource.Scan, error) {
	return r.ScanPruned(r.schema.FieldNames())
}

// ScanPruned implements datasource.PrunedScan.
func (r *Relation) ScanPruned(columns []string) (datasource.Scan, error) {
	fields := make([]types.StructField, len(columns))
	for i, c := range columns {
		j := r.schema.FieldIndex(c)
		if j < 0 {
			return datasource.Scan{}, fmt.Errorf("json: unknown column %q", c)
		}
		fields[i] = r.schema.Fields[j]
	}
	records := r.records
	numPart := 4
	if len(records) < numPart {
		numPart = 1
	}
	return datasource.Scan{
		NumPartitions: numPart,
		Partition: func(p int) []row.Row {
			lo := len(records) * p / numPart
			hi := len(records) * (p + 1) / numPart
			out := make([]row.Row, 0, hi-lo)
			for _, rec := range records[lo:hi] {
				rr := make(row.Row, len(fields))
				for i, f := range fields {
					rr[i] = convert(rec[f.Name], f.Type)
				}
				out = append(out, rr)
			}
			return out
		},
	}, nil
}

// ---------------------------------------------------------------------------
// Schema inference (paper §5.1)

// InferSchema computes the most specific schema matching every record, in
// one pass, by reducing per-record schemata with the associative
// most-specific-supertype merge. Field names are sorted for determinism
// (Go's JSON maps are unordered).
func InferSchema(records []map[string]any) types.StructType {
	merged := types.DataType(types.StructType{})
	first := true
	for _, rec := range records {
		s := recordSchema(rec)
		if first {
			merged = s
			first = false
			continue
		}
		merged = types.MostSpecificSupertype(merged, s)
	}
	st, ok := merged.(types.StructType)
	if !ok {
		return types.StructType{}
	}
	return st
}

// recordSchema derives the schema tree of a single record.
func recordSchema(rec map[string]any) types.StructType {
	names := make([]string, 0, len(rec))
	for k := range rec {
		names = append(names, k)
	}
	sort.Strings(names)
	var schema types.StructType
	for _, name := range names {
		t, nullable := valueType(rec[name])
		schema = schema.Add(name, t, nullable)
	}
	return schema
}

// valueType infers the type of one JSON value: integers fitting 32 bits →
// INT, larger → BIGINT, fractional → DOUBLE (paper §5.1's widening chain;
// DECIMAL is reserved for integers beyond 64 bits, which we map to DOUBLE).
func valueType(v any) (types.DataType, bool) {
	switch x := v.(type) {
	case nil:
		return types.Null, true
	case bool:
		return types.Boolean, false
	case string:
		return types.String, false
	case json.Number:
		if i, err := x.Int64(); err == nil {
			if i >= -2147483648 && i <= 2147483647 {
				return types.Int, false
			}
			return types.Long, false
		}
		return types.Double, false
	case []any:
		elem := types.DataType(types.Null)
		containsNull := false
		for _, e := range x {
			et, en := valueType(e)
			elem = types.MostSpecificSupertype(elem, et)
			containsNull = containsNull || en
		}
		return types.ArrayType{Elem: elem, ContainsNull: containsNull}, false
	case map[string]any:
		return recordSchema(x), false
	default:
		return types.String, false
	}
}

// convert coerces a decoded JSON value to the inferred SQL type.
func convert(v any, t types.DataType) any {
	if v == nil {
		return nil
	}
	switch tt := t.(type) {
	case types.ArrayType:
		arr, ok := v.([]any)
		if !ok {
			return nil
		}
		out := make([]any, len(arr))
		for i, e := range arr {
			out[i] = convert(e, tt.Elem)
		}
		return out
	case types.StructType:
		obj, ok := v.(map[string]any)
		if !ok {
			return nil
		}
		rr := make(row.Row, len(tt.Fields))
		for i, f := range tt.Fields {
			rr[i] = convert(obj[f.Name], f.Type)
		}
		return rr
	}
	switch {
	case t.Equals(types.String):
		// Fields that generalized to STRING preserve the original JSON
		// representation (paper §5.1).
		switch s := v.(type) {
		case string:
			return s
		case json.Number:
			return s.String()
		default:
			b, _ := json.Marshal(v)
			return string(b)
		}
	case t.Equals(types.Boolean):
		b, ok := v.(bool)
		if !ok {
			return nil
		}
		return b
	case t.Equals(types.Int):
		if n, ok := v.(json.Number); ok {
			if i, err := n.Int64(); err == nil {
				return int32(i)
			}
		}
		return nil
	case t.Equals(types.Long):
		if n, ok := v.(json.Number); ok {
			if i, err := n.Int64(); err == nil {
				return i
			}
		}
		return nil
	case t.Equals(types.Double), t.Equals(types.Float):
		if n, ok := v.(json.Number); ok {
			if f, err := n.Float64(); err == nil {
				if t.Equals(types.Float) {
					return float32(f)
				}
				return f
			}
		}
		return nil
	default:
		return nil
	}
}
