package jsonds

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

// paperTweets is Figure 5 verbatim.
const paperTweets = `
{"text": "This is a tweet about #Spark", "tags": ["#Spark"], "loc": {"lat": 45.1, "long": 90}}
{"text": "This is another tweet", "tags": [], "loc": {"lat": 39, "long": 88.5}}
{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}
`

func TestFigure6SchemaShape(t *testing.T) {
	records, err := DecodeRecords([]byte(paperTweets))
	if err != nil {
		t.Fatal(err)
	}
	schema := InferSchema(records)

	// text STRING NOT NULL
	i := schema.FieldIndex("text")
	if i < 0 || !schema.Fields[i].Type.Equals(types.String) || schema.Fields[i].Nullable {
		t.Errorf("text = %+v", schema.Fields[i])
	}
	// tags ARRAY<STRING NOT NULL> NOT NULL
	i = schema.FieldIndex("tags")
	want := types.ArrayType{Elem: types.String, ContainsNull: false}
	if i < 0 || !schema.Fields[i].Type.Equals(want) || schema.Fields[i].Nullable {
		t.Errorf("tags = %+v", schema.Fields[i])
	}
	// loc STRUCT<lat DOUBLE NOT NULL, long DOUBLE NOT NULL>, nullable
	// because record 3 lacks it. (The paper infers FLOAT; our lattice
	// widens fractional JSON numbers to DOUBLE — same generalization.)
	i = schema.FieldIndex("loc")
	if i < 0 || !schema.Fields[i].Nullable {
		t.Fatalf("loc = %+v", schema.Fields)
	}
	loc, ok := schema.Fields[i].Type.(types.StructType)
	if !ok {
		t.Fatalf("loc type = %s", schema.Fields[i].Type.Name())
	}
	// lat appears as 45.1 (fractional) and 39 (integer): generalizes to
	// DOUBLE — the exact example the paper walks through.
	lat := loc.Fields[loc.FieldIndex("lat")]
	if !lat.Type.Equals(types.Double) {
		t.Errorf("lat generalization = %s", lat.Type.Name())
	}
}

func TestIntegerWideningChain(t *testing.T) {
	records, err := DecodeRecords([]byte(`
		{"v": 5}
		{"v": 3000000000}
	`))
	if err != nil {
		t.Fatal(err)
	}
	s := InferSchema(records)
	if !s.Fields[0].Type.Equals(types.Long) {
		t.Errorf("INT+big -> %s, want BIGINT", s.Fields[0].Type.Name())
	}

	records, _ = DecodeRecords([]byte(`
		{"v": 5}
		{"v": 2.5}
	`))
	s = InferSchema(records)
	if !s.Fields[0].Type.Equals(types.Double) {
		t.Errorf("INT+frac -> %s, want DOUBLE", s.Fields[0].Type.Name())
	}
}

func TestIncompatibleTypesGeneralizeToString(t *testing.T) {
	records, _ := DecodeRecords([]byte(`
		{"v": 5}
		{"v": "five"}
		{"v": {"nested": true}}
	`))
	s := InferSchema(records)
	if !s.Fields[0].Type.Equals(types.String) {
		t.Errorf("mixed types -> %s, want STRING", s.Fields[0].Type.Name())
	}
	// Conversion preserves the original JSON representation.
	rel := NewRelation(records, 0)
	scan, err := rel.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	var all []row.Row
	for p := 0; p < scan.NumPartitions; p++ {
		all = append(all, scan.Partition(p)...)
	}
	if all[0][0] != "5" || all[1][0] != "five" {
		t.Errorf("string preservation: %v", all)
	}
	if all[2][0] != `{"nested":true}` {
		t.Errorf("nested preservation: %v", all[2][0])
	}
}

func TestNullAndMissingFieldNullability(t *testing.T) {
	records, _ := DecodeRecords([]byte(`
		{"a": 1, "b": null}
		{"a": 2}
	`))
	s := InferSchema(records)
	ai := s.FieldIndex("a")
	bi := s.FieldIndex("b")
	if s.Fields[ai].Nullable {
		t.Error("a present and non-null everywhere: NOT NULL")
	}
	if !s.Fields[bi].Nullable {
		t.Error("b is null/missing: nullable")
	}
	// A field that is always null gets the NULL type and stays queryable.
	if !s.Fields[bi].Type.Equals(types.Null) {
		t.Errorf("b type = %s", s.Fields[bi].Type.Name())
	}
}

func TestMergeIsOrderInsensitive(t *testing.T) {
	a := `{"x": 1, "y": "s"}
{"x": 2.5}`
	b := `{"x": 2.5}
{"x": 1, "y": "s"}`
	ra, _ := DecodeRecords([]byte(a))
	rb, _ := DecodeRecords([]byte(b))
	if !InferSchema(ra).Equals(InferSchema(rb)) {
		t.Errorf("merge should be order-insensitive:\n%s\n%s",
			InferSchema(ra).Name(), InferSchema(rb).Name())
	}
}

// Property: inference + conversion never loses rows and always produces
// values matching the inferred schema, for randomized record shapes.
func TestInferenceTotalOnRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		var data []byte
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				data = append(data, fmt.Sprintf(`{"a": %d, "b": "s%d"}`+"\n", rng.Intn(100), i)...)
			case 1:
				data = append(data, fmt.Sprintf(`{"a": %f}`+"\n", rng.Float64())...)
			case 2:
				data = append(data, fmt.Sprintf(`{"b": null, "c": [%d, %d]}`+"\n", i, i+1)...)
			case 3:
				data = append(data, fmt.Sprintf(`{"c": ["mixed", %d]}`+"\n", i)...)
			default:
				data = append(data, fmt.Sprintf(`{"d": {"x": %d}}`+"\n", i)...)
			}
		}
		records, err := DecodeRecords(data)
		if err != nil {
			t.Fatal(err)
		}
		rel := NewRelation(records, 0)
		scan, err := rel.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for p := 0; p < scan.NumPartitions; p++ {
			total += len(scan.Partition(p))
		}
		if total != n {
			t.Fatalf("trial %d: %d rows, want %d", trial, total, n)
		}
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	if _, err := DecodeRecords([]byte(`{"a": }`)); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestPrunedScan(t *testing.T) {
	records, _ := DecodeRecords([]byte(`{"a": 1, "b": "x"}`))
	rel := NewRelation(records, 0)
	scan, err := rel.ScanPruned([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	rows := scan.Partition(0)
	if len(rows) != 1 || len(rows[0]) != 1 || rows[0][0] != "x" {
		t.Fatalf("pruned = %v", rows)
	}
	if _, err := rel.ScanPruned([]string{"zz"}); err == nil {
		t.Fatal("unknown column must error")
	}
}
