package datasource

import (
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

func TestFilterAlgebra(t *testing.T) {
	cases := []struct {
		f    Filter
		v    any
		want bool
	}{
		{EqualTo{"c", int32(5)}, int32(5), true},
		{EqualTo{"c", int32(5)}, int32(6), false},
		{EqualTo{"c", int32(5)}, nil, false},
		{GreaterThan{"c", int32(5)}, int32(6), true},
		{GreaterThan{"c", int32(5)}, int32(5), false},
		{GreaterOrEqual{"c", int32(5)}, int32(5), true},
		{LessThan{"c", "m"}, "a", true},
		{LessOrEqual{"c", 2.5}, 2.5, true},
		{In{"c", []any{int32(1), int32(3)}}, int32(3), true},
		{In{"c", []any{int32(1), int32(3)}}, int32(2), false},
		{IsNotNull{"c"}, int32(0), true},
		{IsNotNull{"c"}, nil, false},
		{StringStartsWith{"c", "ab"}, "abc", true},
		{StringStartsWith{"c", "ab"}, "ba", false},
	}
	for _, c := range cases {
		if got := c.f.Matches(c.v); got != c.want {
			t.Errorf("%s.Matches(%v) = %v, want %v", c.f, c.v, got, c.want)
		}
	}
}

func TestApplyFilters(t *testing.T) {
	schema := types.StructType{}.
		Add("a", types.Int, false).
		Add("b", types.String, true)
	r := row.Row{int32(10), "hello"}
	ok := ApplyFilters([]Filter{
		GreaterThan{"a", int32(5)},
		StringStartsWith{"b", "he"},
	}, schema, r)
	if !ok {
		t.Error("all filters match")
	}
	if ApplyFilters([]Filter{LessThan{"a", int32(5)}}, schema, r) {
		t.Error("failing filter rejects")
	}
	// Unknown columns are advisory and skipped.
	if !ApplyFilters([]Filter{EqualTo{"zz", int32(1)}}, schema, r) {
		t.Error("unknown-column filters are skipped")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Register("x", ProviderFunc(func(map[string]string) (Relation, error) { return nil, nil }))
	if _, err := reg.Lookup("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("nope"); err == nil {
		t.Fatal("missing provider must error")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}
}
