package datasource

import (
	"fmt"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// Filter is the simple predicate algebra shipped to data sources (paper
// footnote 7: "Filters include equality, comparisons against a constant,
// and IN clauses, each on one attribute"; IsNotNull supports the §5.1
// example's `tags IS NOT NULL`). Sources evaluate filters best-effort.
type Filter interface {
	// Attribute is the single column the filter constrains.
	Attribute() string
	// Matches evaluates the filter against a value of that column
	// (value may be nil for SQL NULL).
	Matches(value any) bool
	fmt.Stringer
}

// EqualTo is col = constant.
type EqualTo struct {
	Col   string
	Value any
}

func (f EqualTo) Attribute() string { return f.Col }
func (f EqualTo) Matches(v any) bool {
	return v != nil && row.Equal(v, f.Value)
}
func (f EqualTo) String() string { return fmt.Sprintf("%s = %v", f.Col, f.Value) }

// GreaterThan is col > constant.
type GreaterThan struct {
	Col   string
	Value any
}

func (f GreaterThan) Attribute() string  { return f.Col }
func (f GreaterThan) Matches(v any) bool { return v != nil && row.Compare(v, f.Value) > 0 }
func (f GreaterThan) String() string     { return fmt.Sprintf("%s > %v", f.Col, f.Value) }

// GreaterOrEqual is col >= constant.
type GreaterOrEqual struct {
	Col   string
	Value any
}

func (f GreaterOrEqual) Attribute() string  { return f.Col }
func (f GreaterOrEqual) Matches(v any) bool { return v != nil && row.Compare(v, f.Value) >= 0 }
func (f GreaterOrEqual) String() string     { return fmt.Sprintf("%s >= %v", f.Col, f.Value) }

// LessThan is col < constant.
type LessThan struct {
	Col   string
	Value any
}

func (f LessThan) Attribute() string  { return f.Col }
func (f LessThan) Matches(v any) bool { return v != nil && row.Compare(v, f.Value) < 0 }
func (f LessThan) String() string     { return fmt.Sprintf("%s < %v", f.Col, f.Value) }

// LessOrEqual is col <= constant.
type LessOrEqual struct {
	Col   string
	Value any
}

func (f LessOrEqual) Attribute() string  { return f.Col }
func (f LessOrEqual) Matches(v any) bool { return v != nil && row.Compare(v, f.Value) <= 0 }
func (f LessOrEqual) String() string     { return fmt.Sprintf("%s <= %v", f.Col, f.Value) }

// In is col IN (constants...).
type In struct {
	Col    string
	Values []any
}

func (f In) Attribute() string { return f.Col }
func (f In) Matches(v any) bool {
	if v == nil {
		return false
	}
	for _, c := range f.Values {
		if row.Equal(v, c) {
			return true
		}
	}
	return false
}
func (f In) String() string {
	parts := make([]string, len(f.Values))
	for i, v := range f.Values {
		parts[i] = fmt.Sprint(v)
	}
	return fmt.Sprintf("%s IN (%s)", f.Col, strings.Join(parts, ", "))
}

// IsNotNull is col IS NOT NULL.
type IsNotNull struct {
	Col string
}

func (f IsNotNull) Attribute() string  { return f.Col }
func (f IsNotNull) Matches(v any) bool { return v != nil }
func (f IsNotNull) String() string     { return fmt.Sprintf("%s IS NOT NULL", f.Col) }

// StringStartsWith is col LIKE 'prefix%' — pushed by the LIKE
// simplification when a source advertises support.
type StringStartsWith struct {
	Col    string
	Prefix string
}

func (f StringStartsWith) Attribute() string { return f.Col }
func (f StringStartsWith) Matches(v any) bool {
	s, ok := v.(string)
	return ok && strings.HasPrefix(s, f.Prefix)
}
func (f StringStartsWith) String() string { return fmt.Sprintf("%s LIKE '%s%%'", f.Col, f.Prefix) }

// ApplyFilters evaluates all filters against a row under the given schema —
// the helper sources use to honor pushdown.
func ApplyFilters(filters []Filter, schema types.StructType, r row.Row) bool {
	for _, f := range filters {
		i := schema.FieldIndex(f.Attribute())
		if i < 0 {
			continue // unknown column: advisory filters may be skipped
		}
		if !f.Matches(r[i]) {
			return false
		}
	}
	return true
}
