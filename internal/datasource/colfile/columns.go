package colfile

import (
	"fmt"

	"repro/internal/types"
)

// Typed whole-column readers. These are the access path a hand-written
// native engine (the evaluation's Impala stand-in) uses: decode one column
// across all row groups into a typed slice, paying decode cost per query
// like any engine reading a columnar file, but with no per-row boxing.

// Int32Column decodes an INT/DATE column. valid[i] is false for NULL.
func (rel *Relation) Int32Column(name string) (values []int32, valid []bool, err error) {
	j, t, err := rel.columnOf(name)
	if err != nil {
		return nil, nil, err
	}
	if !t.Equals(types.Int) && !t.Equals(types.Date) {
		return nil, nil, fmt.Errorf("colfile: column %q is %s, not INT/DATE", name, t.Name())
	}
	for _, g := range rel.groups {
		c := g.chunks[j]
		r := &reader{data: c.data}
		for i := 0; i < g.numRows; i++ {
			if c.bitmap[i/8]&(1<<(uint(i)%8)) == 0 {
				values = append(values, 0)
				valid = append(valid, false)
				continue
			}
			values = append(values, int32(r.u32()))
			valid = append(valid, true)
		}
	}
	return values, valid, nil
}

// Float64Column decodes a DOUBLE column.
func (rel *Relation) Float64Column(name string) (values []float64, valid []bool, err error) {
	j, t, err := rel.columnOf(name)
	if err != nil {
		return nil, nil, err
	}
	if !t.Equals(types.Double) {
		return nil, nil, fmt.Errorf("colfile: column %q is %s, not DOUBLE", name, t.Name())
	}
	for _, g := range rel.groups {
		c := g.chunks[j]
		r := &reader{data: c.data}
		for i := 0; i < g.numRows; i++ {
			if c.bitmap[i/8]&(1<<(uint(i)%8)) == 0 {
				values = append(values, 0)
				valid = append(valid, false)
				continue
			}
			values = append(values, r.value(types.Double).(float64))
			valid = append(valid, true)
		}
	}
	return values, valid, nil
}

// StringColumn decodes a STRING column; NULLs decode as "".
func (rel *Relation) StringColumn(name string) (values []string, valid []bool, err error) {
	j, t, err := rel.columnOf(name)
	if err != nil {
		return nil, nil, err
	}
	if !t.Equals(types.String) {
		return nil, nil, fmt.Errorf("colfile: column %q is %s, not STRING", name, t.Name())
	}
	for _, g := range rel.groups {
		c := g.chunks[j]
		r := &reader{data: c.data}
		for i := 0; i < g.numRows; i++ {
			if c.bitmap[i/8]&(1<<(uint(i)%8)) == 0 {
				values = append(values, "")
				valid = append(valid, false)
				continue
			}
			values = append(values, r.str())
			valid = append(valid, true)
		}
	}
	return values, valid, nil
}

func (rel *Relation) columnOf(name string) (int, types.DataType, error) {
	j := rel.schema.FieldIndex(name)
	if j < 0 {
		return 0, nil, fmt.Errorf("colfile: unknown column %q", name)
	}
	return j, rel.schema.Fields[j].Type, nil
}
