package colfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

func testSchema() types.StructType {
	return types.StructType{}.
		Add("flag", types.Boolean, true).
		Add("i", types.Int, true).
		Add("l", types.Long, true).
		Add("d", types.Double, true).
		Add("s", types.String, true).
		Add("when", types.Date, true)
}

func randomRows(rng *rand.Rand, n int) []row.Row {
	out := make([]row.Row, n)
	for i := range out {
		r := row.Row{
			rng.Intn(2) == 0,
			int32(rng.Intn(1000)),
			int64(rng.Intn(100000)),
			rng.Float64() * 100,
			[]string{"", "x", "hello world", "çüé"}[rng.Intn(4)],
			int32(16000 + rng.Intn(700)),
		}
		if rng.Intn(6) == 0 {
			r[rng.Intn(len(r))] = nil
		}
		out[i] = r
	}
	return out
}

func scanAll(t *testing.T, rel *Relation, cols []string, filters []datasource.Filter) []row.Row {
	t.Helper()
	scan, err := rel.ScanPrunedFiltered(cols, filters)
	if err != nil {
		t.Fatal(err)
	}
	var out []row.Row
	for p := 0; p < scan.NumPartitions; p++ {
		out = append(out, scan.Partition(p)...)
	}
	return out
}

// Property: write-then-read returns the data exactly, for random rows and
// row-group sizes.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		rows := randomRows(rng, 1+rng.Intn(400))
		path := filepath.Join(dir, "t.gcf")
		if err := Write(path, testSchema(), rows, 1+rng.Intn(100)); err != nil {
			t.Fatal(err)
		}
		rel, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if !rel.Schema().Equals(testSchema()) {
			t.Fatalf("schema round-trip: %s", rel.Schema().Name())
		}
		got := scanAll(t, rel, testSchema().FieldNames(), nil)
		if len(got) != len(rows) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(rows))
		}
		for i := range rows {
			for j := range rows[i] {
				if !row.Equal(got[i][j], rows[i][j]) {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, j, got[i][j], rows[i][j])
				}
			}
		}
	}
}

func TestColumnPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := randomRows(rng, 100)
	path := filepath.Join(t.TempDir(), "t.gcf")
	if err := Write(path, testSchema(), rows, 0); err != nil {
		t.Fatal(err)
	}
	rel, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, rel, []string{"s", "i"}, nil)
	for i := range rows {
		if !row.Equal(got[i][0], rows[i][4]) || !row.Equal(got[i][1], rows[i][1]) {
			t.Fatalf("pruned row %d = %v", i, got[i])
		}
	}
	if _, err := rel.ScanPrunedFiltered([]string{"nope"}, nil); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestFilterPushdownIsExact(t *testing.T) {
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{i%2 == 0, int32(i), int64(i), float64(i), "s", int32(16000)}
	}
	path := filepath.Join(t.TempDir(), "t.gcf")
	if err := Write(path, testSchema(), rows, 100); err != nil {
		t.Fatal(err)
	}
	rel, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRowGroups() != 10 {
		t.Fatalf("groups = %d", rel.NumRowGroups())
	}
	filters := []datasource.Filter{
		datasource.GreaterOrEqual{Col: "i", Value: int32(950)},
	}
	got := scanAll(t, rel, []string{"i"}, filters)
	if len(got) != 50 {
		t.Fatalf("filtered rows = %d, want 50 (exact evaluation)", len(got))
	}
	// HandledFilters reports everything handled.
	if handled := rel.HandledFilters(filters); len(handled) != 1 {
		t.Fatal("colfile evaluates filters exactly")
	}
}

func TestRowGroupSkipping(t *testing.T) {
	// Row groups have disjoint ranges; a selective filter must not decode
	// non-matching groups. We detect skipping via the returned partitions:
	// skipped groups yield nil slices.
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{true, int32(i), int64(i), 0.0, "s", int32(16000)}
	}
	path := filepath.Join(t.TempDir(), "t.gcf")
	if err := Write(path, testSchema(), rows, 100); err != nil {
		t.Fatal(err)
	}
	rel, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := rel.ScanPrunedFiltered([]string{"i"}, []datasource.Filter{
		datasource.GreaterThan{Col: "i", Value: int32(899)},
	})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < scan.NumPartitions; p++ {
		if len(scan.Partition(p)) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("stats skipping failed: %d groups produced rows", nonEmpty)
	}
}

func TestTypedColumnReaders(t *testing.T) {
	rows := []row.Row{
		{true, int32(1), int64(10), 1.5, "a", int32(100)},
		{false, nil, int64(20), 2.5, "b", int32(200)},
	}
	path := filepath.Join(t.TempDir(), "t.gcf")
	if err := Write(path, testSchema(), rows, 0); err != nil {
		t.Fatal(err)
	}
	rel, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ints, valid, err := rel.Int32Column("i")
	if err != nil {
		t.Fatal(err)
	}
	if ints[0] != 1 || !valid[0] || valid[1] {
		t.Fatalf("ints = %v valid = %v", ints, valid)
	}
	ds, _, err := rel.Float64Column("d")
	if err != nil || ds[1] != 2.5 {
		t.Fatalf("doubles = %v (%v)", ds, err)
	}
	ss, _, err := rel.StringColumn("s")
	if err != nil || ss[0] != "a" {
		t.Fatalf("strings = %v (%v)", ss, err)
	}
	if _, _, err := rel.Int32Column("s"); err == nil {
		t.Fatal("type mismatch must error")
	}
	if _, _, err := rel.StringColumn("zz"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gcf")
	os.WriteFile(bad, []byte("not a columnar file at all"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("garbage must be rejected")
	}
	// Truncated real file.
	rows := []row.Row{{true, int32(1), int64(1), 1.0, "x", int32(1)}}
	good := filepath.Join(dir, "good.gcf")
	if err := Write(good, testSchema(), rows, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	trunc := filepath.Join(dir, "trunc.gcf")
	os.WriteFile(trunc, data[:len(data)/2], 0o644)
	if _, err := Open(trunc); err == nil {
		t.Fatal("truncated file must be rejected")
	}
}

func TestUnsupportedTypeRejected(t *testing.T) {
	schema := types.StructType{}.Add("x", types.ArrayType{Elem: types.Int}, false)
	err := Write(filepath.Join(t.TempDir(), "t.gcf"), schema, nil, 0)
	if err == nil {
		t.Fatal("nested types are not supported by the file format")
	}
}

func TestSizeInBytes(t *testing.T) {
	rows := randomRows(rand.New(rand.NewSource(9)), 50)
	path := filepath.Join(t.TempDir(), "t.gcf")
	if err := Write(path, testSchema(), rows, 0); err != nil {
		t.Fatal(err)
	}
	rel, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if rel.SizeInBytes() != st.Size() {
		t.Fatalf("size = %d, file = %d", rel.SizeInBytes(), st.Size())
	}
}
