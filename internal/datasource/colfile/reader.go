package colfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

// Provider returns the colfile relation provider. Options:
//
//	path (required) file path
func Provider() datasource.Provider {
	return datasource.ProviderFunc(func(options map[string]string) (datasource.Relation, error) {
		path := options["path"]
		if path == "" {
			return nil, fmt.Errorf("colfile: missing required option 'path'")
		}
		return Open(path)
	})
}

// chunk is a decoded column chunk location within the raw file bytes.
type chunk struct {
	mn, mx any
	// bitmap of non-null rows, then the value bytes.
	bitmap []byte
	data   []byte
}

// rowGroup holds per-column chunks.
type rowGroup struct {
	numRows int
	chunks  []chunk
}

// Relation is an opened columnar file.
type Relation struct {
	path   string
	schema types.StructType
	groups []rowGroup
	size   int64
}

var (
	_ datasource.PrunedFilteredScan = (*Relation)(nil)
	_ datasource.ExactFilterScan    = (*Relation)(nil)
	_ datasource.SizedRelation      = (*Relation)(nil)
)

// Open memory-maps (reads) the file and indexes row groups and chunks.
func Open(path string) (*Relation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("colfile: %w", err)
	}
	r := &reader{data: data}
	var m [4]byte
	copy(m[:], r.bytes(4))
	if m != magic {
		return nil, fmt.Errorf("colfile: %s is not a columnar file", path)
	}
	nFields := int(r.u32())
	var schema types.StructType
	for i := 0; i < nFields; i++ {
		name := r.str()
		t, err := typeOf(r.byte())
		if err != nil {
			return nil, err
		}
		nullable := r.byte() == 1
		schema = schema.Add(name, t, nullable)
	}
	nGroups := int(r.u32())
	rel := &Relation{path: path, schema: schema, size: int64(len(data))}
	for g := 0; g < nGroups; g++ {
		numRows := int(r.u32())
		rg := rowGroup{numRows: numRows, chunks: make([]chunk, nFields)}
		for j := 0; j < nFields; j++ {
			t := schema.Fields[j].Type
			c := chunk{bitmap: r.bytes((numRows + 7) / 8)}
			nonNull := 0
			for i := 0; i < numRows; i++ {
				if c.bitmap[i/8]&(1<<(uint(i)%8)) != 0 {
					nonNull++
				}
			}
			if r.byte() == 1 {
				c.mn = r.value(t)
			}
			if r.byte() == 1 {
				c.mx = r.value(t)
			}
			c.data = r.valueBlock(t, nonNull)
			rg.chunks[j] = c
		}
		rel.groups = append(rel.groups, rg)
	}
	if r.err != nil {
		return nil, fmt.Errorf("colfile: corrupt file %s: %w", path, r.err)
	}
	return rel, nil
}

// Schema implements datasource.Relation.
func (rel *Relation) Schema() types.StructType { return rel.schema }

// SizeInBytes implements datasource.SizedRelation.
func (rel *Relation) SizeInBytes() int64 { return rel.size }

// HandledFilters implements datasource.ExactFilterScan: every filter in the
// simple algebra is evaluated exactly.
func (rel *Relation) HandledFilters(filters []datasource.Filter) []datasource.Filter {
	return filters
}

// NumRowGroups reports the group count (tests).
func (rel *Relation) NumRowGroups() int { return len(rel.groups) }

// ScanPrunedFiltered implements datasource.PrunedFilteredScan. Each row
// group is one partition; groups whose stats cannot match are skipped, and
// only requested columns are decoded.
func (rel *Relation) ScanPrunedFiltered(columns []string, filters []datasource.Filter) (datasource.Scan, error) {
	ords := make([]int, len(columns))
	for i, c := range columns {
		j := rel.schema.FieldIndex(c)
		if j < 0 {
			return datasource.Scan{}, fmt.Errorf("colfile: unknown column %q", c)
		}
		ords[i] = j
	}
	// Columns needed only for filtering.
	filterOrds := map[int]int{} // schema ordinal -> position in decode set
	decodeOrds := append([]int{}, ords...)
	for _, f := range filters {
		j := rel.schema.FieldIndex(f.Attribute())
		if j < 0 {
			return datasource.Scan{}, fmt.Errorf("colfile: filter on unknown column %q", f.Attribute())
		}
		pos := -1
		for k, o := range decodeOrds {
			if o == j {
				pos = k
				break
			}
		}
		if pos < 0 {
			pos = len(decodeOrds)
			decodeOrds = append(decodeOrds, j)
		}
		filterOrds[j] = pos
	}

	groups := rel.groups
	return datasource.Scan{
		NumPartitions: len(groups),
		Partition: func(p int) []row.Row {
			g := groups[p]
			if !rel.groupMayMatch(g, filters) {
				return nil
			}
			// Decode needed columns once.
			cols := make([][]any, len(decodeOrds))
			for k, j := range decodeOrds {
				cols[k] = rel.decodeChunk(g, j)
			}
			out := make([]row.Row, 0, g.numRows)
			for i := 0; i < g.numRows; i++ {
				ok := true
				for _, f := range filters {
					pos := filterOrds[rel.schema.FieldIndex(f.Attribute())]
					if !f.Matches(cols[pos][i]) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				rr := make(row.Row, len(ords))
				for k := range ords {
					rr[k] = cols[k][i]
				}
				out = append(out, rr)
			}
			return out
		},
	}, nil
}

// groupMayMatch tests filters against chunk min/max stats.
func (rel *Relation) groupMayMatch(g rowGroup, filters []datasource.Filter) bool {
	for _, f := range filters {
		j := rel.schema.FieldIndex(f.Attribute())
		if j < 0 {
			continue
		}
		c := g.chunks[j]
		if c.mn == nil || c.mx == nil {
			// All-NULL chunk: only IS NOT NULL filters prune it.
			if _, ok := f.(datasource.IsNotNull); ok {
				return false
			}
			continue
		}
		switch x := f.(type) {
		case datasource.EqualTo:
			if row.Compare(x.Value, c.mn) < 0 || row.Compare(x.Value, c.mx) > 0 {
				return false
			}
		case datasource.GreaterThan:
			if row.Compare(c.mx, x.Value) <= 0 {
				return false
			}
		case datasource.GreaterOrEqual:
			if row.Compare(c.mx, x.Value) < 0 {
				return false
			}
		case datasource.LessThan:
			if row.Compare(c.mn, x.Value) >= 0 {
				return false
			}
		case datasource.LessOrEqual:
			if row.Compare(c.mn, x.Value) > 0 {
				return false
			}
		}
	}
	return true
}

// decodeChunk materializes one column of a group as []any with NULLs.
func (rel *Relation) decodeChunk(g rowGroup, j int) []any {
	t := rel.schema.Fields[j].Type
	c := g.chunks[j]
	out := make([]any, g.numRows)
	r := &reader{data: c.data}
	for i := 0; i < g.numRows; i++ {
		if c.bitmap[i/8]&(1<<(uint(i)%8)) == 0 {
			continue
		}
		out[i] = r.value(t)
	}
	return out
}

// ---------------------------------------------------------------------------
// Low-level reader

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("unexpected EOF at %d", r.pos)
		r.pos = len(r.data)
		return make([]byte, n)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) byte() byte  { return r.bytes(1)[0] }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
func (r *reader) str() string { return string(r.bytes(int(r.u32()))) }

func (r *reader) value(t types.DataType) any {
	switch {
	case t.Equals(types.Boolean):
		return r.byte() == 1
	case t.Equals(types.Int), t.Equals(types.Date):
		return int32(r.u32())
	case t.Equals(types.Long), t.Equals(types.Timestamp):
		return int64(r.u64())
	case t.Equals(types.Double):
		return math.Float64frombits(r.u64())
	case t.Equals(types.String):
		return r.str()
	}
	r.err = fmt.Errorf("unsupported type %s", t.Name())
	return nil
}

// valueBlock slices out the raw bytes for nonNull values of type t.
func (r *reader) valueBlock(t types.DataType, nonNull int) []byte {
	start := r.pos
	switch {
	case t.Equals(types.Boolean):
		r.bytes(nonNull)
	case t.Equals(types.Int), t.Equals(types.Date):
		r.bytes(4 * nonNull)
	case t.Equals(types.Long), t.Equals(types.Timestamp), t.Equals(types.Double):
		r.bytes(8 * nonNull)
	case t.Equals(types.String):
		for i := 0; i < nonNull; i++ {
			r.bytes(int(r.u32()))
		}
	default:
		r.err = fmt.Errorf("unsupported type %s", t.Name())
	}
	if r.err != nil {
		return nil
	}
	return r.data[start:r.pos]
}
