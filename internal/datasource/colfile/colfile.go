// Package colfile implements this repository's columnar file format — the
// stand-in for Parquet in the paper's evaluation (§6.1 stores the benchmark
// dataset as compressed columnar Parquet). Files hold row groups of
// column chunks with per-chunk min/max statistics; readers support column
// pruning (only requested chunks are decoded) and filter pushdown with
// row-group skipping. Filters are evaluated exactly, so the engine drops
// residual predicates (ExactFilterScan).
package colfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/row"
	"repro/internal/types"
)

var magic = [4]byte{'G', 'C', 'F', '1'}

// DefaultRowGroupSize is the writer's default rows-per-group.
const DefaultRowGroupSize = 1 << 16

// type tags in the file format.
const (
	tagBool byte = iota + 1
	tagInt
	tagLong
	tagDouble
	tagString
	tagDate
	tagTimestamp
)

func tagOf(t types.DataType) (byte, error) {
	switch {
	case t.Equals(types.Boolean):
		return tagBool, nil
	case t.Equals(types.Int):
		return tagInt, nil
	case t.Equals(types.Long):
		return tagLong, nil
	case t.Equals(types.Double):
		return tagDouble, nil
	case t.Equals(types.String):
		return tagString, nil
	case t.Equals(types.Date):
		return tagDate, nil
	case t.Equals(types.Timestamp):
		return tagTimestamp, nil
	}
	return 0, fmt.Errorf("colfile: unsupported column type %s", t.Name())
}

func typeOf(tag byte) (types.DataType, error) {
	switch tag {
	case tagBool:
		return types.Boolean, nil
	case tagInt:
		return types.Int, nil
	case tagLong:
		return types.Long, nil
	case tagDouble:
		return types.Double, nil
	case tagString:
		return types.String, nil
	case tagDate:
		return types.Date, nil
	case tagTimestamp:
		return types.Timestamp, nil
	}
	return nil, fmt.Errorf("colfile: unknown type tag %d", tag)
}

// Write writes rows to path with the given schema and row-group size.
func Write(path string, schema types.StructType, rows []row.Row, rowGroupSize int) error {
	if rowGroupSize <= 0 {
		rowGroupSize = DefaultRowGroupSize
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colfile: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeAll(w, schema, rows, rowGroupSize); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("colfile: %w", err)
	}
	return f.Close()
}

func writeAll(w io.Writer, schema types.StructType, rows []row.Row, rowGroupSize int) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	// Schema block.
	writeU32(w, uint32(len(schema.Fields)))
	for _, f := range schema.Fields {
		tag, err := tagOf(f.Type)
		if err != nil {
			return err
		}
		writeString(w, f.Name)
		writeByte(w, tag)
		if f.Nullable {
			writeByte(w, 1)
		} else {
			writeByte(w, 0)
		}
	}
	// Row groups.
	numGroups := (len(rows) + rowGroupSize - 1) / rowGroupSize
	writeU32(w, uint32(numGroups))
	for g := 0; g < numGroups; g++ {
		lo := g * rowGroupSize
		hi := min(lo+rowGroupSize, len(rows))
		if err := writeGroup(w, schema, rows[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

func writeGroup(w io.Writer, schema types.StructType, rows []row.Row) error {
	writeU32(w, uint32(len(rows)))
	for j, f := range schema.Fields {
		if err := writeChunk(w, f.Type, rows, j); err != nil {
			return err
		}
	}
	return nil
}

// writeChunk encodes one column chunk: null bitmap, min/max stats, values.
func writeChunk(w io.Writer, t types.DataType, rows []row.Row, col int) error {
	n := len(rows)
	bitmap := make([]byte, (n+7)/8)
	var mn, mx any
	for i, r := range rows {
		v := r[col]
		if v == nil {
			continue
		}
		bitmap[i/8] |= 1 << (uint(i) % 8)
		if mn == nil || row.Compare(v, mn) < 0 {
			mn = v
		}
		if mx == nil || row.Compare(v, mx) > 0 {
			mx = v
		}
	}
	if _, err := w.Write(bitmap); err != nil {
		return err
	}
	if err := writeStat(w, t, mn); err != nil {
		return err
	}
	if err := writeStat(w, t, mx); err != nil {
		return err
	}
	for _, r := range rows {
		v := r[col]
		if v == nil {
			continue
		}
		if err := writeValue(w, t, v); err != nil {
			return err
		}
	}
	return nil
}

func writeStat(w io.Writer, t types.DataType, v any) error {
	if v == nil {
		writeByte(w, 0)
		return nil
	}
	writeByte(w, 1)
	return writeValue(w, t, v)
}

func writeValue(w io.Writer, t types.DataType, v any) error {
	switch {
	case t.Equals(types.Boolean):
		if v.(bool) {
			writeByte(w, 1)
		} else {
			writeByte(w, 0)
		}
	case t.Equals(types.Int), t.Equals(types.Date):
		writeU32(w, uint32(v.(int32)))
	case t.Equals(types.Long), t.Equals(types.Timestamp):
		writeU64(w, uint64(v.(int64)))
	case t.Equals(types.Double):
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.(float64)))
		_, err := w.Write(buf[:])
		return err
	case t.Equals(types.String):
		writeString(w, v.(string))
	default:
		return fmt.Errorf("colfile: unsupported value type %T", v)
	}
	return nil
}

func writeByte(w io.Writer, b byte) { w.Write([]byte{b}) }
func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}
func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}
func writeString(w io.Writer, s string) {
	writeU32(w, uint32(len(s)))
	io.WriteString(w, s)
}
