// Package csvds is the CSV data source (paper §4.4.1: "CSV files, which
// simply scan the whole file, but allow users to specify a schema"). It
// supports an explicit schema option or header-based inference, and
// implements PrunedScan so only requested columns are converted.
package csvds

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

// Provider returns the csv relation provider. Options:
//
//	path   (required) file path
//	header "true"/"false" — first row is column names (default true)
//	schema optional "name TYPE, name TYPE" declaration
//	delimiter optional single character (default ",")
func Provider() datasource.Provider {
	return datasource.ProviderFunc(func(options map[string]string) (datasource.Relation, error) {
		path := options["path"]
		if path == "" {
			return nil, fmt.Errorf("csv: missing required option 'path'")
		}
		return Open(path, options)
	})
}

// Relation is an opened CSV file.
type Relation struct {
	path    string
	schema  types.StructType
	records [][]string // data records (header stripped)
	size    int64
}

var _ datasource.PrunedScan = (*Relation)(nil)
var _ datasource.SizedRelation = (*Relation)(nil)

// Open reads and parses the file eagerly (CSV files are the small end of
// the source spectrum; the columnar format handles big data).
func Open(path string, options map[string]string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	r := csv.NewReader(f)
	if d := options["delimiter"]; d != "" {
		r.Comma = rune(d[0])
	}
	r.FieldsPerRecord = -1
	all, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv: parsing %s: %w", path, err)
	}
	header := options["header"] != "false"

	var names []string
	records := all
	if header && len(all) > 0 {
		names = all[0]
		records = all[1:]
	}

	var schema types.StructType
	if s := options["schema"]; s != "" {
		schema, err = ParseSchema(s)
		if err != nil {
			return nil, err
		}
	} else {
		if names == nil {
			if len(all) == 0 {
				return nil, fmt.Errorf("csv: empty file and no schema given")
			}
			names = make([]string, len(all[0]))
			for i := range names {
				names[i] = fmt.Sprintf("_c%d", i)
			}
		}
		schema = inferSchema(names, records)
	}
	return &Relation{path: path, schema: schema, records: records, size: st.Size()}, nil
}

// Schema implements datasource.Relation.
func (r *Relation) Schema() types.StructType { return r.schema }

// SizeInBytes implements datasource.SizedRelation.
func (r *Relation) SizeInBytes() int64 { return r.size }

// ScanAll implements datasource.TableScan.
func (r *Relation) ScanAll() (datasource.Scan, error) {
	return r.ScanPruned(r.schema.FieldNames())
}

// ScanPruned implements datasource.PrunedScan: only the requested columns
// are converted from text.
func (r *Relation) ScanPruned(columns []string) (datasource.Scan, error) {
	ords := make([]int, len(columns))
	fields := make([]types.StructField, len(columns))
	for i, c := range columns {
		j := r.schema.FieldIndex(c)
		if j < 0 {
			return datasource.Scan{}, fmt.Errorf("csv: unknown column %q", c)
		}
		ords[i] = j
		fields[i] = r.schema.Fields[j]
	}
	records := r.records
	numPart := 4
	if len(records) < numPart {
		numPart = 1
	}
	return datasource.Scan{
		NumPartitions: numPart,
		Partition: func(p int) []row.Row {
			lo := len(records) * p / numPart
			hi := len(records) * (p + 1) / numPart
			out := make([]row.Row, 0, hi-lo)
			for _, rec := range records[lo:hi] {
				rr := make(row.Row, len(ords))
				for i, j := range ords {
					if j < len(rec) {
						rr[i] = convert(rec[j], fields[i].Type)
					}
				}
				out = append(out, rr)
			}
			return out
		},
	}, nil
}

// convert parses one CSV cell; empty cells and failed parses become NULL.
func convert(s string, t types.DataType) any {
	if s == "" {
		return nil
	}
	switch {
	case t.Equals(types.String):
		return s
	case t.Equals(types.Int):
		if v, err := strconv.ParseInt(s, 10, 32); err == nil {
			return int32(v)
		}
	case t.Equals(types.Long):
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	case t.Equals(types.Double):
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	case t.Equals(types.Float):
		if v, err := strconv.ParseFloat(s, 32); err == nil {
			return float32(v)
		}
	case t.Equals(types.Boolean):
		if v, err := strconv.ParseBool(strings.ToLower(s)); err == nil {
			return v
		}
	case t.Equals(types.Date):
		// Reuse the cast-layer date parsing via a lightweight local parse.
		if d, ok := parseDate(s); ok {
			return d
		}
	default:
		if dt, ok := t.(types.DecimalType); ok {
			if d, err := types.ParseDecimal(s); err == nil {
				return d.Rescale(dt.Scale)
			}
		}
	}
	return nil
}

func parseDate(s string) (int32, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return 0, false
	}
	y, e1 := strconv.Atoi(parts[0])
	m, e2 := strconv.Atoi(parts[1])
	d, e3 := strconv.Atoi(parts[2])
	if e1 != nil || e2 != nil || e3 != nil {
		return 0, false
	}
	// Days since epoch via the civil-days algorithm.
	yy := y
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	mp := m + 9
	if m > 2 {
		mp = m - 3
	}
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int32(era*146097 + doe - 719468), true
}

// ParseSchema parses "name TYPE, name TYPE" declarations.
func ParseSchema(s string) (types.StructType, error) {
	var schema types.StructType
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) < 2 {
			return types.StructType{}, fmt.Errorf("csv: invalid schema fragment %q", part)
		}
		t, err := typeByName(strings.ToUpper(fields[1]))
		if err != nil {
			return types.StructType{}, err
		}
		schema = schema.Add(fields[0], t, true)
	}
	return schema, nil
}

func typeByName(name string) (types.DataType, error) {
	switch name {
	case "INT", "INTEGER":
		return types.Int, nil
	case "BIGINT", "LONG":
		return types.Long, nil
	case "DOUBLE":
		return types.Double, nil
	case "FLOAT":
		return types.Float, nil
	case "STRING", "VARCHAR", "TEXT":
		return types.String, nil
	case "BOOLEAN", "BOOL":
		return types.Boolean, nil
	case "DATE":
		return types.Date, nil
	case "TIMESTAMP":
		return types.Timestamp, nil
	}
	return nil, fmt.Errorf("csv: unknown type %q in schema", name)
}

// inferSchema guesses column types from the data: INT widening to BIGINT
// widening to DOUBLE, with STRING as the fallback (a simplified version of
// the §5.1 most-specific-supertype merge).
func inferSchema(names []string, records [][]string) types.StructType {
	var schema types.StructType
	for i, name := range names {
		t := types.Null
		for _, rec := range records {
			if i >= len(rec) || rec[i] == "" {
				continue
			}
			t = types.MostSpecificSupertype(t, cellType(rec[i]))
		}
		if t.Equals(types.Null) {
			t = types.String
		}
		schema = schema.Add(name, t, true)
	}
	return schema
}

func cellType(s string) types.DataType {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		if v >= -2147483648 && v <= 2147483647 {
			return types.Int
		}
		return types.Long
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return types.Double
	}
	if _, err := strconv.ParseBool(strings.ToLower(s)); err == nil {
		return types.Boolean
	}
	return types.String
}
