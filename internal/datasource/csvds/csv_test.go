package csvds

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHeaderInference(t *testing.T) {
	path := writeFile(t, "name,age,score,member\nAlice,30,9.5,true\nBob,25,8.0,false\n")
	rel, err := Open(path, map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Schema()
	wantTypes := []types.DataType{types.String, types.Int, types.Double, types.Boolean}
	for i, w := range wantTypes {
		if !s.Fields[i].Type.Equals(w) {
			t.Errorf("col %d = %s, want %s", i, s.Fields[i].Type.Name(), w.Name())
		}
	}
	scan, err := rel.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for p := 0; p < scan.NumPartitions; p++ {
		for _, r := range scan.Partition(p) {
			n++
			if len(r) != 4 {
				t.Fatalf("row = %v", r)
			}
		}
	}
	if n != 2 {
		t.Fatalf("rows = %d", n)
	}
}

func TestExplicitSchema(t *testing.T) {
	path := writeFile(t, "id,when\n1,2015-03-04\n")
	rel, err := Open(path, map[string]string{"schema": "id BIGINT, when DATE"})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Schema().Fields[0].Type.Equals(types.Long) {
		t.Error("declared BIGINT")
	}
	scan, _ := rel.ScanAll()
	r := scan.Partition(0)[0]
	if r[0] != int64(1) {
		t.Errorf("id = %v", r[0])
	}
	if r[1] != int32(16498) { // 2015-03-04
		t.Errorf("date = %v", r[1])
	}
}

func TestPrunedScanConvertsOnlyRequested(t *testing.T) {
	path := writeFile(t, "a,b,c\n1,x,2.5\n2,y,3.5\n")
	rel, err := Open(path, map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := rel.ScanPruned([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for p := 0; p < scan.NumPartitions; p++ {
		for _, r := range scan.Partition(p) {
			rows++
			if len(r) != 2 {
				t.Fatalf("row = %v", r)
			}
			if _, ok := r[0].(float64); !ok {
				t.Fatalf("c should be DOUBLE: %v", r)
			}
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d", rows)
	}
	if _, err := rel.ScanPruned([]string{"zzz"}); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestNoHeaderMode(t *testing.T) {
	path := writeFile(t, "1,foo\n2,bar\n")
	rel, err := Open(path, map[string]string{"header": "false"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema().Fields[0].Name != "_c0" {
		t.Errorf("generated names = %v", rel.Schema().FieldNames())
	}
	scan, _ := rel.ScanAll()
	total := 0
	for p := 0; p < scan.NumPartitions; p++ {
		total += len(scan.Partition(p))
	}
	if total != 2 {
		t.Fatalf("rows = %d", total)
	}
}

func TestEmptyAndInvalidCellsBecomeNull(t *testing.T) {
	path := writeFile(t, "a,b\n1,\nnotanum,2\n")
	rel, err := Open(path, map[string]string{"schema": "a INT, b INT"})
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := rel.ScanAll()
	var rows [][]any
	for p := 0; p < scan.NumPartitions; p++ {
		for _, r := range scan.Partition(p) {
			rows = append(rows, r)
		}
	}
	if rows[0][1] != nil {
		t.Error("empty cell is NULL")
	}
	if rows[1][0] != nil {
		t.Error("unparseable cell is NULL")
	}
}

func TestDelimiterOption(t *testing.T) {
	path := writeFile(t, "a|b\n1|2\n")
	rel, err := Open(path, map[string]string{"delimiter": "|"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Schema().Fields) != 2 {
		t.Fatalf("fields = %v", rel.Schema().FieldNames())
	}
}

func TestParseSchemaErrors(t *testing.T) {
	if _, err := ParseSchema("a WAT"); err == nil {
		t.Fatal("unknown type must fail")
	}
	if _, err := ParseSchema("justaname"); err == nil {
		t.Fatal("missing type must fail")
	}
}

func TestInferenceWidening(t *testing.T) {
	path := writeFile(t, "v\n1\n3000000000\n2.5\n")
	rel, err := Open(path, map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Schema().Fields[0].Type.Equals(types.Double) {
		t.Errorf("mixed numerics -> %s, want DOUBLE", rel.Schema().Fields[0].Type.Name())
	}
}

func TestProviderRequiresPath(t *testing.T) {
	if _, err := Provider().CreateRelation(map[string]string{}); err == nil {
		t.Fatal("missing path must fail")
	}
}
