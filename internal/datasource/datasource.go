// Package datasource defines the Spark SQL data source API (paper §4.4.1):
// relations loaded by name with key-value options, exposing progressively
// smarter scan interfaces — TableScan, PrunedScan, PrunedFilteredScan and
// CatalystScan — that let the optimizer push column pruning and predicates
// into the source. Concrete sources (CSV, JSON, the columnar file format,
// and the federated in-memory database) live in subpackages and in
// internal/memdb.
package datasource

import (
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/types"
)

// Relation is the object a provider returns for a successfully loaded data
// source: at minimum a schema, optionally a size estimate (paper: "each
// BaseRelation contains a schema and an optional estimated size in bytes").
type Relation interface {
	Schema() types.StructType
}

// SizedRelation lets a relation report its estimated size in bytes, feeding
// the broadcast-join cost model.
type SizedRelation interface {
	Relation
	SizeInBytes() int64
}

// Scan is partitioned row output from a relation. Partition functions run
// lazily inside RDD tasks.
type Scan struct {
	NumPartitions int
	// Partition produces the rows of partition p. It must be safe to call
	// concurrently for distinct p and repeatedly for the same p (lineage
	// recomputation).
	Partition func(p int) []row.Row
	// PreferredLocations optionally exposes data locality per partition
	// (paper: "all data sources can also expose network locality
	// information"); the in-process scheduler records but does not need it.
	PreferredLocations func(p int) []string
}

// TableScan is the simplest interface: return all rows of all columns.
type TableScan interface {
	Relation
	ScanAll() (Scan, error)
}

// PrunedScan adds projection pushdown: return rows containing only the
// requested columns, in the requested order.
type PrunedScan interface {
	Relation
	ScanPruned(columns []string) (Scan, error)
}

// PrunedFilteredScan adds predicate pushdown with the simple Filter algebra.
// Filters are advisory: the source should try to apply them but may return
// false positives; the engine keeps a residual filter unless the source
// also implements ExactFilterScan.
type PrunedFilteredScan interface {
	Relation
	ScanPrunedFiltered(columns []string, filters []Filter) (Scan, error)
}

// CatalystScan hands the source complete Catalyst expression trees for
// pushdown — the most powerful (and least stable) interface.
type CatalystScan interface {
	Relation
	ScanCatalyst(columns []string, predicates []expr.Expression) (Scan, error)
}

// ExactFilterScan marks a PrunedFilteredScan whose filter evaluation is
// exact for the returned filters, allowing the engine to drop the residual
// predicate. HandledFilters reports which of the candidate filters the
// source will fully evaluate.
type ExactFilterScan interface {
	HandledFilters(filters []Filter) []Filter
}

// InsertableRelation supports writing: the engine provides partitioned rows
// to append (paper: "similar interfaces exist for writing data ... simpler
// because Spark SQL just provides an RDD of Row objects to be written").
type InsertableRelation interface {
	Relation
	Insert(partitions [][]row.Row) error
}

// Provider constructs relations from key-value options — the createRelation
// entry point keyed by the USING name in SQL.
type Provider interface {
	CreateRelation(options map[string]string) (Relation, error)
}

// ProviderFunc adapts a function to Provider.
type ProviderFunc func(options map[string]string) (Relation, error)

// CreateRelation implements Provider.
func (f ProviderFunc) CreateRelation(options map[string]string) (Relation, error) {
	return f(options)
}

// Registry maps USING names (e.g. "csv", "json", "jdbc") to providers. A
// Context owns one; it is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	providers map[string]Provider
}

// NewRegistry returns an empty provider registry.
func NewRegistry() *Registry {
	return &Registry{providers: make(map[string]Provider)}
}

// Register adds a provider under a name, replacing any previous entry.
func (r *Registry) Register(name string, p Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[name] = p
}

// Lookup resolves a provider by name.
func (r *Registry) Lookup(name string) (Provider, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.providers[name]
	if !ok {
		return nil, fmt.Errorf("datasource: no provider registered as %q", name)
	}
	return p, nil
}

// Names lists the registered provider names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.providers))
	for n := range r.providers {
		out = append(out, n)
	}
	return out
}
