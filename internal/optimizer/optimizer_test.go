package optimizer

import (
	"strings"
	"testing"

	"repro/internal/catalyst"
	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/types"
)

func relation() *plan.LocalRelation {
	return plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
		types.StructField{Name: "b", Type: types.String, Nullable: true},
		types.StructField{Name: "c", Type: types.Double, Nullable: false},
	), []row.Row{{int32(1), "x", 1.0}})
}

func optimize(t *testing.T, p plan.LogicalPlan) plan.LogicalPlan {
	t.Helper()
	out, err := New(DefaultConfig()).Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConstantFolding(t *testing.T) {
	rel := relation()
	p := &plan.Project{
		List: []expr.Expression{
			expr.NewAlias(expr.Add(expr.Lit(int32(1)), expr.Mul(expr.Lit(int32(2)), expr.Lit(int32(3)))), "x"),
		},
		Child: rel,
	}
	out := optimize(t, p)
	lit, ok := out.(*plan.Project).List[0].(*expr.Alias).Child.(*expr.Literal)
	if !ok || lit.Value != int32(7) {
		t.Fatalf("folded = %v", out.(*plan.Project).List[0])
	}
}

func TestConstantFoldingSkipsUDFs(t *testing.T) {
	rel := relation()
	udf := &expr.ScalarUDF{
		Name: "f", Fn: func([]any) any { return int32(1) },
		In: []types.DataType{types.Int}, Ret: types.Int,
		Args: []expr.Expression{expr.Lit(int32(1))},
	}
	p := &plan.Project{List: []expr.Expression{expr.NewAlias(udf, "u")}, Child: rel}
	out := optimize(t, p)
	if _, stillUDF := out.(*plan.Project).List[0].(*expr.Alias).Child.(*expr.ScalarUDF); !stillUDF {
		t.Fatal("UDFs are opaque and must not fold")
	}
}

func TestBooleanSimplification(t *testing.T) {
	rel := relation()
	a := rel.Attrs[0]
	cond := &expr.And{
		Left:  expr.Lit(true),
		Right: &expr.Or{Left: expr.GT(a, expr.Lit(int32(1))), Right: expr.Lit(false)},
	}
	out := optimize(t, &plan.Filter{Cond: cond, Child: rel})
	f, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("got %T", out)
	}
	if _, isCmp := f.Cond.(*expr.Comparison); !isCmp {
		t.Fatalf("condition should reduce to the comparison, got %s", f.Cond)
	}
}

func TestPruneFilters(t *testing.T) {
	rel := relation()
	// Always-true filter disappears.
	out := optimize(t, &plan.Filter{Cond: expr.Lit(true), Child: rel})
	if _, isRel := out.(*plan.LocalRelation); !isRel {
		t.Fatalf("true filter should vanish, got %T", out)
	}
	// Always-false filter becomes an empty relation with the same schema.
	out = optimize(t, &plan.Filter{Cond: expr.Lit(false), Child: rel})
	empty, ok := out.(*plan.LocalRelation)
	if !ok || len(empty.Rows) != 0 || len(empty.Attrs) != 3 {
		t.Fatalf("false filter = %v", out)
	}
}

func TestNullPropagation(t *testing.T) {
	rel := relation()
	nullLit := &expr.Literal{Value: nil, Type: types.Int}
	p := &plan.Project{
		List:  []expr.Expression{expr.NewAlias(expr.Add(rel.Attrs[0], nullLit), "x")},
		Child: rel,
	}
	out := optimize(t, p)
	lit, ok := out.(*plan.Project).List[0].(*expr.Alias).Child.(*expr.Literal)
	if !ok || lit.Value != nil {
		t.Fatalf("x + NULL should fold to NULL, got %v", out.(*plan.Project).List[0])
	}
	// IS NULL on a non-nullable column folds to false; the filter becomes
	// an empty relation.
	out = optimize(t, &plan.Filter{Cond: &expr.IsNull{Child: rel.Attrs[0]}, Child: rel})
	if empty, ok := out.(*plan.LocalRelation); !ok || len(empty.Rows) != 0 {
		t.Fatalf("IS NULL on NOT NULL column should empty the relation, got:\n%s", out)
	}
}

func TestSimplifyLike(t *testing.T) {
	rel := relation()
	b := rel.Attrs[1]
	cases := []struct {
		pattern string
		want    string
	}{
		{"abc%", "startswith"},
		{"%abc", "endswith"},
		{"%abc%", "contains"},
		{"abc", "="},
	}
	for _, c := range cases {
		p := &plan.Filter{Cond: &expr.Like{Left: b, Pattern: expr.Lit(c.pattern)}, Child: rel}
		out := optimize(t, p)
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("LIKE %q should become %s:\n%s", c.pattern, c.want, out)
		}
	}
	// Underscores and interior %% stay LIKE.
	for _, pattern := range []string{"a_c", "a%b%c"} {
		p := &plan.Filter{Cond: &expr.Like{Left: b, Pattern: expr.Lit(pattern)}, Child: rel}
		out := optimize(t, p)
		if !strings.Contains(out.String(), "LIKE") {
			t.Errorf("LIKE %q must not simplify:\n%s", pattern, out)
		}
	}
}

func TestDecimalAggregates(t *testing.T) {
	dec := types.DecimalType{Precision: 5, Scale: 2}
	rel := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "amount", Type: dec, Nullable: true},
	), nil)
	agg := &plan.Aggregate{
		Aggs:  []expr.Expression{expr.NewAlias(&expr.Sum{Child: rel.Attrs[0]}, "s")},
		Child: rel,
	}
	out := optimize(t, agg)
	s := out.String()
	if !strings.Contains(s, "makedecimal") || !strings.Contains(s, "unscaled") {
		t.Fatalf("DecimalAggregates did not fire:\n%s", s)
	}
	// The output type is unchanged by the rewrite.
	if !out.Output()[0].Type.Equals(types.DecimalType{Precision: 15, Scale: 2}) {
		t.Errorf("output type = %s", out.Output()[0].Type.Name())
	}
	// Precision beyond the LONG range must NOT rewrite.
	big := types.DecimalType{Precision: 12, Scale: 2}
	rel2 := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "amount", Type: big, Nullable: true},
	), nil)
	agg2 := &plan.Aggregate{
		Aggs:  []expr.Expression{expr.NewAlias(&expr.Sum{Child: rel2.Attrs[0]}, "s")},
		Child: rel2,
	}
	if s := optimize(t, agg2).String(); strings.Contains(s, "unscaled") {
		t.Fatalf("prec+10 > 18 must not rewrite:\n%s", s)
	}
}

func TestPushPredicateThroughProject(t *testing.T) {
	rel := relation()
	a := rel.Attrs[0]
	alias := expr.NewAlias(expr.Add(a, expr.Lit(int32(1))), "a1")
	p := &plan.Filter{
		Cond: expr.GT(alias.ToAttribute(), expr.Lit(int32(10))),
		Child: &plan.Project{
			List:  []expr.Expression{alias},
			Child: rel,
		},
	}
	out := optimize(t, p)
	proj, ok := out.(*plan.Project)
	if !ok {
		t.Fatalf("expected Project on top:\n%s", out)
	}
	f, ok := proj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("filter should sit under the project:\n%s", out)
	}
	// The alias was substituted: the filter references a, not a1.
	if !plan.OutputSet(rel).ContainsAll(expr.References(f.Cond)) {
		t.Fatalf("substituted condition references: %s", f.Cond)
	}
}

func TestPushPredicateThroughJoin(t *testing.T) {
	left := relation()
	right := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "id", Type: types.Int, Nullable: false},
	), nil)
	cond := &expr.And{
		Left:  expr.GT(left.Attrs[0], expr.Lit(int32(1))), // left-only
		Right: expr.EQ(left.Attrs[0], right.Attrs[0]),     // join key
	}
	p := &plan.Filter{
		Cond:  &expr.And{Left: cond, Right: expr.LT(right.Attrs[0], expr.Lit(int32(9)))},
		Child: &plan.Join{Left: left, Right: right, Type: plan.InnerJoin},
	}
	out := optimize(t, p)
	j, ok := out.(*plan.Join)
	if !ok {
		t.Fatalf("single-side conjuncts should leave only the join (cond absorbed):\n%s", out)
	}
	if _, isFilter := j.Left.(*plan.Filter); !isFilter {
		t.Fatalf("left-side conjunct should push:\n%s", out)
	}
	if _, isFilter := j.Right.(*plan.Filter); !isFilter {
		t.Fatalf("right-side conjunct should push:\n%s", out)
	}
}

func TestPushPredicateThroughAggregate(t *testing.T) {
	rel := relation()
	a := rel.Attrs[0]
	agg := &plan.Aggregate{
		Grouping: []expr.Expression{a},
		Aggs: []expr.Expression{
			a,
			expr.NewAlias(expr.NewCountStar(), "n"),
		},
		Child: rel,
	}
	p := &plan.Filter{Cond: expr.GT(a, expr.Lit(int32(5))), Child: agg}
	out := optimize(t, p)
	// The group-key predicate lands below the aggregate.
	found := false
	catalyst.Foreach[plan.LogicalPlan](out, func(n plan.LogicalPlan) {
		if f, ok := n.(*plan.Filter); ok {
			if _, underAgg := f.Child.(*plan.LocalRelation); underAgg {
				found = true
			}
		}
	})
	if !found {
		t.Fatalf("grouping predicate should push below the aggregate:\n%s", out)
	}
}

func TestPushPredicateThroughUnion(t *testing.T) {
	a, b := relation(), relation()
	u := &plan.Union{Kids: []plan.LogicalPlan{a, b}}
	p := &plan.Filter{Cond: expr.GT(a.Attrs[0], expr.Lit(int32(1))), Child: u}
	out := optimize(t, p)
	union, ok := out.(*plan.Union)
	if !ok {
		t.Fatalf("expected union on top:\n%s", out)
	}
	for i, kid := range union.Kids {
		f, ok := kid.(*plan.Filter)
		if !ok {
			t.Fatalf("branch %d lacks pushed filter:\n%s", i, out)
		}
		// Branch 2's filter must reference branch 2's attributes.
		kidSet := plan.OutputSet(f.Child)
		if !kidSet.ContainsAll(expr.References(f.Cond)) {
			t.Fatalf("branch %d filter references foreign attrs: %s", i, f.Cond)
		}
	}
}

func TestCollapseProjects(t *testing.T) {
	rel := relation()
	a := rel.Attrs[0]
	inner := expr.NewAlias(expr.Add(a, expr.Lit(int32(1))), "a1")
	outer := expr.NewAlias(expr.Mul(inner.ToAttribute(), expr.Lit(int32(2))), "a2")
	p := &plan.Project{
		List: []expr.Expression{outer},
		Child: &plan.Project{
			List:  []expr.Expression{inner},
			Child: rel,
		},
	}
	out := optimize(t, p)
	proj, ok := out.(*plan.Project)
	if !ok || len(proj.Children()) != 1 {
		t.Fatalf("projects did not collapse:\n%s", out)
	}
	if _, isRel := proj.Child.(*plan.LocalRelation); !isRel {
		t.Fatalf("expected single project over relation:\n%s", out)
	}
	if !proj.Output()[0].Type.Equals(types.Int) || proj.Output()[0].Name != "a2" {
		t.Errorf("collapsed output = %v", proj.Output())
	}
}

func TestColumnPruningUnderAggregate(t *testing.T) {
	rel := relation()
	agg := &plan.Aggregate{
		Grouping: []expr.Expression{rel.Attrs[0]},
		Aggs: []expr.Expression{
			rel.Attrs[0],
			expr.NewAlias(expr.NewCountStar(), "n"),
		},
		Child: rel,
	}
	out := optimize(t, agg)
	proj, ok := out.(*plan.Aggregate).Child.(*plan.Project)
	if !ok {
		t.Fatalf("pruning project not inserted:\n%s", out)
	}
	if len(proj.List) != 1 {
		t.Fatalf("should keep only the grouped column: %v", proj.List)
	}
}

func TestCombineLimitsAndUnions(t *testing.T) {
	rel := relation()
	p := &plan.Limit{N: 10, Child: &plan.Limit{N: 3, Child: rel}}
	out := optimize(t, p)
	if l, ok := out.(*plan.Limit); !ok || l.N != 3 {
		t.Fatalf("limits should combine to 3:\n%s", out)
	}
	u := &plan.Union{Kids: []plan.LogicalPlan{
		relation(),
		&plan.Union{Kids: []plan.LogicalPlan{relation(), relation()}},
	}}
	out = optimize(t, u)
	if got := len(out.(*plan.Union).Kids); got != 3 {
		t.Fatalf("nested unions should flatten to 3 kids, got %d", got)
	}
}

// fakeSource implements PrunedFilteredScan + ExactFilterScan for pushdown
// tests.
type fakeSource struct {
	schema types.StructType
	exact  bool
}

func (f *fakeSource) Schema() types.StructType { return f.schema }
func (f *fakeSource) ScanPrunedFiltered(cols []string, filters []datasource.Filter) (datasource.Scan, error) {
	return datasource.Scan{NumPartitions: 1, Partition: func(int) []row.Row { return nil }}, nil
}
func (f *fakeSource) HandledFilters(filters []datasource.Filter) []datasource.Filter {
	if f.exact {
		return filters
	}
	return nil
}

func sourcePlan(exact bool) *plan.DataSourceRelation {
	schema := types.StructType{}.
		Add("x", types.Int, false).
		Add("y", types.String, true).
		Add("z", types.Double, false)
	attrs := []*expr.AttributeReference{
		expr.NewAttribute("x", types.Int, false),
		expr.NewAttribute("y", types.String, true),
		expr.NewAttribute("z", types.Double, false),
	}
	return &plan.DataSourceRelation{
		Name:  "fake",
		Rel:   &fakeSource{schema: schema, exact: exact},
		Attrs: attrs,
	}
}

func TestSourceColumnPruning(t *testing.T) {
	src := sourcePlan(true)
	p := &plan.Project{List: []expr.Expression{src.Attrs[0]}, Child: src}
	out := optimize(t, p)
	pruned := out.(*plan.Project).Child.(*plan.DataSourceRelation)
	if len(pruned.PushedColumns) != 1 || pruned.PushedColumns[0] != "x" {
		t.Fatalf("pushed columns = %v", pruned.PushedColumns)
	}
	if len(pruned.Attrs) != 1 {
		t.Fatalf("pruned attrs = %v", pruned.Attrs)
	}
}

func TestSourceFilterPushdownExact(t *testing.T) {
	src := sourcePlan(true)
	p := &plan.Filter{
		Cond:  expr.GT(src.Attrs[0], expr.Lit(int32(5))),
		Child: src,
	}
	out := optimize(t, p)
	// Exact source: the residual filter disappears entirely.
	rel, ok := out.(*plan.DataSourceRelation)
	if !ok {
		t.Fatalf("residual filter should be dropped for exact sources:\n%s", out)
	}
	if len(rel.PushedFilters) != 1 {
		t.Fatalf("pushed = %v", rel.PushedFilters)
	}
	if rel.PushedFilters[0].String() != "x > 5" {
		t.Errorf("pushed filter = %s", rel.PushedFilters[0])
	}
}

func TestSourceFilterPushdownAdvisory(t *testing.T) {
	src := sourcePlan(false) // advisory: filters may return false positives
	p := &plan.Filter{
		Cond:  expr.GT(src.Attrs[0], expr.Lit(int32(5))),
		Child: src,
	}
	out := optimize(t, p)
	f, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("advisory source must keep the residual filter:\n%s", out)
	}
	rel := f.Child.(*plan.DataSourceRelation)
	if len(rel.PushedFilters) != 1 {
		t.Fatalf("filter should still be pushed (advisory): %v", rel.PushedFilters)
	}
}

func TestUntranslatableConjunctsStayAbove(t *testing.T) {
	src := sourcePlan(true)
	p := &plan.Filter{
		Cond: &expr.And{
			Left:  expr.GT(src.Attrs[0], expr.Lit(int32(5))),
			Right: expr.EQ(src.Attrs[0], src.Attrs[0]), // attr=attr: untranslatable
		},
		Child: src,
	}
	out := optimize(t, p)
	f, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("untranslatable conjunct must remain:\n%s", out)
	}
	if strings.Contains(f.Cond.String(), "> 5") {
		t.Errorf("translated conjunct should be gone from the residual: %s", f.Cond)
	}
}

func TestTranslateFilterShapes(t *testing.T) {
	x := expr.NewAttribute("x", types.Int, false)
	cases := []struct {
		e    expr.Expression
		want string
	}{
		{expr.EQ(x, expr.Lit(int32(3))), "x = 3"},
		{expr.GT(x, expr.Lit(int32(3))), "x > 3"},
		{expr.LT(expr.Lit(int32(3)), x), "x > 3"}, // flipped
		{expr.GE(x, expr.Lit(int32(3))), "x >= 3"},
		{&expr.In{Value: x, List: []expr.Expression{expr.Lit(int32(1)), expr.Lit(int32(2))}}, "x IN (1, 2)"},
		{&expr.IsNotNull{Child: x}, "x IS NOT NULL"},
	}
	for _, c := range cases {
		f, ok := TranslateFilter(c.e)
		if !ok || f.String() != c.want {
			t.Errorf("TranslateFilter(%s) = %v, want %q", c.e, f, c.want)
		}
	}
	// Untranslatable shapes.
	for _, e := range []expr.Expression{
		expr.NEQ(x, expr.Lit(int32(3))),
		expr.EQ(x, x),
		expr.GT(expr.Add(x, expr.Lit(int32(1))), expr.Lit(int32(3))),
	} {
		if _, ok := TranslateFilter(e); ok {
			t.Errorf("TranslateFilter(%s) should fail", e)
		}
	}
}

func TestSharkConfigSkipsSourcePushdown(t *testing.T) {
	src := sourcePlan(true)
	p := &plan.Filter{Cond: expr.GT(src.Attrs[0], expr.Lit(int32(5))), Child: src}
	cfg := DefaultConfig()
	cfg.SourcePushdown = false
	out, err := New(cfg).Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("filter must remain:\n%s", out)
	}
	if rel := f.Child.(*plan.DataSourceRelation); rel.PushedFilters != nil {
		t.Error("no filters should push with pushdown disabled")
	}
}
