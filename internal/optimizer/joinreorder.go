package optimizer

import (
	"repro/internal/expr"
	"repro/internal/plan"
)

// reorderJoins is the cost-based join-ordering rule (paper §4.3.3 uses
// cost only for join-algorithm selection; this extends it with the
// classic greedy ordering over collected statistics). It flattens a chain
// of inner/cross joins into its base relations and join conjuncts, then
// rebuilds a left-deep tree greedily: start from the pair with the
// smallest estimated join output, then repeatedly attach the relation
// that keeps the intermediate result smallest, preferring connected
// relations (ones with an applicable join predicate) so cartesian
// products are a last resort. Ties keep the original order, so plans
// without statistics come out unchanged.
func reorderJoins(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformDown(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		j, ok := n.(*plan.Join)
		if !ok || !flattenable(j) || !j.Resolved() {
			return nil, false
		}
		items, conjuncts := flattenJoinChain(j)
		if len(items) < 3 {
			return nil, false
		}
		for _, c := range conjuncts {
			if !expr.IsDeterministic(c) {
				return nil, false
			}
		}
		reordered, order := greedyOrder(items, conjuncts)
		// An identity ordering means statistics gave no reason to move
		// anything: keep the original tree (including any column-pruning
		// projects the flattening looked through).
		if reordered == nil || isIdentity(order) || sameShape(j, reordered) {
			return nil, false
		}
		return restoreOutput(j.Output(), reordered), true
	})
}

// flattenable reports whether a join node may be merged into a reorderable
// chain: inner and cross joins commute freely.
func flattenable(j *plan.Join) bool {
	return j.Type == plan.InnerJoin || j.Type == plan.CrossJoin
}

// flattenJoinChain collects the maximal inner-join chain rooted at j: the
// non-inner-join subtrees become items, and every join condition splits
// into conjuncts. Attribute-only projections over chain joins (inserted by
// column pruning between the joins) are transparent: the reordered tree
// re-prunes at the top via restoreOutput.
func flattenJoinChain(j *plan.Join) (items []plan.LogicalPlan, conjuncts []expr.Expression) {
	var walk func(p plan.LogicalPlan)
	walk = func(p plan.LogicalPlan) {
		switch n := p.(type) {
		case *plan.Join:
			if flattenable(n) {
				walk(n.Left)
				walk(n.Right)
				if n.Cond != nil {
					conjuncts = append(conjuncts, expr.SplitConjuncts(n.Cond)...)
				}
				return
			}
		case *plan.Project:
			if attrsOnly(n.List) {
				if jj, ok := n.Child.(*plan.Join); ok && flattenable(jj) {
					walk(jj)
					return
				}
			}
		}
		items = append(items, p)
	}
	walk(j)
	return items, conjuncts
}

// attrsOnly reports whether a projection list is pure column selection.
func attrsOnly(list []expr.Expression) bool {
	for _, e := range list {
		if _, ok := e.(*expr.AttributeReference); !ok {
			return false
		}
	}
	return true
}

// isIdentity reports whether the attachment order is 0,1,2,...
func isIdentity(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

// greedyOrder builds a left-deep inner-join tree over items, attaching
// each conjunct at the first join whose inputs cover its references. It
// also returns the item attachment order, so the caller can detect the
// identity ordering (ties keep original positions, so plans without
// statistics always come out identity).
func greedyOrder(items []plan.LogicalPlan, conjuncts []expr.Expression) (plan.LogicalPlan, []int) {
	used := make([]bool, len(conjuncts))
	outSets := make([]expr.AttributeSet, len(items))
	for i, it := range items {
		outSets[i] = plan.OutputSet(it)
	}

	covered := func(c expr.Expression, avail expr.AttributeSet) bool {
		for id := range expr.References(c) {
			if !avail.Contains(id) {
				return false
			}
		}
		return true
	}
	// applicable selects (without consuming) the conjuncts that become
	// evaluable when the available attribute set is avail.
	applicable := func(avail expr.AttributeSet) []int {
		var idx []int
		for ci, c := range conjuncts {
			if !used[ci] && covered(c, avail) {
				idx = append(idx, ci)
			}
		}
		return idx
	}
	unionSets := func(a, b expr.AttributeSet) expr.AttributeSet {
		u := make(expr.AttributeSet, len(a)+len(b))
		for id := range a {
			u.Add(id)
		}
		for id := range b {
			u.Add(id)
		}
		return u
	}
	buildJoin := func(l, r plan.LogicalPlan, condIdx []int) *plan.Join {
		var cond expr.Expression
		typ := plan.CrossJoin
		for _, ci := range condIdx {
			if cond == nil {
				cond = conjuncts[ci]
			} else {
				cond = &expr.And{Left: cond, Right: conjuncts[ci]}
			}
		}
		if cond != nil {
			typ = plan.InnerJoin
		}
		return &plan.Join{Left: l, Right: r, Type: typ, Cond: cond}
	}

	remaining := make([]int, len(items))
	for i := range items {
		remaining[i] = i
	}

	// Seed: the pair with the smallest estimated join output, preferring
	// connected pairs; ties keep the earliest original positions.
	type seed struct {
		li, ri    int
		size      int64
		connected bool
	}
	var best *seed
	for a := 0; a < len(items); a++ {
		for b := a + 1; b < len(items); b++ {
			avail := unionSets(outSets[a], outSets[b])
			condIdx := applicable(avail)
			cand := buildJoin(items[a], items[b], condIdx)
			sz := plan.Stats(cand).SizeInBytes
			s := seed{li: a, ri: b, size: sz, connected: len(condIdx) > 0}
			if best == nil ||
				(s.connected && !best.connected) ||
				(s.connected == best.connected && s.size < best.size) {
				best = &s
			}
		}
	}

	current := items[best.li]
	currentSet := outSets[best.li]
	attach := func(idx int) {
		avail := unionSets(currentSet, outSets[idx])
		condIdx := applicable(avail)
		current = buildJoin(current, items[idx], condIdx)
		currentSet = avail
		for _, ci := range condIdx {
			used[ci] = true
		}
	}
	// The seed pair joins in original relative order (li < ri), so
	// statistics-free plans reproduce the input tree.
	attach(best.ri)
	order := []int{best.li, best.ri}
	taken := map[int]bool{best.li: true, best.ri: true}

	for len(taken) < len(items) {
		type cand struct {
			idx       int
			size      int64
			connected bool
		}
		var bestC *cand
		for _, i := range remaining {
			if taken[i] {
				continue
			}
			avail := unionSets(currentSet, outSets[i])
			condIdx := applicable(avail)
			cj := buildJoin(current, items[i], condIdx)
			sz := plan.Stats(cj).SizeInBytes
			c := cand{idx: i, size: sz, connected: len(condIdx) > 0}
			if bestC == nil ||
				(c.connected && !bestC.connected) ||
				(c.connected == bestC.connected && c.size < bestC.size) {
				bestC = &c
			}
		}
		attach(bestC.idx)
		order = append(order, bestC.idx)
		taken[bestC.idx] = true
	}

	// Any conjunct still unplaced (none should remain, since the final
	// available set covers every item) becomes a filter on top.
	for ci, c := range conjuncts {
		if !used[ci] {
			current = &plan.Filter{Cond: c, Child: current}
			used[ci] = true
		}
	}
	return current, order
}

// sameShape reports whether two join trees are structurally identical —
// used to leave the plan untouched when greedy ordering reproduces it.
func sameShape(a, b plan.LogicalPlan) bool {
	return a.String() == b.String()
}

// restoreOutput wraps a reordered join so its output attribute order (and
// therefore result schema) matches the original plan exactly.
func restoreOutput(want []*expr.AttributeReference, p plan.LogicalPlan) plan.LogicalPlan {
	got := p.Output()
	if len(got) == len(want) {
		same := true
		for i := range got {
			if got[i].ID_ != want[i].ID_ {
				same = false
				break
			}
		}
		if same {
			return p
		}
	}
	list := make([]expr.Expression, len(want))
	for i, a := range want {
		list[i] = a
	}
	return &plan.Project{List: list, Child: p}
}
