// Package optimizer implements Catalyst's rule-based logical optimization
// (paper §4.3.2): constant folding, null propagation, Boolean
// simplification, LIKE simplification, predicate pushdown (through
// projects, joins, aggregates, unions and into data sources), projection
// pruning, and the DecimalAggregates rewrite the paper reproduces in code.
// Rules run in batches to fixed point via the catalyst RuleExecutor.
package optimizer

import (
	"repro/internal/catalyst"
	"repro/internal/plan"
)

// Config toggles optimization groups — the knobs the benchmark harness uses
// to build the "Shark mode" baseline (logical optimizations off).
type Config struct {
	// ConstantFolding et al. (pure expression rewrites).
	ExpressionOptimization bool
	// Predicate pushdown / projection pruning across operators.
	PlanOptimization bool
	// Pushdown of projections and filters into data sources (§4.4.1 /
	// §5.3).
	SourcePushdown bool
	// The DecimalAggregates rule (§4.3.2).
	DecimalAggregates bool
	// JoinReorder enables cost-based reordering of inner-join chains by
	// estimated output size (requires collected statistics to change
	// anything; plans without stats come out unchanged).
	JoinReorder bool
}

// DefaultConfig enables everything.
func DefaultConfig() Config {
	return Config{
		ExpressionOptimization: true,
		PlanOptimization:       true,
		SourcePushdown:         true,
		DecimalAggregates:      true,
		JoinReorder:            true,
	}
}

// Optimizer rewrites resolved logical plans.
type Optimizer struct {
	cfg  Config
	exec *catalyst.RuleExecutor[plan.LogicalPlan]
}

// New builds an optimizer with the given configuration.
func New(cfg Config) *Optimizer {
	var batches []catalyst.Batch[plan.LogicalPlan]

	// SubqueryAliases exist only to scope name resolution; drop them first
	// so later rules see the raw operators (IDs keep references precise).
	batches = append(batches, catalyst.Batch[plan.LogicalPlan]{
		Name: "Finish Analysis",
		Once: true,
		Rules: []catalyst.Rule[plan.LogicalPlan]{
			{Name: "EliminateSubqueryAliases", Apply: eliminateSubqueryAliases},
		},
	})

	var ops []catalyst.Rule[plan.LogicalPlan]
	if cfg.ExpressionOptimization {
		ops = append(ops,
			catalyst.Rule[plan.LogicalPlan]{Name: "ConstantFolding", Apply: constantFolding},
			catalyst.Rule[plan.LogicalPlan]{Name: "NullPropagation", Apply: nullPropagation},
			catalyst.Rule[plan.LogicalPlan]{Name: "BooleanSimplification", Apply: booleanSimplification},
			catalyst.Rule[plan.LogicalPlan]{Name: "SimplifyLike", Apply: simplifyLike},
			catalyst.Rule[plan.LogicalPlan]{Name: "SimplifyCasts", Apply: simplifyCasts},
		)
	}
	if cfg.DecimalAggregates {
		ops = append(ops,
			catalyst.Rule[plan.LogicalPlan]{Name: "DecimalAggregates", Apply: decimalAggregates})
	}
	if cfg.PlanOptimization {
		ops = append(ops,
			catalyst.Rule[plan.LogicalPlan]{Name: "CombineFilters", Apply: combineFilters},
			catalyst.Rule[plan.LogicalPlan]{Name: "PushPredicateThroughProject", Apply: pushPredicateThroughProject},
			catalyst.Rule[plan.LogicalPlan]{Name: "PushPredicateThroughJoin", Apply: pushPredicateThroughJoin},
			catalyst.Rule[plan.LogicalPlan]{Name: "PushPredicateThroughAggregate", Apply: pushPredicateThroughAggregate},
			catalyst.Rule[plan.LogicalPlan]{Name: "PushPredicateThroughUnion", Apply: pushPredicateThroughUnion},
			catalyst.Rule[plan.LogicalPlan]{Name: "PruneFilters", Apply: pruneFilters},
			catalyst.Rule[plan.LogicalPlan]{Name: "CollapseProjects", Apply: collapseProjects},
			catalyst.Rule[plan.LogicalPlan]{Name: "ColumnPruning", Apply: columnPruning},
			catalyst.Rule[plan.LogicalPlan]{Name: "RemoveNoopProject", Apply: removeNoopProject},
			catalyst.Rule[plan.LogicalPlan]{Name: "CombineLimits", Apply: combineLimits},
			catalyst.Rule[plan.LogicalPlan]{Name: "CombineUnions", Apply: combineUnions},
		)
	}
	if len(ops) > 0 {
		batches = append(batches, catalyst.Batch[plan.LogicalPlan]{
			Name:  "Operator Optimization",
			Rules: ops,
		})
	}
	// Join reordering runs once, after predicate pushdown has moved
	// single-relation filters onto the base relations (so item estimates
	// reflect them) and before source pushdown rewrites the leaves.
	if cfg.JoinReorder {
		batches = append(batches, catalyst.Batch[plan.LogicalPlan]{
			Name: "Join Reorder",
			Once: true,
			Rules: []catalyst.Rule[plan.LogicalPlan]{
				{Name: "ReorderJoins", Apply: reorderJoins},
			},
		})
	}
	if cfg.SourcePushdown {
		batches = append(batches, catalyst.Batch[plan.LogicalPlan]{
			Name: "Source Pushdown",
			Rules: []catalyst.Rule[plan.LogicalPlan]{
				{Name: "PruneSourceColumns", Apply: pruneSourceColumns},
				{Name: "PushFiltersIntoSource", Apply: pushFiltersIntoSource},
				{Name: "PruneInMemoryColumns", Apply: pruneInMemoryColumns},
			},
		})
	}
	return &Optimizer{cfg: cfg, exec: &catalyst.RuleExecutor[plan.LogicalPlan]{Batches: batches}}
}

// Optimize rewrites the plan.
func (o *Optimizer) Optimize(p plan.LogicalPlan) (plan.LogicalPlan, error) {
	return o.exec.Execute(p)
}

func eliminateSubqueryAliases(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		if sq, ok := n.(*plan.SubqueryAlias); ok {
			return sq.Child, true
		}
		return nil, false
	})
}
