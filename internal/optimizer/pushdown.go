package optimizer

import (
	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/plan"
)

// Plan-structure rules: predicate pushdown, projection pruning, operator
// combination (paper §4.3.2 "predicate pushdown, projection pruning").

// combineFilters merges adjacent filters into one conjunction.
func combineFilters(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		outer, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		inner, ok := outer.Child.(*plan.Filter)
		if !ok {
			return nil, false
		}
		return &plan.Filter{
			Cond:  &expr.And{Left: inner.Cond, Right: outer.Cond},
			Child: inner.Child,
		}, true
	})
}

// pushPredicateThroughProject moves a filter below a projection,
// substituting aliases with their defining expressions.
func pushPredicateThroughProject(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		proj, ok := f.Child.(*plan.Project)
		if !ok || !proj.Resolved() || !f.Cond.Resolved() {
			return nil, false
		}
		aliasMap := buildAliasMap(proj.List)
		cond := substituteAliases(f.Cond, aliasMap)
		if !plan.OutputSet(proj.Child).ContainsAll(expr.References(cond)) {
			return nil, false
		}
		return &plan.Project{List: proj.List, Child: &plan.Filter{Cond: cond, Child: proj.Child}}, true
	})
}

func buildAliasMap(list []expr.Expression) map[expr.ID]expr.Expression {
	m := make(map[expr.ID]expr.Expression, len(list))
	for _, e := range list {
		if a, ok := e.(*expr.Alias); ok {
			m[a.ID_] = a.Child
		}
	}
	return m
}

func substituteAliases(e expr.Expression, aliasMap map[expr.ID]expr.Expression) expr.Expression {
	if len(aliasMap) == 0 {
		return e
	}
	return expr.TransformUp(e, func(x expr.Expression) (expr.Expression, bool) {
		attr, ok := x.(*expr.AttributeReference)
		if !ok {
			return nil, false
		}
		if def, hit := aliasMap[attr.ID_]; hit {
			return def, true
		}
		return nil, false
	})
}

// pushPredicateThroughJoin pushes single-side conjuncts of a filter (and of
// an inner join's own condition) into the join inputs.
func pushPredicateThroughJoin(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		// Pattern 1: Filter over inner/cross join. Single-side conjuncts
		// push into the inputs; cross-side conjuncts merge into the join
		// condition (so WHERE-based equi-joins become hash-joinable).
		if f, ok := n.(*plan.Filter); ok {
			j, ok := f.Child.(*plan.Join)
			if !ok || (j.Type != plan.InnerJoin && j.Type != plan.CrossJoin) || !f.Cond.Resolved() {
				return nil, false
			}
			left, right, rest := splitBySide(expr.SplitConjuncts(f.Cond), j)
			if len(left) == 0 && len(right) == 0 && len(rest) == 0 {
				return nil, false
			}
			cond := j.Cond
			t := j.Type
			if len(rest) > 0 {
				conjuncts := rest
				if cond != nil {
					conjuncts = append(expr.SplitConjuncts(cond), rest...)
				}
				cond = expr.JoinConjuncts(conjuncts)
				t = plan.InnerJoin
			}
			return &plan.Join{
				Left:  filterIf(left, j.Left),
				Right: filterIf(right, j.Right),
				Type:  t,
				Cond:  cond,
			}, true
		}
		// Pattern 2: inner join whose condition has single-side conjuncts.
		if j, ok := n.(*plan.Join); ok {
			if j.Type != plan.InnerJoin || j.Cond == nil || !j.Cond.Resolved() {
				return nil, false
			}
			left, right, rest := splitBySide(expr.SplitConjuncts(j.Cond), j)
			if len(left) == 0 && len(right) == 0 {
				return nil, false
			}
			t := j.Type
			if len(rest) == 0 {
				t = plan.CrossJoin
			}
			return &plan.Join{
				Left:  filterIf(left, j.Left),
				Right: filterIf(right, j.Right),
				Type:  t,
				Cond:  expr.JoinConjuncts(rest),
			}, true
		}
		return nil, false
	})
}

func splitBySide(conjuncts []expr.Expression, j *plan.Join) (left, right, rest []expr.Expression) {
	leftSet := plan.OutputSet(j.Left)
	rightSet := plan.OutputSet(j.Right)
	for _, c := range conjuncts {
		refs := expr.References(c)
		switch {
		case len(refs) > 0 && leftSet.ContainsAll(refs) && expr.IsDeterministic(c):
			left = append(left, c)
		case len(refs) > 0 && rightSet.ContainsAll(refs) && expr.IsDeterministic(c):
			right = append(right, c)
		default:
			rest = append(rest, c)
		}
	}
	return left, right, rest
}

func filterIf(conjuncts []expr.Expression, child plan.LogicalPlan) plan.LogicalPlan {
	if len(conjuncts) == 0 {
		return child
	}
	return &plan.Filter{Cond: expr.JoinConjuncts(conjuncts), Child: child}
}

// pushPredicateThroughAggregate pushes conjuncts that reference only
// group-by columns below the aggregate.
func pushPredicateThroughAggregate(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		agg, ok := f.Child.(*plan.Aggregate)
		if !ok || !agg.Resolved() || !f.Cond.Resolved() {
			return nil, false
		}
		// Output attrs that are pure pass-throughs of grouping attributes.
		passthrough := make(map[expr.ID]expr.Expression)
		for _, e := range agg.Aggs {
			switch x := e.(type) {
			case *expr.AttributeReference:
				if isGroupingAttr(x, agg.Grouping) {
					passthrough[x.ID_] = x
				}
			case *expr.Alias:
				if inner, ok := x.Child.(*expr.AttributeReference); ok && isGroupingAttr(inner, agg.Grouping) {
					passthrough[x.ID_] = inner
				}
			}
		}
		childSet := plan.OutputSet(agg.Child)
		var pushed, kept []expr.Expression
		for _, c := range expr.SplitConjuncts(f.Cond) {
			sub := substituteAliases(c, passthrough)
			if childSet.ContainsAll(expr.References(sub)) && expr.IsDeterministic(sub) && !expr.ContainsAggregate(sub) {
				pushed = append(pushed, sub)
			} else {
				kept = append(kept, c)
			}
		}
		if len(pushed) == 0 {
			return nil, false
		}
		newAgg := &plan.Aggregate{
			Grouping: agg.Grouping,
			Aggs:     agg.Aggs,
			Child:    &plan.Filter{Cond: expr.JoinConjuncts(pushed), Child: agg.Child},
		}
		if len(kept) == 0 {
			return newAgg, true
		}
		return &plan.Filter{Cond: expr.JoinConjuncts(kept), Child: newAgg}, true
	})
}

func isGroupingAttr(a *expr.AttributeReference, grouping []expr.Expression) bool {
	for _, g := range grouping {
		if ga, ok := g.(*expr.AttributeReference); ok && ga.ID_ == a.ID_ {
			return true
		}
	}
	return false
}

// pushPredicateThroughUnion copies the filter into every union branch,
// remapping attributes positionally.
func pushPredicateThroughUnion(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		u, ok := f.Child.(*plan.Union)
		if !ok || !u.Resolved() || !f.Cond.Resolved() {
			return nil, false
		}
		out := u.Output()
		kids := make([]plan.LogicalPlan, len(u.Kids))
		for i, kid := range u.Kids {
			kidOut := kid.Output()
			remap := make(map[expr.ID]expr.Expression, len(out))
			for j, a := range out {
				remap[a.ID_] = kidOut[j]
			}
			kids[i] = &plan.Filter{Cond: substituteAliases(f.Cond, remap), Child: kid}
		}
		return &plan.Union{Kids: kids}, true
	})
}

// pruneFilters drops always-true filters and replaces always-false ones
// with an empty relation.
func pruneFilters(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		if isTrueLit(f.Cond) {
			return f.Child, true
		}
		if isFalseLit(f.Cond) || isNullLit(f.Cond) {
			return plan.NewLocalRelationFromAttrs(f.Output(), nil), true
		}
		return nil, false
	})
}

// collapseProjects merges adjacent projections by substituting the inner
// project's aliases into the outer list.
func collapseProjects(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		outer, ok := n.(*plan.Project)
		if !ok {
			return nil, false
		}
		inner, ok := outer.Child.(*plan.Project)
		if !ok || !inner.Resolved() || !outer.Resolved() {
			return nil, false
		}
		aliasMap := buildAliasMap(inner.List)
		newList := make([]expr.Expression, len(outer.List))
		for i, e := range outer.List {
			sub := substituteAliases(e, aliasMap)
			// Keep the outer column's name and identity when the outer
			// item was a bare attribute that now points at an expression.
			if attr, wasAttr := e.(*expr.AttributeReference); wasAttr {
				if any(sub) != any(e) {
					sub = &expr.Alias{Child: sub, Name: attr.Name, ID_: attr.ID_}
				}
			}
			newList[i] = sub
		}
		return &plan.Project{List: newList, Child: inner.Child}, true
	})
}

// columnPruning inserts narrow projections below aggregates and around join
// inputs so only referenced columns flow up (paper: "projection pruning").
func columnPruning(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		switch node := n.(type) {
		case *plan.Aggregate:
			if !node.Resolved() {
				return nil, false
			}
			if _, isProj := node.Child.(*plan.Project); isProj {
				return nil, false
			}
			needed := expr.ReferencesAll(node.Expressions())
			pruned, changed := pruneTo(node.Child, needed)
			if !changed {
				return nil, false
			}
			return &plan.Aggregate{Grouping: node.Grouping, Aggs: node.Aggs, Child: pruned}, true

		case *plan.Project:
			j, isJoin := node.Child.(*plan.Join)
			if !isJoin || !node.Resolved() {
				return nil, false
			}
			needed := expr.ReferencesAll(node.List)
			if j.Cond != nil {
				needed = needed.Union(expr.References(j.Cond))
			}
			left, lchanged := pruneTo(j.Left, needed)
			right, rchanged := pruneTo(j.Right, needed)
			if !lchanged && !rchanged {
				return nil, false
			}
			return &plan.Project{
				List:  node.List,
				Child: &plan.Join{Left: left, Right: right, Type: j.Type, Cond: j.Cond},
			}, true
		}
		return nil, false
	})
}

// pruneTo wraps child in an attribute-only Project keeping the needed
// columns, if that is strictly narrower than the child's output.
func pruneTo(child plan.LogicalPlan, needed expr.AttributeSet) (plan.LogicalPlan, bool) {
	if _, isProj := child.(*plan.Project); isProj {
		return child, false
	}
	out := child.Output()
	var keep []expr.Expression
	for _, a := range out {
		if needed.Contains(a.ID_) {
			keep = append(keep, a)
		}
	}
	if len(keep) == len(out) || len(keep) == 0 {
		return child, false
	}
	return &plan.Project{List: keep, Child: child}, true
}

// removeNoopProject drops projections that pass through exactly their
// child's output.
func removeNoopProject(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		proj, ok := n.(*plan.Project)
		if !ok || !proj.Resolved() {
			return nil, false
		}
		childOut := proj.Child.Output()
		if len(proj.List) != len(childOut) {
			return nil, false
		}
		for i, e := range proj.List {
			attr, isAttr := e.(*expr.AttributeReference)
			if !isAttr || attr.ID_ != childOut[i].ID_ {
				return nil, false
			}
		}
		return proj.Child, true
	})
}

// combineLimits merges stacked limits and pushes limits below projections.
func combineLimits(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		outer, ok := n.(*plan.Limit)
		if !ok {
			return nil, false
		}
		switch child := outer.Child.(type) {
		case *plan.Limit:
			return &plan.Limit{N: min(outer.N, child.N), Child: child.Child}, true
		case *plan.Project:
			if _, alreadyLimited := child.Child.(*plan.Limit); alreadyLimited {
				return nil, false
			}
			return &plan.Project{
				List:  child.List,
				Child: &plan.Limit{N: outer.N, Child: child.Child},
			}, true
		}
		return nil, false
	})
}

// combineUnions flattens nested unions.
func combineUnions(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		u, ok := n.(*plan.Union)
		if !ok {
			return nil, false
		}
		flat := make([]plan.LogicalPlan, 0, len(u.Kids))
		changed := false
		for _, k := range u.Kids {
			if inner, isUnion := k.(*plan.Union); isUnion {
				flat = append(flat, inner.Kids...)
				changed = true
			} else {
				flat = append(flat, k)
			}
		}
		if !changed {
			return nil, false
		}
		return &plan.Union{Kids: flat}, true
	})
}

// ---------------------------------------------------------------------------
// Pushdown into data sources (paper §4.4.1, §5.3)

// scanSupportsPruning reports whether the relation accepts column lists.
func scanSupportsPruning(rel datasource.Relation) bool {
	switch rel.(type) {
	case datasource.PrunedScan, datasource.PrunedFilteredScan, datasource.CatalystScan:
		return true
	}
	return false
}

// scanSupportsFilters reports whether the relation accepts pushed filters.
func scanSupportsFilters(rel datasource.Relation) bool {
	switch rel.(type) {
	case datasource.PrunedFilteredScan, datasource.CatalystScan:
		return true
	}
	return false
}

// pruneSourceColumns pushes projection pruning into data source relations:
// Project [needed] over (optional Filter over) Relation.
func pruneSourceColumns(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		proj, ok := n.(*plan.Project)
		if !ok || !proj.Resolved() {
			return nil, false
		}
		needed := expr.ReferencesAll(proj.List)
		switch child := proj.Child.(type) {
		case *plan.DataSourceRelation:
			rel, changed := pruneRelation(child, needed)
			if !changed {
				return nil, false
			}
			return &plan.Project{List: proj.List, Child: rel}, true
		case *plan.Filter:
			src, isSrc := child.Child.(*plan.DataSourceRelation)
			if !isSrc || !child.Cond.Resolved() {
				return nil, false
			}
			rel, changed := pruneRelation(src, needed.Union(expr.References(child.Cond)))
			if !changed {
				return nil, false
			}
			return &plan.Project{
				List:  proj.List,
				Child: &plan.Filter{Cond: child.Cond, Child: rel},
			}, true
		}
		return nil, false
	})
}

func pruneRelation(src *plan.DataSourceRelation, needed expr.AttributeSet) (*plan.DataSourceRelation, bool) {
	if src.PushedColumns != nil || !scanSupportsPruning(src.Rel) {
		return src, false
	}
	var attrs []*expr.AttributeReference
	var cols []string
	for _, a := range src.Attrs {
		if needed.Contains(a.ID_) {
			attrs = append(attrs, a)
			cols = append(cols, a.Name)
		}
	}
	if len(attrs) == len(src.Attrs) || len(attrs) == 0 {
		return src, false
	}
	c := *src
	c.Attrs = attrs
	c.PushedColumns = cols
	return &c, true
}

// pushFiltersIntoSource translates filter conjuncts into the simple Filter
// algebra and hands them to PrunedFilteredScan sources. Translated filters
// remain in the plan (they are advisory) unless the source reports exact
// handling via ExactFilterScan.
func pushFiltersIntoSource(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok || !f.Cond.Resolved() {
			return nil, false
		}
		src, ok := f.Child.(*plan.DataSourceRelation)
		if !ok || !scanSupportsFilters(src.Rel) {
			return nil, false
		}
		// CatalystScan sources receive the complete expression trees
		// (paper: "a CatalystScan interface is given a complete sequence
		// of Catalyst expression trees to use in predicate pushdown,
		// though they are again advisory").
		if _, isCatalyst := src.Rel.(datasource.CatalystScan); isCatalyst {
			if src.PushedPredicates != nil {
				return nil, false
			}
			c := *src
			c.PushedPredicates = expr.SplitConjuncts(f.Cond)
			// Advisory: the residual filter always remains.
			return &plan.Filter{Cond: f.Cond, Child: &c}, true
		}
		if src.PushedFilters != nil {
			return nil, false
		}
		conjuncts := expr.SplitConjuncts(f.Cond)
		var pushed []datasource.Filter
		pushedIdx := make([]int, 0, len(conjuncts))
		for i, c := range conjuncts {
			if df, ok := TranslateFilter(c); ok {
				pushed = append(pushed, df)
				pushedIdx = append(pushedIdx, i)
			}
		}
		if len(pushed) == 0 {
			return nil, false
		}
		// Exact sources let us drop handled conjuncts from the residual.
		dropped := make(map[int]bool)
		if exact, isExact := src.Rel.(datasource.ExactFilterScan); isExact {
			handled := exact.HandledFilters(pushed)
			handledSet := make(map[string]bool, len(handled))
			for _, h := range handled {
				handledSet[h.String()] = true
			}
			for k, df := range pushed {
				if handledSet[df.String()] {
					dropped[pushedIdx[k]] = true
				}
			}
		}
		var residual []expr.Expression
		for i, c := range conjuncts {
			if !dropped[i] {
				residual = append(residual, c)
			}
		}
		c := *src
		c.PushedFilters = pushed
		var out plan.LogicalPlan = &c
		if len(residual) > 0 {
			out = &plan.Filter{Cond: expr.JoinConjuncts(residual), Child: out}
		}
		return out, true
	})
}

// TranslateFilter converts a Catalyst predicate on a single attribute and
// constants into the data source Filter algebra; ok is false for shapes the
// algebra cannot express.
func TranslateFilter(e expr.Expression) (datasource.Filter, bool) {
	switch x := e.(type) {
	case *expr.Comparison:
		attr, lit, flipped := attrLit(x.Left, x.Right)
		if attr == nil || lit == nil || lit.Value == nil {
			return nil, false
		}
		op := x.Op
		if flipped {
			op = flipCmp(op)
		}
		switch op {
		case expr.OpEQ:
			return datasource.EqualTo{Col: attr.Name, Value: lit.Value}, true
		case expr.OpGT:
			return datasource.GreaterThan{Col: attr.Name, Value: lit.Value}, true
		case expr.OpGE:
			return datasource.GreaterOrEqual{Col: attr.Name, Value: lit.Value}, true
		case expr.OpLT:
			return datasource.LessThan{Col: attr.Name, Value: lit.Value}, true
		case expr.OpLE:
			return datasource.LessOrEqual{Col: attr.Name, Value: lit.Value}, true
		}
	case *expr.In:
		attr, ok := x.Value.(*expr.AttributeReference)
		if !ok {
			return nil, false
		}
		vals := make([]any, 0, len(x.List))
		for _, item := range x.List {
			lit, isLit := item.(*expr.Literal)
			if !isLit || lit.Value == nil {
				return nil, false
			}
			vals = append(vals, lit.Value)
		}
		return datasource.In{Col: attr.Name, Values: vals}, true
	case *expr.IsNotNull:
		if attr, ok := x.Child.(*expr.AttributeReference); ok {
			return datasource.IsNotNull{Col: attr.Name}, true
		}
	case *expr.StringMatch:
		if !x.IsStartsWith() {
			return nil, false
		}
		attr, lit, flipped := attrLit(x.Left, x.Right)
		if attr == nil || lit == nil || lit.Value == nil || flipped {
			return nil, false
		}
		return datasource.StringStartsWith{Col: attr.Name, Prefix: lit.Value.(string)}, true
	}
	return nil, false
}

func attrLit(l, r expr.Expression) (*expr.AttributeReference, *expr.Literal, bool) {
	if a, ok := l.(*expr.AttributeReference); ok {
		if lit, ok := r.(*expr.Literal); ok {
			return a, lit, false
		}
	}
	if a, ok := r.(*expr.AttributeReference); ok {
		if lit, ok := l.(*expr.Literal); ok {
			return a, lit, true
		}
	}
	return nil, nil, false
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLT:
		return expr.OpGT
	case expr.OpLE:
		return expr.OpGE
	case expr.OpGT:
		return expr.OpLT
	case expr.OpGE:
		return expr.OpLE
	}
	return op
}

// pruneInMemoryColumns restricts columnar cache scans to referenced
// columns — the cache analogue of source projection pushdown (paper §3.1's
// "only scanning the age column").
func pruneInMemoryColumns(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		proj, ok := n.(*plan.Project)
		if !ok || !proj.Resolved() {
			return nil, false
		}
		needed := expr.ReferencesAll(proj.List)
		switch child := proj.Child.(type) {
		case *plan.InMemoryRelation:
			rel, changed := pruneInMemory(child, needed)
			if !changed {
				return nil, false
			}
			return &plan.Project{List: proj.List, Child: rel}, true
		case *plan.Filter:
			mem, isMem := child.Child.(*plan.InMemoryRelation)
			if !isMem || !child.Cond.Resolved() {
				return nil, false
			}
			rel, changed := pruneInMemory(mem, needed.Union(expr.References(child.Cond)))
			if !changed {
				return nil, false
			}
			return &plan.Project{
				List:  proj.List,
				Child: &plan.Filter{Cond: child.Cond, Child: rel},
			}, true
		}
		return nil, false
	})
}

func pruneInMemory(m *plan.InMemoryRelation, needed expr.AttributeSet) (*plan.InMemoryRelation, bool) {
	if m.PrunedOrdinals != nil {
		return m, false
	}
	var attrs []*expr.AttributeReference
	var ords []int
	for i, a := range m.Attrs {
		if needed.Contains(a.ID_) {
			attrs = append(attrs, a)
			ords = append(ords, i)
		}
	}
	if len(attrs) == len(m.Attrs) || len(attrs) == 0 {
		return m, false
	}
	c := *m
	c.Attrs = attrs
	c.PrunedOrdinals = ords
	return &c, true
}
