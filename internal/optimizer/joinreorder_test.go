package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// statTable builds a LocalRelation of n rows with one long key column plus
// a payload string, with collected statistics attached.
func statTable(name string, n int, keyMod int) *plan.LocalRelation {
	schema := types.NewStruct(
		types.StructField{Name: name + "_k", Type: types.Long, Nullable: false},
		types.StructField{Name: name + "_pay", Type: types.String, Nullable: true},
	)
	var rows []row.Row
	for i := 0; i < n; i++ {
		rows = append(rows, row.Row{int64(i % keyMod), fmt.Sprintf("%s-%d", name, i)})
	}
	rel := plan.NewLocalRelation(schema, rows)
	rel.TableStats = stats.FromRows(schema, rows)
	return rel
}

func attrOf(rel *plan.LocalRelation, i int) *expr.AttributeReference { return rel.Attrs[i] }

// A fact table joined with two dimensions, written fact ⋈ bigDim ⋈ tinyDim:
// the rule should join the fact against the tiny dimension first.
func TestReorderJoinsPrefersSmallIntermediate(t *testing.T) {
	fact := statTable("f", 2000, 100)
	big := statTable("b", 1000, 1000)
	tiny := statTable("t", 10, 10)

	j := &plan.Join{
		Left: &plan.Join{
			Left: fact, Right: big, Type: plan.InnerJoin,
			Cond: expr.EQ(attrOf(fact, 0), attrOf(big, 0)),
		},
		Right: tiny, Type: plan.InnerJoin,
		Cond: expr.EQ(attrOf(fact, 0), attrOf(tiny, 0)),
	}
	out := reorderJoins(j)

	// Output schema order must be preserved exactly.
	gotOut := out.Output()
	wantOut := j.Output()
	if len(gotOut) != len(wantOut) {
		t.Fatalf("output arity changed: %d != %d", len(gotOut), len(wantOut))
	}
	for i := range gotOut {
		if gotOut[i].ID_ != wantOut[i].ID_ {
			t.Fatalf("output attr %d changed: %v != %v", i, gotOut[i], wantOut[i])
		}
	}

	// The bottom join should involve the tiny dimension, not the big one.
	var bottom *plan.Join
	var find func(p plan.LogicalPlan)
	find = func(p plan.LogicalPlan) {
		if jj, ok := p.(*plan.Join); ok {
			bottom = jj
		}
		for _, c := range p.Children() {
			find(c)
		}
	}
	find(out)
	if bottom == nil {
		t.Fatal("no join in reordered plan")
	}
	s := bottom.String()
	if !strings.Contains(s, "t_k") {
		t.Fatalf("deepest join should involve the tiny dimension:\n%s", plan.Format(out))
	}
	if strings.Contains(s, "b_k") {
		t.Fatalf("deepest join should not involve the big dimension:\n%s", plan.Format(out))
	}

	// Reordered estimate should not exceed the original's.
	if plan.Stats(out).SizeInBytes > plan.Stats(j).SizeInBytes {
		t.Fatalf("reorder increased estimated size: %d > %d",
			plan.Stats(out).SizeInBytes, plan.Stats(j).SizeInBytes)
	}
}

// Without statistics every candidate has the same (unknown) size, so the
// plan must come out unchanged.
func TestReorderJoinsNoStatsNoChange(t *testing.T) {
	a := &plan.LogicalRDD{Attrs: []*expr.AttributeReference{expr.NewAttribute("a", types.Long, false)}}
	b := &plan.LogicalRDD{Attrs: []*expr.AttributeReference{expr.NewAttribute("b", types.Long, false)}}
	c := &plan.LogicalRDD{Attrs: []*expr.AttributeReference{expr.NewAttribute("c", types.Long, false)}}
	j := &plan.Join{
		Left: &plan.Join{
			Left: a, Right: b, Type: plan.InnerJoin,
			Cond: expr.EQ(a.Attrs[0], b.Attrs[0]),
		},
		Right: c, Type: plan.InnerJoin,
		Cond: expr.EQ(b.Attrs[0], c.Attrs[0]),
	}
	out := reorderJoins(j)
	if out.String() != j.String() {
		t.Fatalf("stats-free plan changed:\nbefore:\n%s\nafter:\n%s", j, out)
	}
}

// Outer joins are barriers: the chain must not flatten through them.
func TestReorderJoinsSkipsOuterJoins(t *testing.T) {
	fact := statTable("f", 2000, 100)
	big := statTable("b", 1000, 1000)
	tiny := statTable("t", 10, 10)
	j := &plan.Join{
		Left: &plan.Join{
			Left: fact, Right: big, Type: plan.LeftOuterJoin,
			Cond: expr.EQ(attrOf(fact, 0), attrOf(big, 0)),
		},
		Right: tiny, Type: plan.InnerJoin,
		Cond: expr.EQ(attrOf(fact, 0), attrOf(tiny, 0)),
	}
	out := reorderJoins(j)
	// Only 2 items in the inner chain (outer-join subtree is atomic), so
	// nothing reorders.
	if out.String() != j.String() {
		t.Fatalf("outer-join chain must not reorder:\n%s", plan.Format(out))
	}
}
