package optimizer

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Expression-level rules, applied to every expression in the plan via
// transformAllExpressions (paper §4.3.2).

// constantFolding evaluates expression subtrees whose inputs are all
// literals at plan time.
func constantFolding(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		if !foldable(e) {
			return nil, false
		}
		v := e.Eval(nil)
		return &expr.Literal{Value: v, Type: e.DataType()}, true
	})
}

// foldable: resolved, non-leaf, non-aggregate, non-named, with all-literal
// children. (Named expressions keep their identity; folding under them is
// handled when the child itself folds.)
func foldable(e expr.Expression) bool {
	switch e.(type) {
	case *expr.Literal, *expr.AttributeReference, *expr.BoundReference,
		*expr.UnresolvedAttribute, *expr.Star, *expr.Alias, *expr.SortOrder,
		*expr.ScalarUDF: // UDFs are opaque; do not fold
		return false
	}
	if _, isAgg := e.(expr.AggregateFunc); isAgg {
		return false
	}
	if !e.Resolved() || len(e.Children()) == 0 {
		return false
	}
	for _, c := range e.Children() {
		if _, ok := c.(*expr.Literal); !ok {
			return false
		}
	}
	return true
}

// nullPropagation rewrites operations on literal NULLs: arithmetic and
// comparisons with a NULL side are NULL; IS NULL on non-nullable inputs is
// false, and on literal NULL is true.
func nullPropagation(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		switch x := e.(type) {
		case *expr.BinaryArith:
			if isNullLit(x.Left) || isNullLit(x.Right) {
				if x.Resolved() {
					return &expr.Literal{Value: nil, Type: x.DataType()}, true
				}
			}
		case *expr.Comparison:
			if isNullLit(x.Left) || isNullLit(x.Right) {
				return &expr.Literal{Value: nil, Type: types.Boolean}, true
			}
		case *expr.IsNull:
			if isNullLit(x.Child) {
				return expr.Lit(true), true
			}
			if x.Child.Resolved() && !x.Child.Nullable() {
				return expr.Lit(false), true
			}
		case *expr.IsNotNull:
			if isNullLit(x.Child) {
				return expr.Lit(false), true
			}
			if x.Child.Resolved() && !x.Child.Nullable() {
				return expr.Lit(true), true
			}
		}
		return nil, false
	})
}

func isNullLit(e expr.Expression) bool {
	lit, ok := e.(*expr.Literal)
	return ok && lit.Value == nil
}

func isTrueLit(e expr.Expression) bool {
	lit, ok := e.(*expr.Literal)
	return ok && lit.Value == true
}

func isFalseLit(e expr.Expression) bool {
	lit, ok := e.(*expr.Literal)
	return ok && lit.Value == false
}

// booleanSimplification applies the identities of three-valued logic that
// hold regardless of NULLs: x AND true = x, x AND false = false, x OR true
// = true, x OR false = x, NOT NOT x = x, NOT literal.
func booleanSimplification(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		switch x := e.(type) {
		case *expr.And:
			switch {
			case isTrueLit(x.Left):
				return x.Right, true
			case isTrueLit(x.Right):
				return x.Left, true
			case isFalseLit(x.Left) || isFalseLit(x.Right):
				return expr.Lit(false), true
			case expr.Equivalent(x.Left, x.Right):
				return x.Left, true
			}
		case *expr.Or:
			switch {
			case isFalseLit(x.Left):
				return x.Right, true
			case isFalseLit(x.Right):
				return x.Left, true
			case isTrueLit(x.Left) || isTrueLit(x.Right):
				return expr.Lit(true), true
			case expr.Equivalent(x.Left, x.Right):
				return x.Left, true
			}
		case *expr.Not:
			if inner, ok := x.Child.(*expr.Not); ok {
				return inner.Child, true
			}
			if lit, ok := x.Child.(*expr.Literal); ok && lit.Value != nil {
				return expr.Lit(!lit.Value.(bool)), true
			}
		}
		return nil, false
	})
}

// simplifyLike rewrites LIKE with simple constant patterns into the fast
// string predicates — the paper's 12-line example rule: 'abc%' becomes
// startsWith, '%abc' endsWith, '%abc%' contains, and a wildcard-free
// pattern becomes equality.
func simplifyLike(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		like, ok := e.(*expr.Like)
		if !ok {
			return nil, false
		}
		lit, ok := like.Pattern.(*expr.Literal)
		if !ok || lit.Value == nil {
			return nil, false
		}
		pattern := lit.Value.(string)
		if strings.ContainsRune(pattern, '_') {
			return nil, false
		}
		inner := strings.Trim(pattern, "%")
		if strings.Contains(inner, "%") {
			return nil, false // interior wildcards stay as LIKE
		}
		starts := strings.HasSuffix(pattern, "%")
		ends := strings.HasPrefix(pattern, "%")
		litInner := expr.Lit(inner)
		switch {
		case starts && ends:
			return expr.Contains(like.Left, litInner), true
		case starts:
			return expr.StartsWith(like.Left, litInner), true
		case ends:
			return expr.EndsWith(like.Left, litInner), true
		default:
			return expr.EQ(like.Left, litInner), true
		}
	})
}

// simplifyCasts removes casts to the value's existing type.
func simplifyCasts(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		c, ok := e.(*expr.Cast)
		if !ok || !c.Child.Resolved() {
			return nil, false
		}
		if c.Child.DataType().Equals(c.To) {
			return c.Child, true
		}
		return nil, false
	})
}

// decimalAggregates is the paper's §4.3.2 example rule: sums over
// small-precision decimals are computed on the unscaled 64-bit LONG and the
// result converted back, avoiding per-row decimal arithmetic.
func decimalAggregates(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		sum, ok := e.(*expr.Sum)
		if !ok || !sum.Child.Resolved() {
			return nil, false
		}
		dt, ok := sum.Child.DataType().(types.DecimalType)
		if !ok || dt.Precision+10 > types.MaxLongDigits {
			return nil, false
		}
		if _, already := sum.Child.(*expr.UnscaledValue); already {
			return nil, false
		}
		return &expr.MakeDecimal{
			Child:     &expr.Sum{Child: &expr.UnscaledValue{Child: sum.Child}},
			Precision: dt.Precision + 10,
			Scale:     dt.Scale,
		}, true
	})
}
