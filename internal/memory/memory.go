// Package memory is the engine's task memory manager — the reproduction's
// stand-in for Spark's MemoryManager/TaskMemoryManager pair under Tungsten.
// A Pool holds one query's execution-memory budget; operators that buffer
// unbounded state (sort buffers, aggregation hash maps, join build sides)
// register a Consumer with a spill callback and reserve bytes through it
// before growing their state. When a reservation cannot be satisfied the
// pool forces the largest other consumer to spill to disk and retries; if
// nothing more can be freed the requester receives ErrNoMemory and is
// expected to spill itself (Spark's "self-spill" path) before forcing the
// minimal reservation through Grow.
//
// Locking discipline: the pool mutex is never held while a spill callback
// runs, and callbacks may call Release (which takes the pool mutex) freely.
// Callbacks must be safe to invoke from any goroutine; operators guard
// their buffered state with their own mutex and never block on the pool
// while holding it, so the only lock order is operator.mu -> pool.mu.
package memory

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// ErrNoMemory reports that a reservation could not be satisfied even after
// spilling every other consumer. The requester should spill its own state
// and retry (or force the minimum working set through Grow).
var ErrNoMemory = errors.New("memory: pool exhausted")

// Pool is one query's execution-memory budget shared by all its tasks.
type Pool struct {
	mu        sync.Mutex
	budget    int64 // <= 0 means unlimited
	used      int64
	peak      int64
	consumers map[*Consumer]struct{}

	spillCount int64
	spillBytes int64

	// Optional registry counters (nil-safe; see metrics.Counter).
	cSpills *metrics.Counter
	cBytes  *metrics.Counter
}

// NewPool creates a pool with the given budget in bytes (<= 0 = unlimited).
// A non-nil scope receives "spill.count" and "spill.bytes" counters.
func NewPool(budget int64, scope *metrics.Scope) *Pool {
	p := &Pool{budget: budget, consumers: make(map[*Consumer]struct{})}
	if scope != nil {
		p.cSpills = scope.Counter("spill.count")
		p.cBytes = scope.Counter("spill.bytes")
	}
	return p
}

// Budget returns the pool's byte budget (<= 0 = unlimited).
func (p *Pool) Budget() int64 { return p.budget }

// Used returns the currently reserved bytes.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Peak returns the high-water mark of reserved bytes.
func (p *Pool) Peak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// SpillCount returns how many spill events the pool has recorded.
func (p *Pool) SpillCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spillCount
}

// SpillBytes returns the total bytes recorded as spilled.
func (p *Pool) SpillBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spillBytes
}

// RecordSpill accounts one spill event of n bytes. Consumers call it from
// their spill paths (both callback-driven and self-spills) so the pool's
// counters — and the query metrics registry — see every spill once.
func (p *Pool) RecordSpill(n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.spillCount++
	p.spillBytes += n
	p.mu.Unlock()
	p.cSpills.Inc()
	p.cBytes.Add(n)
}

// Consumer is one operator instance's stake in the pool.
type Consumer struct {
	pool *Pool
	name string
	// spill, when non-nil, asks the consumer to move its buffered state to
	// disk and release the freed reservation; it returns the bytes freed.
	// It may be invoked from any goroutine.
	spill func() int64

	// guarded by pool.mu
	used     int64
	spilling bool
}

// NewConsumer registers a consumer. The spill callback may be nil for
// consumers that cannot shrink (they are never chosen as spill victims).
func (p *Pool) NewConsumer(name string, spill func() int64) *Consumer {
	c := &Consumer{pool: p, name: name, spill: spill}
	p.mu.Lock()
	p.consumers[c] = struct{}{}
	p.mu.Unlock()
	return c
}

// Used returns the consumer's current reservation.
func (c *Consumer) Used() int64 {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	return c.used
}

// Acquire reserves n bytes. When the pool is exhausted it spills the
// largest other consumer (repeatedly) until the reservation fits; it never
// invokes the requester's own spill callback, so callers may hold their
// state ready. Returns ErrNoMemory (wrapped) if nothing more can be freed.
func (c *Consumer) Acquire(n int64) error {
	return c.reserve(n, false)
}

// Grow extends the reservation by n bytes like Acquire, but never fails:
// after spilling everything spillable it reserves over budget. Operators
// use it for the irreducible working set after a self-spill (a sort buffer
// must hold at least the row being added).
func (c *Consumer) Grow(n int64) {
	_ = c.reserve(n, true)
}

func (c *Consumer) reserve(n int64, force bool) error {
	if n <= 0 {
		return nil
	}
	p := c.pool
	tried := make(map[*Consumer]bool)
	p.mu.Lock()
	for {
		if p.budget <= 0 || p.used+n <= p.budget || (force && c.victimLocked(tried) == nil) {
			p.used += n
			c.used += n
			if p.used > p.peak {
				p.peak = p.used
			}
			p.mu.Unlock()
			return nil
		}
		victim := c.victimLocked(tried)
		if victim == nil {
			used := p.used // snapshot before unlocking: p.used is guarded by p.mu
			p.mu.Unlock()
			return fmt.Errorf("memory: %s needs %d B, %d/%d B reserved: %w",
				c.name, n, used, p.budget, ErrNoMemory)
		}
		victim.spilling = true
		p.mu.Unlock()
		freed := victim.spill() // outside the lock; may call Release
		p.mu.Lock()
		victim.spilling = false
		if freed <= 0 {
			tried[victim] = true // nothing left there; avoid livelock
		}
	}
}

// victimLocked picks the largest other spillable consumer not already tried
// and not currently spilling. Caller holds p.mu.
func (c *Consumer) victimLocked(tried map[*Consumer]bool) *Consumer {
	var victim *Consumer
	for other := range c.pool.consumers {
		if other == c || other.spill == nil || other.spilling || tried[other] || other.used <= 0 {
			continue
		}
		if victim == nil || other.used > victim.used {
			victim = other
		}
	}
	return victim
}

// Release returns up to n reserved bytes to the pool (clamped to the
// consumer's reservation, so over-release is harmless).
func (c *Consumer) Release(n int64) {
	if n <= 0 {
		return
	}
	p := c.pool
	p.mu.Lock()
	if n > c.used {
		n = c.used
	}
	c.used -= n
	p.used -= n
	p.mu.Unlock()
}

// Free releases the consumer's whole reservation and unregisters it; the
// consumer must not be used afterwards.
func (c *Consumer) Free() {
	p := c.pool
	p.mu.Lock()
	p.used -= c.used
	c.used = 0
	delete(p.consumers, c)
	p.mu.Unlock()
}
