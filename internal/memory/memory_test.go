package memory

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestUnlimitedPoolNeverFails(t *testing.T) {
	p := NewPool(0, nil)
	c := p.NewConsumer("sort", nil)
	if err := c.Acquire(1 << 40); err != nil {
		t.Fatalf("unlimited pool refused: %v", err)
	}
	if p.Used() != 1<<40 {
		t.Fatalf("used = %d", p.Used())
	}
	c.Free()
	if p.Used() != 0 {
		t.Fatalf("used after free = %d", p.Used())
	}
}

func TestAcquireSpillsLargestOther(t *testing.T) {
	p := NewPool(100, nil)
	var spilledA, spilledB bool
	var a, b *Consumer
	a = p.NewConsumer("a", func() int64 {
		spilledA = true
		freed := a.Used()
		a.Release(freed)
		return freed
	})
	b = p.NewConsumer("b", func() int64 {
		spilledB = true
		freed := b.Used()
		b.Release(freed)
		return freed
	})
	if err := a.Acquire(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(30); err != nil {
		t.Fatal(err)
	}
	c := p.NewConsumer("c", nil)
	// 90/100 used; c wants 40 -> largest consumer (a, 60 B) must spill.
	if err := c.Acquire(40); err != nil {
		t.Fatal(err)
	}
	if !spilledA {
		t.Fatal("largest consumer a was not spilled")
	}
	if spilledB {
		t.Fatal("b spilled although spilling a sufficed")
	}
	if got := p.Used(); got != 70 {
		t.Fatalf("used = %d, want 70 (b:30 + c:40)", got)
	}
}

func TestAcquireNeverSelfSpills(t *testing.T) {
	p := NewPool(10, nil)
	var selfSpilled bool
	var c *Consumer
	c = p.NewConsumer("sorter", func() int64 {
		selfSpilled = true
		freed := c.Used()
		c.Release(freed)
		return freed
	})
	if err := c.Acquire(8); err != nil {
		t.Fatal(err)
	}
	err := c.Acquire(8)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if selfSpilled {
		t.Fatal("Acquire invoked the requester's own spill callback")
	}
	if !strings.Contains(err.Error(), "sorter") {
		t.Fatalf("error lacks consumer name: %v", err)
	}
	// The self-spill protocol: spill own state, then Grow the minimum.
	c.Release(8)
	c.Grow(8)
	if got := c.Used(); got != 8 {
		t.Fatalf("used after Grow = %d", got)
	}
}

func TestGrowForcesOverBudget(t *testing.T) {
	p := NewPool(4, nil)
	c := p.NewConsumer("agg", nil)
	c.Grow(100) // a single record larger than the whole budget must fit
	if got := c.Used(); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	if p.Peak() != 100 {
		t.Fatalf("peak = %d", p.Peak())
	}
}

func TestReleaseClampsToReservation(t *testing.T) {
	p := NewPool(100, nil)
	c := p.NewConsumer("x", nil)
	if err := c.Acquire(10); err != nil {
		t.Fatal(err)
	}
	c.Release(1000)
	if p.Used() != 0 || c.Used() != 0 {
		t.Fatalf("over-release corrupted accounting: pool=%d consumer=%d", p.Used(), c.Used())
	}
}

func TestSpillCountersAndRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPool(50, reg.Scoped("memory"))
	p.RecordSpill(123)
	p.RecordSpill(77)
	if p.SpillCount() != 2 || p.SpillBytes() != 200 {
		t.Fatalf("pool counters = %d/%d", p.SpillCount(), p.SpillBytes())
	}
	if got := reg.Counter("memory.spill.bytes").Load(); got != 200 {
		t.Fatalf("registry spill.bytes = %d", got)
	}
	if got := reg.Counter("memory.spill.count").Load(); got != 2 {
		t.Fatalf("registry spill.count = %d", got)
	}
}

// TestConcurrentCrossSpill drives many consumers that acquire under a tiny
// budget from separate goroutines, each spilling its own state when asked —
// the deadlock-prone shape (operator mutex + pool mutex) the package's
// locking discipline exists for. Run under -race.
func TestConcurrentCrossSpill(t *testing.T) {
	p := NewPool(256, nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mu sync.Mutex
			var held int64
			var c *Consumer
			c = p.NewConsumer("w", func() int64 {
				mu.Lock()
				freed := held
				held = 0
				mu.Unlock()
				c.Release(freed)
				p.RecordSpill(freed)
				return freed
			})
			defer c.Free()
			for i := 0; i < 200; i++ {
				if err := c.Acquire(16); err != nil {
					// Self-spill protocol.
					mu.Lock()
					freed := held
					held = 0
					mu.Unlock()
					c.Release(freed)
					c.Grow(16)
				}
				mu.Lock()
				held += 16
				mu.Unlock()
			}
			mu.Lock()
			freed := held
			held = 0
			mu.Unlock()
			c.Release(freed)
		}()
	}
	wg.Wait()
	if got := p.Used(); got != 0 {
		t.Fatalf("leaked reservations: %d B", got)
	}
}
