package plan

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// statRelation builds a 1000-row relation with collected statistics:
// k uniform over [0,100), v uniform over [0,1000), s cycling 10 strings.
func statRelation(t *testing.T) *LocalRelation {
	t.Helper()
	schema := types.NewStruct(
		types.StructField{Name: "k", Type: types.Long, Nullable: false},
		types.StructField{Name: "v", Type: types.Long, Nullable: true},
		types.StructField{Name: "s", Type: types.String, Nullable: false},
	)
	var rows []row.Row
	for i := 0; i < 1000; i++ {
		var v any = int64(i % 1000)
		if i%20 == 0 {
			v = nil
		}
		rows = append(rows, row.Row{int64(i % 100), v, fmt.Sprintf("s%d", i%10)})
	}
	rel := NewLocalRelation(schema, rows)
	rel.TableStats = stats.FromRows(schema, rows)
	return rel
}

// Property: every predicate shape yields a selectivity within [0, 1].
func TestSelectivityBounds(t *testing.T) {
	rel := statRelation(t)
	s := Stats(rel)
	k, v := rel.Attrs[0], rel.Attrs[1]
	preds := []expr.Expression{
		expr.Lit(true), expr.Lit(false), expr.Lit(nil),
		expr.EQ(k, expr.Lit(int64(5))),
		expr.EQ(k, expr.Lit(int64(-1000))), // outside [min,max]
		expr.NEQ(k, expr.Lit(int64(5))),
		expr.LT(k, expr.Lit(int64(-5))),
		expr.LT(k, expr.Lit(int64(1_000_000))),
		expr.GE(v, expr.Lit(int64(500))),
		expr.GT(expr.Lit(int64(50)), k), // literal on the left
		&expr.And{Left: expr.LT(k, expr.Lit(int64(50))), Right: expr.GE(v, expr.Lit(int64(100)))},
		&expr.Or{Left: expr.EQ(k, expr.Lit(int64(1))), Right: expr.EQ(k, expr.Lit(int64(2)))},
		&expr.Not{Child: expr.LE(k, expr.Lit(int64(10)))},
		&expr.IsNull{Child: v},
		&expr.IsNotNull{Child: v},
		&expr.In{Value: k, List: []expr.Expression{expr.Lit(int64(1)), expr.Lit(int64(2))}},
		expr.EQ(k, v), // attr-attr comparison
	}
	for _, p := range preds {
		sel := Selectivity(p, s)
		if sel < 0 || sel > 1 {
			t.Errorf("Selectivity(%s) = %v out of [0,1]", p, sel)
		}
	}
	// Deep conjunctions stay bounded.
	deep := expr.Expression(expr.Lit(true))
	for i := 0; i < 40; i++ {
		deep = &expr.And{Left: deep, Right: expr.LT(k, expr.Lit(int64(90-i)))}
	}
	if sel := Selectivity(deep, s); sel < 0 || sel > 1 {
		t.Errorf("deep conjunction selectivity = %v", sel)
	}
}

// Property: tightening a range predicate never increases the estimated
// cardinality (monotone propagation).
func TestSelectivityMonotone(t *testing.T) {
	rel := statRelation(t)
	k := rel.Attrs[0]
	prevRows := int64(-1)
	for lim := int64(0); lim <= 110; lim += 10 {
		f := &Filter{Cond: expr.LT(k, expr.Lit(lim)), Child: rel}
		s := Stats(f)
		if prevRows >= 0 && s.RowCount < prevRows {
			t.Fatalf("lim=%d rows=%d < previous %d (not monotone)", lim, s.RowCount, prevRows)
		}
		prevRows = s.RowCount
	}
	// Stacked filters keep shrinking (min/max tightening composes).
	one := Stats(&Filter{Cond: expr.LT(k, expr.Lit(int64(50))), Child: rel})
	two := Stats(&Filter{
		Cond:  expr.LT(k, expr.Lit(int64(25))),
		Child: &Filter{Cond: expr.LT(k, expr.Lit(int64(50))), Child: rel},
	})
	if two.RowCount > one.RowCount {
		t.Fatalf("stacked filter rows=%d > single filter rows=%d", two.RowCount, one.RowCount)
	}
}

// Equality selectivity uses 1/NDV; range selectivity interpolates min/max.
func TestSelectivityFromColumnStats(t *testing.T) {
	rel := statRelation(t)
	s := Stats(rel)
	k := rel.Attrs[0] // 100 distinct values
	if got := Selectivity(expr.EQ(k, expr.Lit(int64(7))), s); got < 0.005 || got > 0.02 {
		t.Errorf("eq selectivity = %v, want ~1/100", got)
	}
	if got := Selectivity(expr.LT(k, expr.Lit(int64(50))), s); got < 0.4 || got > 0.6 {
		t.Errorf("range selectivity = %v, want ~0.5", got)
	}
	if got := Selectivity(expr.EQ(k, expr.Lit(int64(12345))), s); got != 0 {
		t.Errorf("out-of-range equality selectivity = %v, want 0", got)
	}
}

func TestJoinCardinality(t *testing.T) {
	fact := statRelation(t)       // 1000 rows, k has 100 distinct
	dim := statRelation(t)        // reused schema; fresh attrs
	dimAttrs := make([]*expr.AttributeReference, len(dim.Attrs))
	for i, a := range dim.Attrs {
		dimAttrs[i] = a.WithFreshID()
	}
	dim.Attrs = dimAttrs
	j := &Join{
		Left: fact, Right: dim, Type: InnerJoin,
		Cond: expr.EQ(fact.Attrs[0], dim.Attrs[0]),
	}
	s := Stats(j)
	// |L|*|R|/max(ndv) = 1000*1000/100 = 10000.
	if s.RowCount < 5_000 || s.RowCount > 20_000 {
		t.Fatalf("join cardinality = %d, want ~10000", s.RowCount)
	}
	if s.SizeInBytes <= 0 || s.SizeInBytes >= defaultSizeInBytes {
		t.Fatalf("join size = %d", s.SizeInBytes)
	}
}

func TestAggregateCardinalityFromNDV(t *testing.T) {
	rel := statRelation(t)
	k := rel.Attrs[0]
	agg := &Aggregate{
		Grouping: []expr.Expression{k},
		Aggs:     []expr.Expression{k},
		Child:    rel,
	}
	s := Stats(agg)
	if s.RowCount != 100 {
		t.Fatalf("aggregate rows = %d, want 100 (group-key NDV)", s.RowCount)
	}
	// Ungrouped aggregates produce one row.
	global := &Aggregate{
		Aggs:  []expr.Expression{expr.NewAlias(k, "any_k")},
		Child: rel,
	}
	if s := Stats(global); s.RowCount != 1 {
		t.Fatalf("global aggregate rows = %d, want 1", s.RowCount)
	}
}

// Satellite regressions: Limit caps unknown-cardinality children with a
// per-row estimate; Sample/Aggregate no longer zero out row counts.
func TestLimitCapsUnknownChild(t *testing.T) {
	huge := &LogicalRDD{Attrs: statRelation(t).Attrs} // unknown size
	s := Stats(&Limit{N: 10, Child: huge})
	if s.RowCount != 10 {
		t.Fatalf("limit rows = %d, want 10", s.RowCount)
	}
	if s.SizeInBytes >= 1<<20 {
		t.Fatalf("LIMIT 10 over unknown scan estimated at %d bytes — defeats broadcast", s.SizeInBytes)
	}
}

func TestSampleAndAggregateKeepRowCounts(t *testing.T) {
	rel := statRelation(t)
	if s := Stats(&Sample{Fraction: 0.1, Seed: 1, Child: rel}); s.RowCount != 100 {
		t.Fatalf("sample rows = %d, want 100", s.RowCount)
	}
	// Sized-but-uncounted child: row count is derived, not dropped to 0.
	sized := &LogicalRDD{Attrs: rel.Attrs, SizeHint: 44 * 1000}
	if s := Stats(&Sample{Fraction: 0.5, Seed: 1, Child: sized}); s.RowCount == 0 {
		t.Fatal("sample over sized relation dropped RowCount to 0")
	}
	agg := &Aggregate{
		Grouping: []expr.Expression{rel.Attrs[0]},
		Aggs:     []expr.Expression{rel.Attrs[0]},
		Child:    sized,
	}
	if s := Stats(agg); s.RowCount == 0 {
		t.Fatal("aggregate over sized relation dropped RowCount to 0")
	}
}

func TestFormatEstimatedAnnotatesEveryResolvedNode(t *testing.T) {
	rel := statRelation(t)
	p := &Limit{N: 5, Child: &Filter{
		Cond:  expr.LT(rel.Attrs[0], expr.Lit(int64(50))),
		Child: rel,
	}}
	out := FormatEstimated(p)
	for i, line := range splitLines(out) {
		if line == "" {
			continue
		}
		if !containsEst(line) {
			t.Fatalf("line %d lacks est annotation: %q", i, line)
		}
	}
	// Unresolved nodes render plain rather than panicking.
	raw := &Filter{Cond: expr.UnresolvedAttr("nope"), Child: &UnresolvedRelation{Name: "t"}}
	if out := FormatEstimated(raw); containsEst(out) {
		t.Fatalf("unresolved plan should not carry estimates: %q", out)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func containsEst(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "est:" {
			return true
		}
	}
	return false
}
