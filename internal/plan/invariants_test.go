package plan

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/types"
)

// everyNode constructs one instance of every logical operator, resolved
// where possible, for the node-contract invariants below.
func everyNode() []LogicalPlan {
	rel := NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
		types.StructField{Name: "b", Type: types.String, Nullable: true},
	), []row.Row{{int32(1), "x"}})
	rel2 := NewLocalRelation(types.NewStruct(
		types.StructField{Name: "c", Type: types.Int, Nullable: false},
	), nil)
	a, b := rel.Attrs[0], rel.Attrs[1]

	return []LogicalPlan{
		rel,
		&UnresolvedRelation{Name: "t"},
		&OneRowRelation{},
		NewRange(0, 10, 1, 2),
		&Project{List: []expr.Expression{a, expr.NewAlias(expr.Upper(b), "ub")}, Child: rel},
		&Filter{Cond: expr.GT(a, expr.Lit(int32(0))), Child: rel},
		&Join{Left: rel, Right: rel2, Type: InnerJoin, Cond: expr.EQ(a, rel2.Attrs[0])},
		&Join{Left: rel, Right: rel2, Type: CrossJoin},
		&Aggregate{
			Grouping: []expr.Expression{a},
			Aggs:     []expr.Expression{a, expr.NewAlias(expr.NewCountStar(), "n")},
			Child:    rel,
		},
		&Sort{Orders: []*expr.SortOrder{expr.Asc(a), expr.Desc(b)}, Global: true, Child: rel},
		&Limit{N: 5, Child: rel},
		&Union{Kids: []LogicalPlan{rel, rel}},
		&Distinct{Child: rel},
		&SubqueryAlias{Name: "s", Child: rel},
		&Sample{Fraction: 0.5, Seed: 1, Child: rel},
	}
}

// The contract the catalyst transform machinery relies on:
// WithNewChildren(Children()) reproduces an equivalent node, and
// WithNewExpressions(Expressions()) likewise.
func TestNodeRebuildContract(t *testing.T) {
	for _, n := range everyNode() {
		rebuilt := n.WithNewChildren(n.Children())
		if rebuilt.String() != n.String() {
			t.Errorf("%T: WithNewChildren(Children()) changed the tree:\n%s\nvs\n%s",
				n, n, rebuilt)
		}
		if len(rebuilt.Children()) != len(n.Children()) {
			t.Errorf("%T: child count changed", n)
		}
		reExpr := n.WithNewExpressions(n.Expressions())
		if len(reExpr.Expressions()) != len(n.Expressions()) {
			t.Errorf("%T: expression count changed (%d -> %d)",
				n, len(n.Expressions()), len(reExpr.Expressions()))
		}
		if n.SimpleString() == "" {
			t.Errorf("%T: empty SimpleString", n)
		}
	}
}

// TransformUp with a never-matching function must return the identical
// tree object graph (reuse, not copies).
func TestTransformIdentity(t *testing.T) {
	for _, n := range everyNode() {
		out := TransformUp(n, func(LogicalPlan) (LogicalPlan, bool) { return nil, false })
		if out != n {
			t.Errorf("%T: identity transform should reuse the node", n)
		}
	}
}

// Output() must be stable and sized consistently with Schema().
func TestOutputSchemaConsistency(t *testing.T) {
	for _, n := range everyNode() {
		if !n.Resolved() {
			continue
		}
		out := n.Output()
		schema := Schema(n)
		if len(out) != len(schema.Fields) {
			t.Errorf("%T: output %d vs schema %d", n, len(out), len(schema.Fields))
		}
		for i, a := range out {
			if !a.Type.Equals(schema.Fields[i].Type) {
				t.Errorf("%T field %d: %s vs %s", n, i, a.Type.Name(), schema.Fields[i].Type.Name())
			}
		}
	}
}

// Stats must be defined (positive size) for every resolved operator.
func TestStatsTotal(t *testing.T) {
	for _, n := range everyNode() {
		if !n.Resolved() {
			continue
		}
		s := Stats(n)
		if s.SizeInBytes < 0 {
			t.Errorf("%T: negative size estimate", n)
		}
	}
}
