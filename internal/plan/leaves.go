package plan

import (
	"fmt"
	"strings"

	"repro/internal/columnar"
	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// Leaf operators: relations data flows out of.

// UnresolvedRelation is a by-name table reference awaiting catalog lookup
// (paper §4.3.1: "looking up relations by name from the catalog").
type UnresolvedRelation struct {
	Name string
}

func (u *UnresolvedRelation) Children() []LogicalPlan { return nil }
func (u *UnresolvedRelation) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return u
}
func (u *UnresolvedRelation) Output() []*expr.AttributeReference {
	panic(fmt.Sprintf("plan: Output on unresolved relation %q", u.Name))
}
func (u *UnresolvedRelation) Expressions() []expr.Expression { return nil }
func (u *UnresolvedRelation) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return u
}
func (u *UnresolvedRelation) Resolved() bool { return false }
func (u *UnresolvedRelation) SimpleString() string {
	return fmt.Sprintf("'UnresolvedRelation %s", u.Name)
}
func (u *UnresolvedRelation) String() string { return Format(u) }

// UnresolvedTableFunction is a table-valued function call in FROM —
// the MADLib-style table UDFs of paper §3.7 ("UDFs that operate on an
// entire table by taking its name"). Args name the input tables; the
// analyzer resolves them through the catalog and invokes the registered
// function to produce this node's replacement plan.
type UnresolvedTableFunction struct {
	Name string
	Args []string
}

func (u *UnresolvedTableFunction) Children() []LogicalPlan { return nil }
func (u *UnresolvedTableFunction) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return u
}
func (u *UnresolvedTableFunction) Output() []*expr.AttributeReference {
	panic(fmt.Sprintf("plan: Output on unresolved table function %q", u.Name))
}
func (u *UnresolvedTableFunction) Expressions() []expr.Expression { return nil }
func (u *UnresolvedTableFunction) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return u
}
func (u *UnresolvedTableFunction) Resolved() bool { return false }
func (u *UnresolvedTableFunction) SimpleString() string {
	return fmt.Sprintf("'TableFunction %s(%s)", u.Name, strings.Join(u.Args, ", "))
}
func (u *UnresolvedTableFunction) String() string { return Format(u) }

// LocalRelation is an in-memory table of rows — what ctx.CreateDataFrame
// and constant test fixtures produce.
type LocalRelation struct {
	Attrs []*expr.AttributeReference
	Rows  []row.Row
	// TableStats carries ANALYZE-collected statistics (nil until analyzed).
	TableStats *stats.Table
}

// NewLocalRelation builds a local relation from a schema (allocating fresh
// attribute IDs) and rows.
func NewLocalRelation(schema types.StructType, rows []row.Row) *LocalRelation {
	attrs := make([]*expr.AttributeReference, len(schema.Fields))
	for i, f := range schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	return &LocalRelation{Attrs: attrs, Rows: rows}
}

// NewLocalRelationFromAttrs builds a local relation over existing attrs.
func NewLocalRelationFromAttrs(attrs []*expr.AttributeReference, rows []row.Row) *LocalRelation {
	return &LocalRelation{Attrs: attrs, Rows: rows}
}

func (l *LocalRelation) Children() []LogicalPlan { return nil }
func (l *LocalRelation) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return l
}
func (l *LocalRelation) Output() []*expr.AttributeReference { return l.Attrs }
func (l *LocalRelation) Expressions() []expr.Expression     { return nil }
func (l *LocalRelation) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return l
}
func (l *LocalRelation) Resolved() bool { return true }
func (l *LocalRelation) SimpleString() string {
	return fmt.Sprintf("LocalRelation %s, %d rows", attrsString(l.Attrs), len(l.Rows))
}
func (l *LocalRelation) String() string { return Format(l) }

// LogicalRDD scans an existing RDD of rows — the bridge that lets relational
// operators run over native datasets inside a Spark program (paper §3.5).
type LogicalRDD struct {
	Attrs []*expr.AttributeReference
	RDD   *rdd.RDD[row.Row]
	// SizeHint, when > 0, feeds the cost model (external files and cached
	// data report sizes; anonymous RDDs default to "too big to
	// broadcast").
	SizeHint int64
	// TableStats carries ANALYZE-collected statistics (nil until analyzed).
	TableStats *stats.Table
}

func (l *LogicalRDD) Children() []LogicalPlan { return nil }
func (l *LogicalRDD) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return l
}
func (l *LogicalRDD) Output() []*expr.AttributeReference { return l.Attrs }
func (l *LogicalRDD) Expressions() []expr.Expression     { return nil }
func (l *LogicalRDD) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return l
}
func (l *LogicalRDD) Resolved() bool { return true }
func (l *LogicalRDD) SimpleString() string {
	return fmt.Sprintf("LogicalRDD %s", attrsString(l.Attrs))
}
func (l *LogicalRDD) String() string { return Format(l) }

// Range produces the integers [Start, End) with the given Step as a single
// BIGINT column — handy for synthetic workloads.
type Range struct {
	Start, End, Step int64
	Partitions       int
	Attr             *expr.AttributeReference
}

// NewRange builds a range relation with a fresh `id` attribute.
func NewRange(start, end, step int64, partitions int) *Range {
	return &Range{
		Start: start, End: end, Step: step, Partitions: partitions,
		Attr: expr.NewAttribute("id", types.Long, false),
	}
}

// Count returns the number of rows the range produces.
func (r *Range) Count() int64 {
	if r.Step == 0 || (r.End-r.Start)/r.Step < 0 {
		return 0
	}
	return (r.End - r.Start + r.Step - sign(r.Step)) / r.Step
}

func sign(x int64) int64 {
	if x < 0 {
		return -1
	}
	return 1
}

func (r *Range) Children() []LogicalPlan { return nil }
func (r *Range) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return r
}
func (r *Range) Output() []*expr.AttributeReference { return []*expr.AttributeReference{r.Attr} }
func (r *Range) Expressions() []expr.Expression     { return nil }
func (r *Range) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return r
}
func (r *Range) Resolved() bool { return true }
func (r *Range) SimpleString() string {
	return fmt.Sprintf("Range(%d, %d, step=%d)", r.Start, r.End, r.Step)
}
func (r *Range) String() string { return Format(r) }

// DataSourceRelation wraps an external data source (paper §4.4.1). The
// optimizer may push column pruning and filters into it depending on which
// scan interfaces the relation implements; PushedColumns/PushedFilters
// record what was pushed.
type DataSourceRelation struct {
	Name  string
	Rel   datasource.Relation
	Attrs []*expr.AttributeReference
	// SizeHint comes from the relation's size estimate (broadcast-join
	// cost input; paper footnote 5).
	SizeHint int64
	// PushedColumns, when non-nil, restricts the scan to these column
	// names (projection pushdown); Attrs is already pruned to match.
	PushedColumns []string
	// PushedFilters are source-evaluated predicates. They are advisory
	// (the source may return false positives), so the optimizer keeps a
	// Filter above unless the source reports exact evaluation.
	PushedFilters []datasource.Filter
	// PushedPredicates are complete Catalyst expression trees handed to
	// CatalystScan sources (paper §4.4.1's most powerful interface);
	// always advisory.
	PushedPredicates []expr.Expression
	// TableStats carries ANALYZE-collected statistics (nil until analyzed).
	TableStats *stats.Table
}

func (d *DataSourceRelation) Children() []LogicalPlan { return nil }
func (d *DataSourceRelation) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return d
}
func (d *DataSourceRelation) Output() []*expr.AttributeReference { return d.Attrs }
func (d *DataSourceRelation) Expressions() []expr.Expression     { return nil }
func (d *DataSourceRelation) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return d
}
func (d *DataSourceRelation) Resolved() bool { return true }
func (d *DataSourceRelation) SimpleString() string {
	s := fmt.Sprintf("Relation[%s] %s", d.Name, attrsString(d.Attrs))
	if len(d.PushedColumns) > 0 {
		s += fmt.Sprintf(" pruned=%v", d.PushedColumns)
	}
	if len(d.PushedFilters) > 0 {
		s += fmt.Sprintf(" pushed=%v", d.PushedFilters)
	}
	if len(d.PushedPredicates) > 0 {
		s += fmt.Sprintf(" pushedExprs=%v", d.PushedPredicates)
	}
	return s
}
func (d *DataSourceRelation) String() string { return Format(d) }

// InMemoryRelation scans the columnar cache built by DataFrame.Cache()
// (paper §3.6).
type InMemoryRelation struct {
	Attrs       []*expr.AttributeReference
	Table       *columnar.CachedTable
	SizeInBytes int64
	RowCount    int64
	// PrunedOrdinals, when non-nil, restricts the scan to these column
	// ordinals of the cached table (Attrs is already pruned to match) —
	// the "only scanning the age column" optimization of paper §3.1.
	PrunedOrdinals []int
	// TableStats carries per-column statistics collected while building
	// the columnar cache (nil for pre-statistics relations).
	TableStats *stats.Table
	// Origin names the persistent store table this relation is a pinned
	// version of ("" for cached query results and other in-memory tables).
	// Queries holding an Origin relation read that exact version — the
	// snapshot-isolation pin — and the engine checks it against the store's
	// current version before shipping a query to cluster workers.
	Origin string
}

func (m *InMemoryRelation) Children() []LogicalPlan { return nil }
func (m *InMemoryRelation) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return m
}
func (m *InMemoryRelation) Output() []*expr.AttributeReference { return m.Attrs }
func (m *InMemoryRelation) Expressions() []expr.Expression     { return nil }
func (m *InMemoryRelation) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return m
}
func (m *InMemoryRelation) Resolved() bool { return true }
func (m *InMemoryRelation) SimpleString() string {
	return fmt.Sprintf("InMemoryRelation %s, %d rows, %dB columnar",
		attrsString(m.Attrs), m.RowCount, m.SizeInBytes)
}
func (m *InMemoryRelation) String() string { return Format(m) }

// OneRowRelation is the implicit FROM of `SELECT 1+1`.
type OneRowRelation struct{}

func (o *OneRowRelation) Children() []LogicalPlan { return nil }
func (o *OneRowRelation) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return o
}
func (o *OneRowRelation) Output() []*expr.AttributeReference { return nil }
func (o *OneRowRelation) Expressions() []expr.Expression     { return nil }
func (o *OneRowRelation) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return o
}
func (o *OneRowRelation) Resolved() bool       { return true }
func (o *OneRowRelation) SimpleString() string { return "OneRowRelation" }
func (o *OneRowRelation) String() string       { return Format(o) }

func attrsString(attrs []*expr.AttributeReference) string {
	s := "["
	for i, a := range attrs {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + "]"
}
