// Package plan implements Catalyst logical plan trees (paper §4.3):
// relational operators over attributes, with schema propagation, statistics
// for cost-based planning, and transform helpers that let analyzer and
// optimizer rules rewrite both the plan structure and the expressions
// embedded in it.
package plan

import (
	"strings"

	"repro/internal/catalyst"
	"repro/internal/expr"
	"repro/internal/types"
)

// LogicalPlan is a node of the logical operator tree. All implementations
// are pointer types in this package.
type LogicalPlan interface {
	// Children returns the child operators.
	Children() []LogicalPlan
	// WithNewChildren rebuilds the node with replacement children.
	WithNewChildren(children []LogicalPlan) LogicalPlan
	// Output returns the attributes this operator produces. Only valid
	// once the node is resolved.
	Output() []*expr.AttributeReference
	// Expressions returns the expressions embedded in this node (not in
	// children), in a stable order matching WithNewExpressions.
	Expressions() []expr.Expression
	// WithNewExpressions rebuilds the node with replacement expressions.
	WithNewExpressions(exprs []expr.Expression) LogicalPlan
	// Resolved reports whether this node and all children are resolved.
	Resolved() bool
	// SimpleString is the one-line description of this node alone.
	SimpleString() string
	// String renders the whole subtree (used for fixed-point detection).
	String() string
}

// Format renders a plan subtree with indentation.
func Format(p LogicalPlan) string {
	var sb strings.Builder
	writeTree(&sb, p, 0)
	return sb.String()
}

func writeTree(sb *strings.Builder, p LogicalPlan, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(p.SimpleString())
	sb.WriteByte('\n')
	for _, c := range p.Children() {
		writeTree(sb, c, depth+1)
	}
}

// Schema converts a plan's output attributes to a StructType.
func Schema(p LogicalPlan) types.StructType {
	out := p.Output()
	fields := make([]types.StructField, len(out))
	for i, a := range out {
		fields[i] = types.StructField{Name: a.Name, Type: a.Type, Nullable: a.Null}
	}
	return types.StructType{Fields: fields}
}

// OutputSet returns the set of attribute IDs a plan produces.
func OutputSet(p LogicalPlan) expr.AttributeSet {
	return expr.NewAttributeSet(p.Output()...)
}

// TransformUp rewrites the plan bottom-up with a partial function.
func TransformUp(p LogicalPlan, f catalyst.PartialFunc[LogicalPlan]) LogicalPlan {
	return catalyst.TransformUp(p, f)
}

// TransformDown rewrites the plan top-down.
func TransformDown(p LogicalPlan, f catalyst.PartialFunc[LogicalPlan]) LogicalPlan {
	return catalyst.TransformDown(p, f)
}

// TransformExpressionsUp applies an expression rewrite to every expression
// of every node in the plan — the paper's transformAllExpressions.
func TransformExpressionsUp(p LogicalPlan, f catalyst.PartialFunc[expr.Expression]) LogicalPlan {
	return TransformUp(p, func(n LogicalPlan) (LogicalPlan, bool) {
		return transformNodeExpressions(n, f)
	})
}

func transformNodeExpressions(n LogicalPlan, f catalyst.PartialFunc[expr.Expression]) (LogicalPlan, bool) {
	exprs := n.Expressions()
	if len(exprs) == 0 {
		return nil, false
	}
	newExprs := make([]expr.Expression, len(exprs))
	changed := false
	for i, e := range exprs {
		ne := expr.TransformUp(e, f)
		newExprs[i] = ne
		if any(ne) != any(e) {
			changed = true
		}
	}
	if !changed {
		return nil, false
	}
	return n.WithNewExpressions(newExprs), true
}

// InputAttributes returns the union of all children's outputs — what
// expressions in this node may reference.
func InputAttributes(p LogicalPlan) []*expr.AttributeReference {
	var out []*expr.AttributeReference
	for _, c := range p.Children() {
		out = append(out, c.Output()...)
	}
	return out
}

// MissingReferences lists attribute IDs referenced by p's expressions but
// not produced by its children (analysis sanity check).
func MissingReferences(p LogicalPlan) []expr.ID {
	avail := expr.NewAttributeSet(InputAttributes(p)...)
	var missing []expr.ID
	seen := make(expr.AttributeSet)
	for _, e := range p.Expressions() {
		for id := range expr.References(e) {
			if !avail.Contains(id) && !seen.Contains(id) {
				seen.Add(id)
				missing = append(missing, id)
			}
		}
	}
	return missing
}

func childrenResolved(p LogicalPlan) bool {
	for _, c := range p.Children() {
		if !c.Resolved() {
			return false
		}
	}
	return true
}

func exprsResolved(exprs []expr.Expression) bool {
	for _, e := range exprs {
		if !e.Resolved() {
			return false
		}
	}
	return true
}

func exprListString(exprs []expr.Expression) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Statistics, Stats and the selectivity/cardinality estimation framework
// live in estimation.go.

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
