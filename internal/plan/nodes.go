package plan

import (
	"fmt"

	"repro/internal/expr"
)

// Project computes a list of named expressions over its child (SELECT list
// / DataFrame.Select).
type Project struct {
	List  []expr.Expression // Named after analysis
	Child LogicalPlan
}

func (p *Project) Children() []LogicalPlan { return []LogicalPlan{p.Child} }
func (p *Project) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Project{List: p.List, Child: children[0]}
}
func (p *Project) Output() []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(p.List))
	for i, e := range p.List {
		out[i] = e.(expr.Named).ToAttribute()
	}
	return out
}
func (p *Project) Expressions() []expr.Expression { return p.List }
func (p *Project) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return &Project{List: exprs, Child: p.Child}
}
func (p *Project) Resolved() bool {
	if !childrenResolved(p) || !exprsResolved(p.List) {
		return false
	}
	for _, e := range p.List {
		if _, ok := e.(expr.Named); !ok {
			return false
		}
		if expr.ContainsAggregate(e) {
			return false // analyzer must lift into an Aggregate
		}
	}
	return true
}
func (p *Project) SimpleString() string { return "Project [" + exprListString(p.List) + "]" }
func (p *Project) String() string       { return Format(p) }

// Filter keeps rows where Cond is true (WHERE).
type Filter struct {
	Cond  expr.Expression
	Child LogicalPlan
}

func (f *Filter) Children() []LogicalPlan { return []LogicalPlan{f.Child} }
func (f *Filter) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Filter{Cond: f.Cond, Child: children[0]}
}
func (f *Filter) Output() []*expr.AttributeReference { return f.Child.Output() }
func (f *Filter) Expressions() []expr.Expression     { return []expr.Expression{f.Cond} }
func (f *Filter) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return &Filter{Cond: exprs[0], Child: f.Child}
}
func (f *Filter) Resolved() bool {
	return childrenResolved(f) && f.Cond.Resolved()
}
func (f *Filter) SimpleString() string { return fmt.Sprintf("Filter %s", f.Cond) }
func (f *Filter) String() string       { return Format(f) }

// JoinType enumerates supported joins.
type JoinType int

const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
	LeftSemiJoin
	CrossJoin
)

func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "Inner"
	case LeftOuterJoin:
		return "LeftOuter"
	case RightOuterJoin:
		return "RightOuter"
	case FullOuterJoin:
		return "FullOuter"
	case LeftSemiJoin:
		return "LeftSemi"
	case CrossJoin:
		return "Cross"
	}
	return "?"
}

// Join combines two relations on a condition.
type Join struct {
	Left, Right LogicalPlan
	Type        JoinType
	Cond        expr.Expression // nil for cross joins
}

func (j *Join) Children() []LogicalPlan { return []LogicalPlan{j.Left, j.Right} }
func (j *Join) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Join{Left: children[0], Right: children[1], Type: j.Type, Cond: j.Cond}
}
func (j *Join) Output() []*expr.AttributeReference {
	left, right := j.Left.Output(), j.Right.Output()
	switch j.Type {
	case LeftSemiJoin:
		return left
	case LeftOuterJoin:
		return append(append([]*expr.AttributeReference{}, left...), nullableAttrs(right)...)
	case RightOuterJoin:
		return append(nullableAttrs(left), right...)
	case FullOuterJoin:
		return append(nullableAttrs(left), nullableAttrs(right)...)
	default:
		return append(append([]*expr.AttributeReference{}, left...), right...)
	}
}
func nullableAttrs(attrs []*expr.AttributeReference) []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(attrs))
	for i, a := range attrs {
		out[i] = a.WithNullable(true)
	}
	return out
}
func (j *Join) Expressions() []expr.Expression {
	if j.Cond == nil {
		return nil
	}
	return []expr.Expression{j.Cond}
}
func (j *Join) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	if len(exprs) == 0 {
		return j
	}
	return &Join{Left: j.Left, Right: j.Right, Type: j.Type, Cond: exprs[0]}
}
func (j *Join) Resolved() bool {
	return childrenResolved(j) && (j.Cond == nil || j.Cond.Resolved())
}
func (j *Join) SimpleString() string {
	if j.Cond == nil {
		return fmt.Sprintf("Join %s", j.Type)
	}
	return fmt.Sprintf("Join %s, %s", j.Type, j.Cond)
}
func (j *Join) String() string { return Format(j) }

// Aggregate groups by Grouping and computes Aggs (which may mix aggregate
// functions and grouping expressions; each entry is Named after analysis).
type Aggregate struct {
	Grouping []expr.Expression
	Aggs     []expr.Expression
	Child    LogicalPlan
}

func (a *Aggregate) Children() []LogicalPlan { return []LogicalPlan{a.Child} }
func (a *Aggregate) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Aggregate{Grouping: a.Grouping, Aggs: a.Aggs, Child: children[0]}
}
func (a *Aggregate) Output() []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(a.Aggs))
	for i, e := range a.Aggs {
		out[i] = e.(expr.Named).ToAttribute()
	}
	return out
}
func (a *Aggregate) Expressions() []expr.Expression {
	out := make([]expr.Expression, 0, len(a.Grouping)+len(a.Aggs))
	out = append(out, a.Grouping...)
	return append(out, a.Aggs...)
}
func (a *Aggregate) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return &Aggregate{
		Grouping: exprs[:len(a.Grouping)],
		Aggs:     exprs[len(a.Grouping):],
		Child:    a.Child,
	}
}
func (a *Aggregate) Resolved() bool {
	if !childrenResolved(a) || !exprsResolved(a.Grouping) || !exprsResolved(a.Aggs) {
		return false
	}
	for _, e := range a.Aggs {
		if _, ok := e.(expr.Named); !ok {
			return false
		}
	}
	return true
}
func (a *Aggregate) SimpleString() string {
	return fmt.Sprintf("Aggregate [%s], [%s]", exprListString(a.Grouping), exprListString(a.Aggs))
}
func (a *Aggregate) String() string { return Format(a) }

// Sort orders rows by the given sort orders; Global distinguishes a total
// order (ORDER BY) from a per-partition sort.
type Sort struct {
	Orders []*expr.SortOrder
	Global bool
	Child  LogicalPlan
}

func (s *Sort) Children() []LogicalPlan { return []LogicalPlan{s.Child} }
func (s *Sort) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Sort{Orders: s.Orders, Global: s.Global, Child: children[0]}
}
func (s *Sort) Output() []*expr.AttributeReference { return s.Child.Output() }
func (s *Sort) Expressions() []expr.Expression {
	out := make([]expr.Expression, len(s.Orders))
	for i, o := range s.Orders {
		out[i] = o
	}
	return out
}
func (s *Sort) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	orders := make([]*expr.SortOrder, len(exprs))
	for i, e := range exprs {
		if so, ok := e.(*expr.SortOrder); ok {
			orders[i] = so
		} else {
			orders[i] = expr.Asc(e)
		}
	}
	return &Sort{Orders: orders, Global: s.Global, Child: s.Child}
}
func (s *Sort) Resolved() bool {
	if !childrenResolved(s) {
		return false
	}
	for _, o := range s.Orders {
		if !o.Resolved() {
			return false
		}
	}
	return true
}
func (s *Sort) SimpleString() string {
	return fmt.Sprintf("Sort [%s], global=%v", exprListString(s.Expressions()), s.Global)
}
func (s *Sort) String() string { return Format(s) }

// Limit keeps the first N rows.
type Limit struct {
	N     int
	Child LogicalPlan
}

func (l *Limit) Children() []LogicalPlan { return []LogicalPlan{l.Child} }
func (l *Limit) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Limit{N: l.N, Child: children[0]}
}
func (l *Limit) Output() []*expr.AttributeReference { return l.Child.Output() }
func (l *Limit) Expressions() []expr.Expression     { return nil }
func (l *Limit) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return l
}
func (l *Limit) Resolved() bool       { return childrenResolved(l) }
func (l *Limit) SimpleString() string { return fmt.Sprintf("Limit %d", l.N) }
func (l *Limit) String() string       { return Format(l) }

// Union concatenates relations with compatible schemas (UNION ALL). Output
// attributes are the first child's.
type Union struct {
	Kids []LogicalPlan
}

func (u *Union) Children() []LogicalPlan { return u.Kids }
func (u *Union) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Union{Kids: children}
}
func (u *Union) Output() []*expr.AttributeReference { return u.Kids[0].Output() }
func (u *Union) Expressions() []expr.Expression     { return nil }
func (u *Union) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return u
}
func (u *Union) Resolved() bool {
	if !childrenResolved(u) {
		return false
	}
	first := Schema(u.Kids[0])
	for _, k := range u.Kids[1:] {
		s := Schema(k)
		if len(s.Fields) != len(first.Fields) {
			return false
		}
		for i := range s.Fields {
			if !s.Fields[i].Type.Equals(first.Fields[i].Type) {
				return false
			}
		}
	}
	return true
}
func (u *Union) SimpleString() string { return "Union" }
func (u *Union) String() string       { return Format(u) }

// Distinct removes duplicate rows.
type Distinct struct {
	Child LogicalPlan
}

func (d *Distinct) Children() []LogicalPlan { return []LogicalPlan{d.Child} }
func (d *Distinct) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Distinct{Child: children[0]}
}
func (d *Distinct) Output() []*expr.AttributeReference { return d.Child.Output() }
func (d *Distinct) Expressions() []expr.Expression     { return nil }
func (d *Distinct) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return d
}
func (d *Distinct) Resolved() bool       { return childrenResolved(d) }
func (d *Distinct) SimpleString() string { return "Distinct" }
func (d *Distinct) String() string       { return Format(d) }

// SubqueryAlias names a subtree so qualified references (alias.col)
// resolve; it qualifies but otherwise passes through its child's output.
type SubqueryAlias struct {
	Name  string
	Child LogicalPlan
}

func (s *SubqueryAlias) Children() []LogicalPlan { return []LogicalPlan{s.Child} }
func (s *SubqueryAlias) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &SubqueryAlias{Name: s.Name, Child: children[0]}
}
func (s *SubqueryAlias) Output() []*expr.AttributeReference {
	child := s.Child.Output()
	out := make([]*expr.AttributeReference, len(child))
	for i, a := range child {
		out[i] = a.WithQualifier(s.Name)
	}
	return out
}
func (s *SubqueryAlias) Expressions() []expr.Expression { return nil }
func (s *SubqueryAlias) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return s
}
func (s *SubqueryAlias) Resolved() bool       { return childrenResolved(s) }
func (s *SubqueryAlias) SimpleString() string { return fmt.Sprintf("SubqueryAlias %s", s.Name) }
func (s *SubqueryAlias) String() string       { return Format(s) }

// Sample keeps a deterministic pseudo-random fraction of rows — the
// substrate for the online-aggregation extension (paper §7.1).
type Sample struct {
	Fraction float64
	Seed     int64
	Child    LogicalPlan
}

func (s *Sample) Children() []LogicalPlan { return []LogicalPlan{s.Child} }
func (s *Sample) WithNewChildren(children []LogicalPlan) LogicalPlan {
	return &Sample{Fraction: s.Fraction, Seed: s.Seed, Child: children[0]}
}
func (s *Sample) Output() []*expr.AttributeReference { return s.Child.Output() }
func (s *Sample) Expressions() []expr.Expression     { return nil }
func (s *Sample) WithNewExpressions(exprs []expr.Expression) LogicalPlan {
	return s
}
func (s *Sample) Resolved() bool       { return childrenResolved(s) }
func (s *Sample) SimpleString() string { return fmt.Sprintf("Sample %.3f seed=%d", s.Fraction, s.Seed) }
func (s *Sample) String() string       { return Format(s) }
