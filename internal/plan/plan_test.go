package plan

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/types"
)

func sampleRelation() *LocalRelation {
	return NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
		types.StructField{Name: "b", Type: types.String, Nullable: true},
	), []row.Row{{int32(1), "x"}, {int32(2), nil}})
}

func TestSchemaFromOutput(t *testing.T) {
	rel := sampleRelation()
	s := Schema(rel)
	if len(s.Fields) != 2 || s.Fields[0].Name != "a" || !s.Fields[0].Type.Equals(types.Int) {
		t.Fatalf("schema = %v", s)
	}
	if s.Fields[0].Nullable || !s.Fields[1].Nullable {
		t.Fatal("nullability must propagate")
	}
}

func TestProjectOutputNamesAndTypes(t *testing.T) {
	rel := sampleRelation()
	p := &Project{
		List: []expr.Expression{
			rel.Attrs[0],
			expr.NewAlias(expr.Add(rel.Attrs[0], expr.Lit(int32(1))), "a1"),
		},
		Child: rel,
	}
	out := p.Output()
	if out[0].ID_ != rel.Attrs[0].ID_ {
		t.Error("pass-through attribute keeps identity")
	}
	if out[1].Name != "a1" || !out[1].Type.Equals(types.Int) {
		t.Errorf("alias output = %v", out[1])
	}
	if !p.Resolved() {
		t.Error("project over resolved inputs should be resolved")
	}
}

func TestProjectWithAggregateIsUnresolved(t *testing.T) {
	rel := sampleRelation()
	p := &Project{
		List:  []expr.Expression{expr.NewAlias(&expr.Sum{Child: rel.Attrs[0]}, "s")},
		Child: rel,
	}
	if p.Resolved() {
		t.Error("projects containing aggregates must stay unresolved (analyzer lifts them)")
	}
}

func TestJoinOutputNullability(t *testing.T) {
	left := sampleRelation()
	right := NewLocalRelation(types.NewStruct(
		types.StructField{Name: "c", Type: types.Int, Nullable: false},
	), nil)

	inner := &Join{Left: left, Right: right, Type: InnerJoin}
	if len(inner.Output()) != 3 {
		t.Fatal("inner join output is left ++ right")
	}
	if inner.Output()[2].Null {
		t.Error("inner join keeps nullability")
	}

	lo := &Join{Left: left, Right: right, Type: LeftOuterJoin}
	if !lo.Output()[2].Null {
		t.Error("left outer join makes right side nullable")
	}
	if lo.Output()[0].Null {
		t.Error("left outer join keeps left side nullability")
	}

	fo := &Join{Left: left, Right: right, Type: FullOuterJoin}
	for _, a := range fo.Output() {
		if !a.Null {
			t.Error("full outer join makes everything nullable")
		}
	}

	semi := &Join{Left: left, Right: right, Type: LeftSemiJoin}
	if len(semi.Output()) != 2 {
		t.Error("semi join outputs only the left side")
	}
}

func TestSubqueryAliasQualifies(t *testing.T) {
	rel := sampleRelation()
	sq := &SubqueryAlias{Name: "t", Child: rel}
	for _, a := range sq.Output() {
		if a.Qualifier != "t" {
			t.Errorf("attr %v not qualified", a)
		}
	}
	// Identity is preserved: the alias only decorates.
	if sq.Output()[0].ID_ != rel.Attrs[0].ID_ {
		t.Error("qualified attrs keep their IDs")
	}
}

func TestTransformExpressionsUp(t *testing.T) {
	rel := sampleRelation()
	f := &Filter{Cond: expr.GT(rel.Attrs[0], expr.Lit(int32(0))), Child: rel}
	rewritten := TransformExpressionsUp(f, func(e expr.Expression) (expr.Expression, bool) {
		if lit, ok := e.(*expr.Literal); ok && lit.Value == int32(0) {
			return expr.Lit(int32(5)), true
		}
		return nil, false
	})
	if !strings.Contains(rewritten.String(), "> 5") {
		t.Errorf("rewrite failed: %s", rewritten)
	}
	// Original is untouched (immutability).
	if !strings.Contains(f.String(), "> 0") {
		t.Error("transform must not mutate the source tree")
	}
}

func TestMissingReferences(t *testing.T) {
	rel := sampleRelation()
	stranger := expr.NewAttribute("z", types.Int, false)
	f := &Filter{Cond: expr.GT(stranger, expr.Lit(int32(0))), Child: rel}
	if missing := MissingReferences(f); len(missing) != 1 || missing[0] != stranger.ID_ {
		t.Errorf("missing = %v", missing)
	}
	ok := &Filter{Cond: expr.GT(rel.Attrs[0], expr.Lit(int32(0))), Child: rel}
	if missing := MissingReferences(ok); len(missing) != 0 {
		t.Errorf("unexpected missing = %v", missing)
	}
}

func TestStatsEstimates(t *testing.T) {
	rel := sampleRelation()
	base := Stats(rel)
	if base.SizeInBytes <= 0 || base.RowCount != 2 {
		t.Fatalf("base stats = %+v", base)
	}
	filtered := Stats(&Filter{Cond: expr.GT(rel.Attrs[0], expr.Lit(int32(1))), Child: rel})
	if filtered.SizeInBytes >= base.SizeInBytes {
		t.Error("filters shrink estimates")
	}
	// A tautology keeps everything — selectivity is predicate-driven now.
	always := Stats(&Filter{Cond: expr.Lit(true), Child: rel})
	if always.SizeInBytes != base.SizeInBytes || always.RowCount != base.RowCount {
		t.Errorf("TRUE filter should keep stats, got %+v", always)
	}
	limited := Stats(&Limit{N: 1, Child: rel})
	if limited.RowCount != 1 {
		t.Errorf("limit stats = %+v", limited)
	}
	// Unknown-size leaves default to enormous (never broadcast).
	unknown := Stats(&LogicalRDD{Attrs: rel.Attrs})
	if unknown.SizeInBytes < 1<<39 {
		t.Errorf("unknown size should be huge, got %d", unknown.SizeInBytes)
	}
	// Projection narrowing shrinks size.
	narrow := Stats(&Project{List: []expr.Expression{rel.Attrs[0]}, Child: rel})
	if narrow.SizeInBytes >= base.SizeInBytes {
		t.Error("narrower projection should shrink estimate")
	}
}

func TestRangeCount(t *testing.T) {
	cases := []struct {
		start, end, step int64
		want             int64
	}{
		{0, 10, 1, 10},
		{0, 10, 3, 4},
		{5, 5, 1, 0},
		{10, 0, 1, 0},
	}
	for _, c := range cases {
		r := NewRange(c.start, c.end, c.step, 2)
		if got := r.Count(); got != c.want {
			t.Errorf("Range(%d,%d,%d).Count() = %d, want %d", c.start, c.end, c.step, got, c.want)
		}
	}
}

func TestFormatTree(t *testing.T) {
	rel := sampleRelation()
	p := &Project{
		List:  []expr.Expression{rel.Attrs[0]},
		Child: &Filter{Cond: expr.Lit(true), Child: rel},
	}
	s := p.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree rendering = %q", s)
	}
	if !strings.HasPrefix(lines[1], "  Filter") || !strings.HasPrefix(lines[2], "    LocalRelation") {
		t.Errorf("indentation wrong:\n%s", s)
	}
}

func TestUnionResolution(t *testing.T) {
	a := sampleRelation()
	b := sampleRelation()
	u := &Union{Kids: []LogicalPlan{a, b}}
	if !u.Resolved() {
		t.Error("compatible union should resolve")
	}
	c := NewLocalRelation(types.NewStruct(
		types.StructField{Name: "x", Type: types.Double, Nullable: false},
	), nil)
	bad := &Union{Kids: []LogicalPlan{a, c}}
	if bad.Resolved() {
		t.Error("mismatched union must not resolve")
	}
}
