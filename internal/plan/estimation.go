package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// This file is the estimation side of cost-based planning (paper §4.3.3:
// "costs can be estimated recursively for a whole tree using a rule").
// Leaves report collected statistics (internal/stats) when available;
// operators propagate them: predicate selectivity from min/max ranges and
// 1/NDV equality, join cardinality |L|·|R|/max(ndv), aggregate cardinality
// from group-key NDVs. Unknowns degrade to conservative defaults so that
// relations without statistics are never mistaken for broadcastable.

// ColumnStat is a per-column estimate, keyed by attribute ID in Statistics
// so it survives projection, aliasing and join-side deduplication.
type ColumnStat struct {
	// Min and Max bound the non-NULL values (nil = unknown).
	Min, Max any
	// NullCount counts NULLs (meaningful only alongside RowCount).
	NullCount int64
	// NDV estimates distinct non-NULL values (0 = unknown).
	NDV int64
	// AvgWidth is the average value width in bytes (0 = unknown).
	AvgWidth float64
}

// Statistics carries the estimates driving cost-based decisions
// (broadcast join selection, join ordering, shuffle sizing).
type Statistics struct {
	// SizeInBytes estimates the operator's output volume.
	SizeInBytes int64
	// RowCount estimates output cardinality; 0 means unknown.
	RowCount int64
	// Columns holds per-column statistics for output attributes that have
	// them (may be nil).
	Columns map[expr.ID]*ColumnStat
}

// EstString renders the estimate as it appears in EXPLAIN annotations.
func (s Statistics) EstString() string {
	rows := "?"
	if s.RowCount > 0 {
		rows = fmt.Sprintf("%d", s.RowCount)
	}
	return fmt.Sprintf("est: %s rows, %d B", rows, s.SizeInBytes)
}

// UnknownSizeInBytes is the "unknown, assume large" estimate — large enough
// that unknown relations are never broadcast (mirrors Spark's default).
// Exported so the physical planner can recognize unknown sizes when
// deriving shuffle partition counts.
const UnknownSizeInBytes = int64(1) << 40

const defaultSizeInBytes = UnknownSizeInBytes

// Default selectivities for predicates the estimator cannot resolve from
// column statistics.
const (
	defaultFilterSel = 0.5       // unrecognized predicate shape
	defaultEqSel     = 0.1       // equality without NDV
	defaultRangeSel  = 1.0 / 3.0 // range predicate without min/max
	defaultNullSel   = 0.1       // IS NULL without null counts
)

// Stats estimates statistics for a plan bottom-up.
func Stats(p LogicalPlan) Statistics {
	switch n := p.(type) {
	case *LocalRelation:
		if n.TableStats != nil {
			return leafStats(n.TableStats, n.Attrs)
		}
		var size int64
		for _, r := range n.Rows {
			size += r.FlatSize()
		}
		return Statistics{SizeInBytes: size, RowCount: int64(len(n.Rows))}
	case *DataSourceRelation:
		if n.TableStats != nil {
			return leafStats(n.TableStats, n.Attrs)
		}
		if n.SizeHint > 0 {
			return Statistics{SizeInBytes: n.SizeHint}
		}
		return Statistics{SizeInBytes: defaultSizeInBytes}
	case *InMemoryRelation:
		if n.TableStats != nil {
			s := leafStats(n.TableStats, n.Attrs)
			// Size reflects the encoded cache, not flat widths.
			s.SizeInBytes = n.SizeInBytes
			s.RowCount = n.RowCount
			return s
		}
		return Statistics{SizeInBytes: n.SizeInBytes, RowCount: n.RowCount}
	case *LogicalRDD:
		if n.TableStats != nil {
			return leafStats(n.TableStats, n.Attrs)
		}
		if n.SizeHint > 0 {
			return Statistics{SizeInBytes: n.SizeHint}
		}
		return Statistics{SizeInBytes: defaultSizeInBytes}
	case *Range:
		cnt := n.Count()
		s := Statistics{SizeInBytes: 8 * cnt, RowCount: cnt}
		if cnt > 0 {
			last := n.Start + (cnt-1)*n.Step
			lo, hi := n.Start, last
			if lo > hi {
				lo, hi = hi, lo
			}
			s.Columns = map[expr.ID]*ColumnStat{
				n.Attr.ID_: {Min: lo, Max: hi, NDV: cnt, AvgWidth: 8},
			}
		}
		return s
	case *OneRowRelation:
		return Statistics{SizeInBytes: 8, RowCount: 1}
	case *Filter:
		s := ensureRowCount(Stats(n.Child), n.Child.Output())
		sel := Selectivity(n.Cond, s)
		return filterStats(s, sel, n.Cond)
	case *Project:
		s := ensureRowCount(Stats(n.Child), n.Child.Output())
		return projectStats(s, n.List, n.Output(), len(n.Child.Output()))
	case *Limit:
		s := ensureRowCount(Stats(n.Child), n.Child.Output())
		lim := int64(n.N)
		if s.RowCount > 0 && s.RowCount <= lim {
			return s
		}
		var per int64
		if s.RowCount > 0 {
			per = s.SizeInBytes / max64(s.RowCount, 1)
		} else {
			per = rowWidth(n.Output(), s.Columns)
		}
		return Statistics{
			SizeInBytes: clampSize(float64(max64(per, 1)) * float64(lim)),
			RowCount:    lim,
			Columns:     capNDV(s.Columns, lim),
		}
	case *Join:
		l := ensureRowCount(Stats(n.Left), n.Left.Output())
		r := ensureRowCount(Stats(n.Right), n.Right.Output())
		return joinStats(n, l, r)
	case *Aggregate:
		return aggregateStats(n, ensureRowCount(Stats(n.Child), n.Child.Output()))
	case *Distinct:
		s := ensureRowCount(Stats(n.Child), n.Child.Output())
		if s.RowCount == 0 {
			return s
		}
		rows := groupCount(s, attrExprs(n.Output()))
		return Statistics{
			SizeInBytes: scaledSize(s, rows),
			RowCount:    rows,
			Columns:     capNDV(s.Columns, rows),
		}
	case *Sample:
		s := ensureRowCount(Stats(n.Child), n.Child.Output())
		out := Statistics{
			SizeInBytes: clampSize(float64(s.SizeInBytes) * n.Fraction),
			Columns:     s.Columns,
		}
		if s.RowCount > 0 {
			out.RowCount = max64(1, int64(math.Ceil(float64(s.RowCount)*n.Fraction)))
			out.Columns = capNDV(out.Columns, out.RowCount)
		}
		return out
	case *Sort:
		return Stats(n.Child)
	case *SubqueryAlias:
		return Stats(n.Child) // qualified attrs keep their IDs
	default:
		var total Statistics
		for _, c := range p.Children() {
			s := Stats(c)
			total.SizeInBytes += s.SizeInBytes
			total.RowCount += s.RowCount
		}
		if total.SizeInBytes == 0 {
			total.SizeInBytes = defaultSizeInBytes
		}
		return total
	}
}

// leafStats maps name-keyed collected statistics onto a leaf's attributes.
func leafStats(t *stats.Table, attrs []*expr.AttributeReference) Statistics {
	s := Statistics{
		SizeInBytes: t.SizeInBytes,
		RowCount:    t.RowCount,
		Columns:     make(map[expr.ID]*ColumnStat, len(attrs)),
	}
	if s.SizeInBytes <= 0 {
		s.SizeInBytes = defaultSizeInBytes
	}
	for _, a := range attrs {
		if c, ok := t.Columns[strings.ToLower(a.Name)]; ok {
			s.Columns[a.ID_] = &ColumnStat{
				Min: c.Min, Max: c.Max,
				NullCount: c.NullCount, NDV: c.NDV, AvgWidth: c.AvgWidth,
			}
		}
	}
	return s
}

// ensureRowCount derives a row count from a known size and estimated row
// width so that operators above a sized-but-uncounted relation still get
// cardinalities. The unknown-size default stays unknown.
func ensureRowCount(s Statistics, attrs []*expr.AttributeReference) Statistics {
	if s.RowCount > 0 || s.SizeInBytes <= 0 || s.SizeInBytes >= defaultSizeInBytes {
		return s
	}
	s.RowCount = max64(1, s.SizeInBytes/rowWidth(attrs, s.Columns))
	return s
}

// rowWidth estimates the flat width of one output row in bytes.
func rowWidth(attrs []*expr.AttributeReference, cols map[expr.ID]*ColumnStat) int64 {
	var w float64
	for _, a := range attrs {
		if c := cols[a.ID_]; c != nil && c.AvgWidth > 0 {
			w += c.AvgWidth
			continue
		}
		w += defaultWidth(a.Type)
	}
	if w < 1 {
		w = 1
	}
	return int64(math.Ceil(w))
}

func defaultWidth(t types.DataType) float64 {
	switch {
	case t.Equals(types.Boolean):
		return 1
	case t.Equals(types.Int), t.Equals(types.Float), t.Equals(types.Date):
		return 4
	case t.Equals(types.String), t.Equals(types.Binary):
		return 24
	default:
		return 8
	}
}

func clampSize(f float64) int64 {
	if f < 0 {
		return 0
	}
	if f >= float64(defaultSizeInBytes) {
		return defaultSizeInBytes
	}
	return int64(math.Ceil(f))
}

func scaledSize(s Statistics, rows int64) int64 {
	if s.RowCount <= 0 {
		return s.SizeInBytes
	}
	return clampSize(float64(s.SizeInBytes) * float64(rows) / float64(s.RowCount))
}

// capNDV clamps per-column NDVs at the (reduced) row count.
func capNDV(cols map[expr.ID]*ColumnStat, rows int64) map[expr.ID]*ColumnStat {
	if cols == nil || rows <= 0 {
		return cols
	}
	out := make(map[expr.ID]*ColumnStat, len(cols))
	for id, c := range cols {
		if c.NDV > rows {
			cc := *c
			cc.NDV = rows
			out[id] = &cc
		} else {
			out[id] = c
		}
	}
	return out
}

func attrExprs(attrs []*expr.AttributeReference) []expr.Expression {
	out := make([]expr.Expression, len(attrs))
	for i, a := range attrs {
		out[i] = a
	}
	return out
}

// ---------------------------------------------------------------------------
// Predicate selectivity

// Selectivity estimates the fraction of input rows a predicate keeps,
// always within [0, 1]. Column statistics in s refine the estimate;
// without them, conservative defaults apply.
func Selectivity(cond expr.Expression, s Statistics) float64 {
	return clamp01(selectivity(cond, s))
}

func clamp01(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func selectivity(cond expr.Expression, s Statistics) float64 {
	switch e := cond.(type) {
	case *expr.Literal:
		switch e.Value {
		case true:
			return 1
		case false, nil:
			return 0
		}
		return defaultFilterSel
	case *expr.And:
		return clamp01(selectivity(e.Left, s)) * clamp01(selectivity(e.Right, s))
	case *expr.Or:
		l, r := clamp01(selectivity(e.Left, s)), clamp01(selectivity(e.Right, s))
		return l + r - l*r
	case *expr.Not:
		return 1 - clamp01(selectivity(e.Child, s))
	case *expr.IsNull:
		return nullFraction(e.Child, s)
	case *expr.IsNotNull:
		return 1 - nullFraction(e.Child, s)
	case *expr.In:
		if a, ok := e.Value.(*expr.AttributeReference); ok {
			return clamp01(float64(len(e.List)) * eqSelectivity(s.Columns[a.ID_]))
		}
		return clamp01(float64(len(e.List)) * defaultEqSel)
	case *expr.Comparison:
		return comparisonSelectivity(e, s)
	default:
		return defaultFilterSel
	}
}

func nullFraction(child expr.Expression, s Statistics) float64 {
	if a, ok := child.(*expr.AttributeReference); ok {
		if c := s.Columns[a.ID_]; c != nil && s.RowCount > 0 {
			return clamp01(float64(c.NullCount) / float64(s.RowCount))
		}
		if !a.Null {
			return 0
		}
	}
	return defaultNullSel
}

func eqSelectivity(c *ColumnStat) float64 {
	if c != nil && c.NDV > 0 {
		return 1 / float64(c.NDV)
	}
	return defaultEqSel
}

// attrLit normalizes a comparison to (attribute OP literal), flipping the
// operator when the literal is on the left. ok is false for other shapes.
func attrLit(e *expr.Comparison) (a *expr.AttributeReference, lit any, op expr.CmpOp, ok bool) {
	if l, isAttr := e.Left.(*expr.AttributeReference); isAttr {
		if r, isLit := e.Right.(*expr.Literal); isLit {
			return l, r.Value, e.Op, true
		}
	}
	if r, isAttr := e.Right.(*expr.AttributeReference); isAttr {
		if l, isLit := e.Left.(*expr.Literal); isLit {
			return r, l.Value, flipOp(e.Op), true
		}
	}
	return nil, nil, e.Op, false
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLT:
		return expr.OpGT
	case expr.OpLE:
		return expr.OpGE
	case expr.OpGT:
		return expr.OpLT
	case expr.OpGE:
		return expr.OpLE
	}
	return op
}

func comparisonSelectivity(e *expr.Comparison, s Statistics) float64 {
	a, lit, op, ok := attrLit(e)
	if !ok || lit == nil {
		switch e.Op {
		case expr.OpEQ:
			return defaultEqSel
		case expr.OpNEQ:
			return 1 - defaultEqSel
		default:
			return defaultRangeSel
		}
	}
	c := s.Columns[a.ID_]
	switch op {
	case expr.OpEQ:
		if c != nil && outsideRange(c, lit) {
			return 0
		}
		return eqSelectivity(c)
	case expr.OpNEQ:
		if c != nil && outsideRange(c, lit) {
			return 1
		}
		return 1 - eqSelectivity(c)
	default:
		return rangeSelectivity(c, op, lit)
	}
}

func outsideRange(c *ColumnStat, lit any) bool {
	lo, okLo := toFloat(c.Min)
	hi, okHi := toFloat(c.Max)
	v, okV := toFloat(lit)
	return okLo && okHi && okV && (v < lo || v > hi)
}

// rangeSelectivity interpolates a range predicate's selectivity from the
// column's [min, max] span — monotone in the literal by construction.
func rangeSelectivity(c *ColumnStat, op expr.CmpOp, lit any) float64 {
	if c == nil {
		return defaultRangeSel
	}
	lo, okLo := toFloat(c.Min)
	hi, okHi := toFloat(c.Max)
	v, okV := toFloat(lit)
	if !okLo || !okHi || !okV {
		return defaultRangeSel
	}
	var below float64 // fraction with value < lit (≈ ≤ for continuous ranges)
	switch {
	case v <= lo:
		below = 0
	case v >= hi:
		below = 1
	case hi == lo:
		below = 1
	default:
		below = (v - lo) / (hi - lo)
	}
	switch op {
	case expr.OpLT, expr.OpLE:
		return clamp01(below)
	default: // OpGT, OpGE
		return clamp01(1 - below)
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return float64(x), true
	default:
		return 0, false
	}
}

// filterStats scales child statistics by a selectivity and tightens the
// filtered columns' stats for conjuncts of the form attr OP literal.
func filterStats(s Statistics, sel float64, cond expr.Expression) Statistics {
	out := Statistics{
		SizeInBytes: clampSize(float64(s.SizeInBytes) * sel),
		Columns:     s.Columns,
	}
	if s.RowCount > 0 {
		out.RowCount = max64(1, int64(math.Ceil(float64(s.RowCount)*sel)))
		out.Columns = capNDV(out.Columns, out.RowCount)
	}
	if out.SizeInBytes == 0 && s.SizeInBytes > 0 {
		out.SizeInBytes = 1
	}
	out.Columns = tightenColumns(out.Columns, cond)
	return out
}

// tightenColumns narrows min/max bounds for top-level AND'd range
// conjuncts, so stacked filters compose instead of double-counting.
func tightenColumns(cols map[expr.ID]*ColumnStat, cond expr.Expression) map[expr.ID]*ColumnStat {
	if cols == nil {
		return nil
	}
	conjuncts := expr.SplitConjuncts(cond)
	changed := false
	for _, cj := range conjuncts {
		cmp, ok := cj.(*expr.Comparison)
		if !ok {
			continue
		}
		a, lit, op, ok := attrLit(cmp)
		if !ok || lit == nil {
			continue
		}
		c := cols[a.ID_]
		if c == nil {
			continue
		}
		if !changed {
			cols = copyCols(cols)
			changed = true
		}
		cc := *cols[a.ID_]
		switch op {
		case expr.OpEQ:
			cc.Min, cc.Max, cc.NDV = lit, lit, 1
		case expr.OpLT, expr.OpLE:
			if cc.Max == nil || compareValues(lit, cc.Max) < 0 {
				cc.Max = lit
			}
		case expr.OpGT, expr.OpGE:
			if cc.Min == nil || compareValues(lit, cc.Min) > 0 {
				cc.Min = lit
			}
		}
		cc.NullCount = 0 // comparisons never keep NULLs
		cols[a.ID_] = &cc
	}
	return cols
}

func copyCols(cols map[expr.ID]*ColumnStat) map[expr.ID]*ColumnStat {
	out := make(map[expr.ID]*ColumnStat, len(cols))
	for id, c := range cols {
		out[id] = c
	}
	return out
}

// compareValues orders two values when same-typed, else reports 0.
func compareValues(a, b any) int {
	fa, okA := toFloat(a)
	fb, okB := toFloat(b)
	if okA && okB {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	sa, okA := a.(string)
	sb, okB := b.(string)
	if okA && okB {
		return strings.Compare(sa, sb)
	}
	return 0
}

// ---------------------------------------------------------------------------
// Operator propagation

func projectStats(s Statistics, list []expr.Expression, out []*expr.AttributeReference, inCols int) Statistics {
	cols := make(map[expr.ID]*ColumnStat)
	for _, e := range list {
		switch x := e.(type) {
		case *expr.AttributeReference:
			if c := s.Columns[x.ID_]; c != nil {
				cols[x.ID_] = c
			}
		case *expr.Alias:
			if ar, ok := x.Child.(*expr.AttributeReference); ok {
				if c := s.Columns[ar.ID_]; c != nil {
					cols[x.ID_] = c
				}
			}
		}
	}
	res := Statistics{RowCount: s.RowCount, Columns: cols}
	if s.RowCount > 0 {
		res.SizeInBytes = clampSize(float64(s.RowCount) * float64(rowWidth(out, cols)))
		return res
	}
	// Row count unknown: fall back to scaling size by column-count ratio.
	res.SizeInBytes = s.SizeInBytes
	if inCols > 0 && len(list) < inCols {
		res.SizeInBytes = clampSize(float64(s.SizeInBytes) * float64(len(list)) / float64(inCols))
	}
	return res
}

// equiKeys extracts equi-join attribute pairs (left attr, right attr) from
// a join condition, plus whether any non-equi conjunct remains.
func equiKeys(j *Join) (pairs [][2]*expr.AttributeReference, residual bool) {
	if j.Cond == nil {
		return nil, false
	}
	leftOut := OutputSet(j.Left)
	rightOut := OutputSet(j.Right)
	for _, cj := range expr.SplitConjuncts(j.Cond) {
		cmp, ok := cj.(*expr.Comparison)
		if ok && cmp.Op == expr.OpEQ {
			la, lOK := cmp.Left.(*expr.AttributeReference)
			ra, rOK := cmp.Right.(*expr.AttributeReference)
			if lOK && rOK {
				switch {
				case leftOut.Contains(la.ID_) && rightOut.Contains(ra.ID_):
					pairs = append(pairs, [2]*expr.AttributeReference{la, ra})
					continue
				case leftOut.Contains(ra.ID_) && rightOut.Contains(la.ID_):
					pairs = append(pairs, [2]*expr.AttributeReference{ra, la})
					continue
				}
			}
		}
		residual = true
	}
	return pairs, residual
}

func mergeColumns(l, r map[expr.ID]*ColumnStat) map[expr.ID]*ColumnStat {
	if l == nil && r == nil {
		return nil
	}
	out := make(map[expr.ID]*ColumnStat, len(l)+len(r))
	for id, c := range l {
		out[id] = c
	}
	for id, c := range r {
		out[id] = c
	}
	return out
}

func joinStats(j *Join, l, r Statistics) Statistics {
	cols := mergeColumns(l.Columns, r.Columns)
	if j.Type == LeftSemiJoin {
		cols = l.Columns
	}
	if l.RowCount == 0 || r.RowCount == 0 {
		// Cardinalities unknown: keep the additive pre-CBO estimate, which
		// is safely pessimistic for broadcast selection.
		return Statistics{SizeInBytes: satAdd(l.SizeInBytes, r.SizeInBytes), Columns: cols}
	}
	inner := float64(l.RowCount) * float64(r.RowCount)
	pairs, residual := equiKeys(j)
	for _, p := range pairs {
		d := float64(keyNDV(l, r, p))
		if d > 1 {
			inner /= d
		}
	}
	if len(pairs) == 0 && residual {
		inner *= defaultRangeSel
	} else if residual {
		inner *= defaultFilterSel
	}
	if inner < 1 {
		inner = 1
	}
	var rows float64
	switch j.Type {
	case LeftOuterJoin:
		rows = math.Max(inner, float64(l.RowCount))
	case RightOuterJoin:
		rows = math.Max(inner, float64(r.RowCount))
	case FullOuterJoin:
		rows = math.Max(inner, float64(l.RowCount)+float64(r.RowCount))
	case LeftSemiJoin:
		rows = math.Min(inner, float64(l.RowCount))
	default: // Inner, Cross
		rows = inner
	}
	rowCount := int64(math.Ceil(rows))
	if rowCount < 1 {
		rowCount = 1
	}
	out := Statistics{
		RowCount:    rowCount,
		SizeInBytes: clampSize(rows * float64(rowWidth(j.Output(), cols))),
		Columns:     capNDV(cols, rowCount),
	}
	if out.SizeInBytes == 0 {
		out.SizeInBytes = 1
	}
	return out
}

// keyNDV picks the divisor for one equi-key pair: max of the two sides'
// NDVs, falling back to the larger row count (a foreign-key join against a
// distinct key produces about max(|L|,|R|)·smaller/larger rows).
func keyNDV(l, r Statistics, p [2]*expr.AttributeReference) int64 {
	var ln, rn int64
	if c := l.Columns[p[0].ID_]; c != nil {
		ln = c.NDV
	}
	if c := r.Columns[p[1].ID_]; c != nil {
		rn = c.NDV
	}
	if ln == 0 && rn == 0 {
		return max64(l.RowCount, r.RowCount)
	}
	return max64(ln, rn)
}

func satAdd(a, b int64) int64 {
	if a > defaultSizeInBytes-b {
		return defaultSizeInBytes
	}
	return a + b
}

// groupCount estimates the number of distinct groups for a key list as the
// product of per-key NDVs, clamped to the child row count. Keys without
// statistics assume ~16 rows per group.
func groupCount(s Statistics, keys []expr.Expression) int64 {
	if len(keys) == 0 {
		return 1
	}
	prod := 1.0
	for _, k := range keys {
		var ndv int64
		if a, ok := k.(*expr.AttributeReference); ok {
			if c := s.Columns[a.ID_]; c != nil {
				ndv = c.NDV
			}
		}
		if _, isLit := k.(*expr.Literal); isLit {
			ndv = 1
		}
		if ndv <= 0 {
			ndv = max64(1, s.RowCount/16)
		}
		prod *= float64(ndv)
		if prod > float64(s.RowCount) {
			return max64(1, s.RowCount)
		}
	}
	return max64(1, min64(int64(math.Ceil(prod)), s.RowCount))
}

func aggregateStats(n *Aggregate, s Statistics) Statistics {
	if s.RowCount == 0 {
		// Unknown cardinality: keep the legacy size shrink but don't
		// invent rows.
		return Statistics{SizeInBytes: max64(1, s.SizeInBytes/4)}
	}
	rows := groupCount(s, n.Grouping)
	cols := make(map[expr.ID]*ColumnStat)
	for _, e := range n.Aggs {
		switch x := e.(type) {
		case *expr.AttributeReference:
			if c := s.Columns[x.ID_]; c != nil {
				cols[x.ID_] = c
			}
		case *expr.Alias:
			if ar, ok := x.Child.(*expr.AttributeReference); ok {
				if c := s.Columns[ar.ID_]; c != nil {
					cols[x.ID_] = c
				}
			}
		}
	}
	return Statistics{
		SizeInBytes: clampSize(float64(rows) * float64(rowWidth(n.Output(), cols))),
		RowCount:    rows,
		Columns:     capNDV(cols, rows),
	}
}

// ---------------------------------------------------------------------------
// Annotated formatting

// FormatEstimated renders a plan subtree with per-node cost annotations —
// the EXPLAIN surface of the statistics subsystem. Unresolved nodes (whose
// Output would panic) render plain.
func FormatEstimated(p LogicalPlan) string {
	var sb strings.Builder
	writeTreeEstimated(&sb, p, 0)
	return sb.String()
}

func writeTreeEstimated(sb *strings.Builder, p LogicalPlan, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(p.SimpleString())
	if p.Resolved() {
		sb.WriteString("  (")
		sb.WriteString(Stats(p).EstString())
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	for _, c := range p.Children() {
		writeTreeEstimated(sb, c, depth+1)
	}
}

// AttachStats installs collected statistics on the leaf relation beneath p
// (unwrapping aliases), reporting whether a stats-capable leaf was found.
// Leaves are shared by reference from the catalog, so attachment is
// visible to every query planned afterwards.
func AttachStats(p LogicalPlan, t *stats.Table) bool {
	switch n := p.(type) {
	case *SubqueryAlias:
		return AttachStats(n.Child, t)
	case *LocalRelation:
		n.TableStats = t
	case *DataSourceRelation:
		n.TableStats = t
	case *LogicalRDD:
		n.TableStats = t
	case *InMemoryRelation:
		n.TableStats = t
	default:
		return false
	}
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
