package types

import (
	"testing"
	"testing/quick"
)

func TestParseDecimal(t *testing.T) {
	cases := []struct {
		in       string
		unscaled int64
		scale    int
	}{
		{"123.45", 12345, 2},
		{"-7.5", -75, 1},
		{"0.001", 1, 3},
		{"42", 42, 0},
		{"+3.14", 314, 2},
		{".5", 5, 1},
	}
	for _, c := range cases {
		d, err := ParseDecimal(c.in)
		if err != nil {
			t.Fatalf("ParseDecimal(%q): %v", c.in, err)
		}
		if d.Unscaled != c.unscaled || d.Scale != c.scale {
			t.Errorf("ParseDecimal(%q) = %+v", c.in, d)
		}
	}
	if _, err := ParseDecimal("abc"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestDecimalString(t *testing.T) {
	cases := []struct {
		d    Decimal
		want string
	}{
		{NewDecimal(12345, 2), "123.45"},
		{NewDecimal(-75, 1), "-7.5"},
		{NewDecimal(5, 3), "0.005"},
		{NewDecimal(42, 0), "42"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDecimalArithmetic(t *testing.T) {
	a := NewDecimal(1050, 2) // 10.50
	b := NewDecimal(25, 1)   // 2.5
	if got := a.Add(b); got.String() != "13.00" {
		t.Errorf("10.50 + 2.5 = %s", got)
	}
	if got := a.Sub(b); got.String() != "8.00" {
		t.Errorf("10.50 - 2.5 = %s", got)
	}
	if got := a.Mul(b); got.String() != "26.250" {
		t.Errorf("10.50 * 2.5 = %s", got)
	}
	if got := a.Div(b); got.String() != "4.20" {
		t.Errorf("10.50 / 2.5 = %s", got)
	}
}

func TestDecimalCompare(t *testing.T) {
	a := NewDecimal(100, 2) // 1.00
	b := NewDecimal(1, 0)   // 1
	if a.Cmp(b) != 0 {
		t.Error("1.00 == 1 across scales")
	}
	if NewDecimal(99, 2).Cmp(b) != -1 || NewDecimal(101, 2).Cmp(b) != 1 {
		t.Error("ordering wrong")
	}
}

func TestDecimalRescale(t *testing.T) {
	d := NewDecimal(12345, 2) // 123.45
	if up := d.Rescale(4); up.Unscaled != 1234500 || up.Scale != 4 {
		t.Errorf("upscale = %+v", up)
	}
	if down := d.Rescale(1); down.Unscaled != 1234 || down.Scale != 1 {
		t.Errorf("downscale truncates: %+v", down)
	}
	if same := d.Rescale(2); same != d {
		t.Error("identity rescale")
	}
}

// Property: Add is commutative and Sub inverts Add (within range).
func TestDecimalAddProperties(t *testing.T) {
	f := func(ua, ub int32, sa, sb uint8) bool {
		a := NewDecimal(int64(ua), int(sa%5))
		b := NewDecimal(int64(ub), int(sb%5))
		if a.Add(b).Cmp(b.Add(a)) != 0 {
			return false
		}
		return a.Add(b).Sub(b).Cmp(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Float64 and String agree with unscaled math.
func TestDecimalFloatConsistency(t *testing.T) {
	f := func(u int32, s uint8) bool {
		d := NewDecimal(int64(u), int(s%4))
		parsed, err := ParseDecimal(d.String())
		if err != nil {
			return false
		}
		return parsed.Cmp(d) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
