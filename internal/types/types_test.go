package types

import (
	"testing"
	"testing/quick"
)

func TestAtomicEquality(t *testing.T) {
	atoms := []DataType{Null, Boolean, Int, Long, Float, Double, String, Binary, Date, Timestamp}
	for i, a := range atoms {
		for j, b := range atoms {
			if (i == j) != a.Equals(b) {
				t.Errorf("%s.Equals(%s) = %v", a.Name(), b.Name(), a.Equals(b))
			}
		}
	}
}

func TestParameterizedEquality(t *testing.T) {
	if !(DecimalType{10, 2}).Equals(DecimalType{10, 2}) {
		t.Error("equal decimals should match")
	}
	if (DecimalType{10, 2}).Equals(DecimalType{10, 3}) {
		t.Error("different scales should not match")
	}
	a1 := ArrayType{Elem: Int, ContainsNull: false}
	a2 := ArrayType{Elem: Int, ContainsNull: true}
	if a1.Equals(a2) {
		t.Error("ContainsNull is part of array identity")
	}
	if !a1.Equals(ArrayType{Elem: Int}) {
		t.Error("structurally equal arrays should match")
	}
	m := MapType{Key: String, Value: Double}
	if !m.Equals(MapType{Key: String, Value: Double}) || m.Equals(MapType{Key: String, Value: Int}) {
		t.Error("map equality is structural")
	}
}

func TestStructTypeBasics(t *testing.T) {
	s := StructType{}.Add("a", Int, false).Add("B", String, true)
	if s.FieldIndex("b") != 1 {
		t.Error("field lookup is case-insensitive")
	}
	if s.FieldIndex("missing") != -1 {
		t.Error("missing fields return -1")
	}
	if got := s.Name(); got != "STRUCT<a INT NOT NULL, B STRING>" {
		t.Errorf("Name() = %q", got)
	}
	if len(s.FieldNames()) != 2 || s.FieldNames()[0] != "a" {
		t.Errorf("FieldNames = %v", s.FieldNames())
	}
	// Add must not mutate the receiver.
	s2 := s.Add("c", Double, true)
	if len(s.Fields) != 2 || len(s2.Fields) != 3 {
		t.Error("Add should be persistent")
	}
}

func TestPredicateHelpers(t *testing.T) {
	if !IsNumeric(Int) || !IsNumeric(DecimalType{5, 2}) || IsNumeric(String) {
		t.Error("IsNumeric wrong")
	}
	if !IsIntegral(Long) || IsIntegral(Double) {
		t.Error("IsIntegral wrong")
	}
	if !IsOrdered(String) || !IsOrdered(Date) || IsOrdered(ArrayType{Elem: Int}) {
		t.Error("IsOrdered wrong")
	}
	if !IsAtomic(Boolean) || IsAtomic(StructType{}) {
		t.Error("IsAtomic wrong")
	}
}

func TestTightestCommonTypeNumericLattice(t *testing.T) {
	cases := []struct {
		a, b, want DataType
	}{
		{Int, Int, Int},
		{Int, Long, Long},
		{Long, Double, Double},
		{Int, Double, Double},
		{Float, Double, Double},
		{Null, Int, Int},
		{Int, Null, Int},
		{Date, Timestamp, Timestamp},
		{Int, DecimalType{10, 2}, DecimalType{10, 2}},
	}
	for _, c := range cases {
		got, ok := TightestCommonType(c.a, c.b)
		if !ok || !got.Equals(c.want) {
			t.Errorf("TightestCommonType(%s, %s) = %v, want %s", c.a.Name(), c.b.Name(), got, c.want.Name())
		}
	}
	if _, ok := TightestCommonType(Int, String); ok {
		t.Error("INT and STRING have no tightest common type")
	}
}

func TestTightestCommonTypeDecimalWidening(t *testing.T) {
	got, ok := TightestCommonType(DecimalType{5, 2}, DecimalType{4, 3})
	if !ok {
		t.Fatal("decimals should merge")
	}
	// int digits: max(3,1)=3; scale: max(2,3)=3 -> DECIMAL(6,3)
	if !got.Equals(DecimalType{6, 3}) {
		t.Errorf("got %s, want DECIMAL(6,3)", got.Name())
	}
}

// Property: TightestCommonType is commutative and idempotent over the
// atomic lattice.
func TestTightestCommonTypeProperties(t *testing.T) {
	atoms := []DataType{Null, Boolean, Int, Long, Float, Double, String, Date, Timestamp}
	f := func(i, j uint8) bool {
		a := atoms[int(i)%len(atoms)]
		b := atoms[int(j)%len(atoms)]
		ab, okAB := TightestCommonType(a, b)
		ba, okBA := TightestCommonType(b, a)
		if okAB != okBA {
			return false
		}
		if okAB && !ab.Equals(ba) {
			return false
		}
		self, okSelf := TightestCommonType(a, a)
		return okSelf && self.Equals(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructMerge(t *testing.T) {
	a := StructType{}.Add("x", Int, false).Add("y", String, false)
	b := StructType{}.Add("x", Long, false).Add("z", Double, false)
	got, ok := TightestCommonType(a, b)
	if !ok {
		t.Fatal("structs should merge")
	}
	st := got.(StructType)
	if st.FieldIndex("x") < 0 || st.FieldIndex("y") < 0 || st.FieldIndex("z") < 0 {
		t.Fatalf("merged fields = %v", st.FieldNames())
	}
	if !st.Fields[st.FieldIndex("x")].Type.Equals(Long) {
		t.Error("x should widen to LONG")
	}
	// y only in a, z only in b: both nullable after merge.
	if !st.Fields[st.FieldIndex("y")].Nullable || !st.Fields[st.FieldIndex("z")].Nullable {
		t.Error("one-sided fields become nullable")
	}
}

func TestMostSpecificSupertypeFallsBackToString(t *testing.T) {
	if got := MostSpecificSupertype(Int, Boolean); !got.Equals(String) {
		t.Errorf("INT vs BOOLEAN -> %s, want STRING", got.Name())
	}
	// Arrays generalize element-wise.
	got := MostSpecificSupertype(
		ArrayType{Elem: Int, ContainsNull: false},
		ArrayType{Elem: String, ContainsNull: false})
	want := ArrayType{Elem: String, ContainsNull: false}
	if !got.Equals(want) {
		t.Errorf("array generalization = %s", got.Name())
	}
	// Structs with clashing field types generalize the field.
	a := StructType{}.Add("v", Int, false)
	b := StructType{}.Add("v", Boolean, false)
	st := MostSpecificSupertype(a, b).(StructType)
	if !st.Fields[0].Type.Equals(String) {
		t.Errorf("clashing struct field = %s", st.Fields[0].Type.Name())
	}
}

// Property: MostSpecificSupertype never fails and is commutative.
func TestMostSpecificSupertypeTotal(t *testing.T) {
	pool := []DataType{
		Null, Boolean, Int, Long, Double, String, Date,
		ArrayType{Elem: Int}, ArrayType{Elem: String},
		StructType{}.Add("a", Int, false),
		StructType{}.Add("a", Double, true).Add("b", String, false),
	}
	f := func(i, j uint8) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		ab := MostSpecificSupertype(a, b)
		ba := MostSpecificSupertype(b, a)
		return ab != nil && ab.Equals(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
