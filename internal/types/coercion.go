package types

// This file implements implicit type coercion: the "tightest common type"
// lattice used both by the analyzer's type-coercion rules (paper §4.3.1,
// "propagating and coercing types through expressions") and by the JSON
// schema-inference algorithm's "most specific supertype" merge (paper §5.1).

// TightestCommonType returns the most specific type that both a and b can be
// widened to without an explicit cast, and whether such a type exists.
//
// The lattice follows the paper's JSON inference description: integers widen
// to LONG, then DECIMAL, then FLOAT/DOUBLE when fractional values appear;
// incompatible atomic types fall back to STRING only in the inference merge
// (see PromoteToString), not here.
func TightestCommonType(a, b DataType) (DataType, bool) {
	switch {
	case a.Equals(b):
		return a, true
	case a.Equals(Null):
		return b, true
	case b.Equals(Null):
		return a, true
	}

	an, aok := a.(NumericType)
	bn, bok := b.(NumericType)
	if aok && bok && an.numericRank() > 0 && bn.numericRank() > 0 {
		return widerNumeric(an, bn), true
	}

	// Date widens to Timestamp.
	if (a.Equals(Date) && b.Equals(Timestamp)) || (a.Equals(Timestamp) && b.Equals(Date)) {
		return Timestamp, true
	}

	// Structurally merge arrays.
	if aa, ok := a.(ArrayType); ok {
		if bb, ok := b.(ArrayType); ok {
			elem, ok := TightestCommonType(aa.Elem, bb.Elem)
			if !ok {
				return nil, false
			}
			return ArrayType{Elem: elem, ContainsNull: aa.ContainsNull || bb.ContainsNull}, true
		}
	}

	// Structurally merge maps.
	if am, ok := a.(MapType); ok {
		if bm, ok := b.(MapType); ok {
			k, ok1 := TightestCommonType(am.Key, bm.Key)
			v, ok2 := TightestCommonType(am.Value, bm.Value)
			if !ok1 || !ok2 {
				return nil, false
			}
			return MapType{Key: k, Value: v, ValueContainsNull: am.ValueContainsNull || bm.ValueContainsNull}, true
		}
	}

	// Structurally merge structs by field name (union of fields; a field
	// missing on one side becomes nullable).
	if as, ok := a.(StructType); ok {
		if bs, ok := b.(StructType); ok {
			return mergeStructs(as, bs)
		}
	}

	return nil, false
}

func widerNumeric(a, b NumericType) DataType {
	// Two decimals merge by widening precision/scale.
	ad, aIsDec := a.(DecimalType)
	bd, bIsDec := b.(DecimalType)
	if aIsDec && bIsDec {
		scale := max(ad.Scale, bd.Scale)
		intDigits := max(ad.Precision-ad.Scale, bd.Precision-bd.Scale)
		return DecimalType{Precision: intDigits + scale, Scale: scale}
	}
	if a.numericRank() >= b.numericRank() {
		return a.(DataType)
	}
	return b.(DataType)
}

func mergeStructs(a, b StructType) (DataType, bool) {
	merged := StructType{}
	for _, f := range a.Fields {
		j := b.FieldIndex(f.Name)
		if j < 0 {
			// Present only in a: field may be absent, hence nullable.
			merged = merged.Add(f.Name, f.Type, true)
			continue
		}
		g := b.Fields[j]
		t, ok := TightestCommonType(f.Type, g.Type)
		if !ok {
			// In analyzer coercion this is an error; the JSON-inference
			// merge instead falls back to STRING via PromoteToString.
			return nil, false
		}
		merged = merged.Add(f.Name, t, f.Nullable || g.Nullable)
	}
	for _, g := range b.Fields {
		if merged.FieldIndex(g.Name) < 0 {
			merged = merged.Add(g.Name, g.Type, true)
		}
	}
	return merged, true
}

// MostSpecificSupertype is the associative merge used by JSON schema
// inference (paper §5.1): like TightestCommonType, but fields that display
// multiple incompatible types generalize to STRING, "preserving the original
// JSON representation", instead of failing.
func MostSpecificSupertype(a, b DataType) DataType {
	if t, ok := TightestCommonType(a, b); ok {
		return t
	}
	// Arrays of incompatible elements generalize element-wise.
	if aa, ok := a.(ArrayType); ok {
		if bb, ok := b.(ArrayType); ok {
			return ArrayType{
				Elem:         MostSpecificSupertype(aa.Elem, bb.Elem),
				ContainsNull: aa.ContainsNull || bb.ContainsNull,
			}
		}
	}
	if as, ok := a.(StructType); ok {
		if bs, ok := b.(StructType); ok {
			return mergeStructsLenient(as, bs)
		}
	}
	return String
}

func mergeStructsLenient(a, b StructType) StructType {
	merged := StructType{}
	for _, f := range a.Fields {
		j := b.FieldIndex(f.Name)
		if j < 0 {
			merged = merged.Add(f.Name, f.Type, true)
			continue
		}
		g := b.Fields[j]
		merged = merged.Add(f.Name, MostSpecificSupertype(f.Type, g.Type), f.Nullable || g.Nullable)
	}
	for _, g := range b.Fields {
		if merged.FieldIndex(g.Name) < 0 {
			merged = merged.Add(g.Name, g.Type, true)
		}
	}
	return merged
}
