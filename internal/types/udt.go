package types

import (
	"fmt"
	"sync"
)

// UserDefinedType maps a user's Go type onto a structure of built-in
// Catalyst types (paper §4.4.2). Registering a UDT supplies a serializer to
// a row of built-in values and a deserializer back; the engine then stores
// and ships the value as its SQL representation (e.g. a two-DOUBLE struct
// for a 2-D point), including in the columnar cache and in data sources.
type UserDefinedType interface {
	// TypeName is the registered name, e.g. "point".
	TypeName() string
	// SQLType is the built-in structure the user type maps to.
	SQLType() DataType
	// Serialize converts a user object to its SQL representation. For a
	// struct SQLType the result is a []any in field order.
	Serialize(obj any) (any, error)
	// Deserialize converts the SQL representation back to the user object.
	Deserialize(v any) (any, error)
}

// UDTType adapts a UserDefinedType into a DataType so user types flow
// through schemas like built-in types. Two UDTTypes are equal when their
// registered names match.
type UDTType struct {
	UDT UserDefinedType
}

func (u UDTType) Name() string { return fmt.Sprintf("UDT<%s>", u.UDT.TypeName()) }
func (u UDTType) Equals(other DataType) bool {
	o, ok := other.(UDTType)
	return ok && o.UDT.TypeName() == u.UDT.TypeName()
}
func (u UDTType) String() string { return u.Name() }

// UDTRegistry tracks registered user-defined types by name. It is safe for
// concurrent use.
type UDTRegistry struct {
	mu     sync.RWMutex
	byName map[string]UserDefinedType
}

// NewUDTRegistry returns an empty registry.
func NewUDTRegistry() *UDTRegistry {
	return &UDTRegistry{byName: make(map[string]UserDefinedType)}
}

// Register adds a UDT; registering a duplicate name is an error.
func (r *UDTRegistry) Register(udt UserDefinedType) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[udt.TypeName()]; dup {
		return fmt.Errorf("types: UDT %q already registered", udt.TypeName())
	}
	r.byName[udt.TypeName()] = udt
	return nil
}

// Lookup returns the UDT registered under name.
func (r *UDTRegistry) Lookup(name string) (UserDefinedType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	udt, ok := r.byName[name]
	return udt, ok
}
