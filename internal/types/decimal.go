package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Decimal is a fixed-precision decimal value: an unscaled 64-bit integer
// plus a scale. DECIMAL(p, s) values with p <= MaxLongDigits fit, which is
// what the paper's DecimalAggregates rule (§4.3.2) exploits: sums on
// small-precision decimals are computed on the unscaled LONG directly.
type Decimal struct {
	Unscaled int64
	Scale    int
}

// NewDecimal builds a Decimal from an unscaled value and scale.
func NewDecimal(unscaled int64, scale int) Decimal {
	return Decimal{Unscaled: unscaled, Scale: scale}
}

// ParseDecimal parses a literal like "123.45" into a Decimal, inferring the
// scale from the fractional digits.
func ParseDecimal(s string) (Decimal, error) {
	neg := false
	body := s
	if strings.HasPrefix(body, "-") {
		neg = true
		body = body[1:]
	} else if strings.HasPrefix(body, "+") {
		body = body[1:]
	}
	intPart, fracPart, _ := strings.Cut(body, ".")
	if intPart == "" {
		intPart = "0"
	}
	digits := intPart + fracPart
	u, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return Decimal{}, fmt.Errorf("types: invalid decimal literal %q: %w", s, err)
	}
	if neg {
		u = -u
	}
	return Decimal{Unscaled: u, Scale: len(fracPart)}, nil
}

// Float64 converts the decimal to a float64 (lossy for large values).
func (d Decimal) Float64() float64 {
	return float64(d.Unscaled) / float64(pow10(d.Scale))
}

// Rescale returns a decimal equal in value but with the given scale.
// Scaling down truncates toward zero.
func (d Decimal) Rescale(scale int) Decimal {
	switch {
	case scale == d.Scale:
		return d
	case scale > d.Scale:
		return Decimal{Unscaled: d.Unscaled * pow10(scale-d.Scale), Scale: scale}
	default:
		return Decimal{Unscaled: d.Unscaled / pow10(d.Scale-scale), Scale: scale}
	}
}

// Add returns d+o at the wider of the two scales.
func (d Decimal) Add(o Decimal) Decimal {
	s := max(d.Scale, o.Scale)
	return Decimal{Unscaled: d.Rescale(s).Unscaled + o.Rescale(s).Unscaled, Scale: s}
}

// Sub returns d-o at the wider of the two scales.
func (d Decimal) Sub(o Decimal) Decimal {
	s := max(d.Scale, o.Scale)
	return Decimal{Unscaled: d.Rescale(s).Unscaled - o.Rescale(s).Unscaled, Scale: s}
}

// Mul returns d*o; the result scale is the sum of the operand scales.
func (d Decimal) Mul(o Decimal) Decimal {
	return Decimal{Unscaled: d.Unscaled * o.Unscaled, Scale: d.Scale + o.Scale}
}

// Div returns d/o at d's scale (truncating), matching unscaled LONG
// division semantics. Division by a zero decimal panics like integer
// division; callers guard for SQL NULL-on-zero semantics.
func (d Decimal) Div(o Decimal) Decimal {
	// Widen the numerator so the quotient keeps d.Scale digits.
	num := d.Unscaled * pow10(o.Scale)
	return Decimal{Unscaled: num / o.Unscaled, Scale: d.Scale}
}

// Cmp compares two decimals numerically: -1, 0 or 1.
func (d Decimal) Cmp(o Decimal) int {
	s := max(d.Scale, o.Scale)
	a, b := d.Rescale(s).Unscaled, o.Rescale(s).Unscaled
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// IsZero reports whether the decimal equals zero.
func (d Decimal) IsZero() bool { return d.Unscaled == 0 }

func (d Decimal) String() string {
	if d.Scale == 0 {
		return strconv.FormatInt(d.Unscaled, 10)
	}
	u := d.Unscaled
	sign := ""
	if u < 0 {
		sign = "-"
		u = -u
	}
	p := pow10(d.Scale)
	return fmt.Sprintf("%s%d.%0*d", sign, u/p, d.Scale, u%p)
}

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}
