// Package types implements the Spark SQL data model (paper §3.2): a nested
// type system based on Hive's, with all major SQL atomic types plus complex
// types (structs, arrays, maps) that can be nested arbitrarily, and
// user-defined types (paper §4.4.2) that map onto built-in structures.
package types

import (
	"fmt"
	"strings"
)

// DataType is the interface implemented by every Spark SQL type object.
// Type objects are immutable; atomic types are singletons (Boolean, Int,
// ...), while parameterized types (Decimal, Array, Map, Struct) are values
// compared structurally with Equals.
type DataType interface {
	// Name returns the SQL-ish name of the type, e.g. "INT" or
	// "ARRAY<STRING>".
	Name() string
	// Equals reports whether two type objects denote the same type.
	Equals(other DataType) bool
}

// NumericType is implemented by types that participate in arithmetic and in
// numeric widening.
type NumericType interface {
	DataType
	// widerThan orders numeric types for implicit widening; a larger rank
	// absorbs a smaller one (Int -> Long -> Decimal -> Float -> Double,
	// mirroring Hive/Spark SQL numeric precedence).
	numericRank() int
}

// atomic is the common implementation for parameterless types.
type atomic struct {
	name string
	rank int // numeric rank; 0 for non-numeric
}

func (a atomic) Name() string { return a.name }
func (a atomic) Equals(other DataType) bool {
	o, ok := other.(atomic)
	return ok && o.name == a.name
}
func (a atomic) numericRank() int { return a.rank }
func (a atomic) String() string   { return a.name }

// The atomic type singletons.
var (
	Null      DataType = atomic{name: "NULL"}
	Boolean   DataType = atomic{name: "BOOLEAN"}
	Int       DataType = atomic{name: "INT", rank: 1}
	Long      DataType = atomic{name: "BIGINT", rank: 2}
	Float     DataType = atomic{name: "FLOAT", rank: 4}
	Double    DataType = atomic{name: "DOUBLE", rank: 5}
	String    DataType = atomic{name: "STRING"}
	Binary    DataType = atomic{name: "BINARY"}
	Date      DataType = atomic{name: "DATE"}      // days since Unix epoch, int32
	Timestamp DataType = atomic{name: "TIMESTAMP"} // microseconds since Unix epoch, int64
)

// DecimalType is a fixed-precision decimal. Values are represented as
// Decimal structs holding an unscaled int64 (the paper's DecimalAggregates
// rule, §4.3.2, depends on small-precision decimals fitting in a LONG).
type DecimalType struct {
	Precision int
	Scale     int
}

// MaxLongDigits is the maximum number of decimal digits representable in an
// int64 unscaled value; the DecimalAggregates optimization applies only when
// prec+10 stays within this bound (paper §4.3.2).
const MaxLongDigits = 18

func (d DecimalType) Name() string { return fmt.Sprintf("DECIMAL(%d,%d)", d.Precision, d.Scale) }
func (d DecimalType) Equals(other DataType) bool {
	o, ok := other.(DecimalType)
	return ok && o == d
}
func (d DecimalType) numericRank() int { return 3 }
func (d DecimalType) String() string   { return d.Name() }

var _ NumericType = DecimalType{}

// ArrayType is a sequence of elements of a single type.
type ArrayType struct {
	Elem         DataType
	ContainsNull bool
}

func (a ArrayType) Name() string {
	if a.ContainsNull {
		return fmt.Sprintf("ARRAY<%s>", a.Elem.Name())
	}
	return fmt.Sprintf("ARRAY<%s NOT NULL>", a.Elem.Name())
}
func (a ArrayType) Equals(other DataType) bool {
	o, ok := other.(ArrayType)
	return ok && o.ContainsNull == a.ContainsNull && o.Elem.Equals(a.Elem)
}
func (a ArrayType) String() string { return a.Name() }

// MapType maps keys of one type to values of another.
type MapType struct {
	Key               DataType
	Value             DataType
	ValueContainsNull bool
}

func (m MapType) Name() string {
	return fmt.Sprintf("MAP<%s,%s>", m.Key.Name(), m.Value.Name())
}
func (m MapType) Equals(other DataType) bool {
	o, ok := other.(MapType)
	return ok && o.ValueContainsNull == m.ValueContainsNull &&
		o.Key.Equals(m.Key) && o.Value.Equals(m.Value)
}
func (m MapType) String() string { return m.Name() }

// StructField is a named, typed, possibly-nullable field of a StructType.
type StructField struct {
	Name     string
	Type     DataType
	Nullable bool
}

func (f StructField) String() string {
	s := fmt.Sprintf("%s %s", f.Name, f.Type.Name())
	if !f.Nullable {
		s += " NOT NULL"
	}
	return s
}

// StructType is an ordered collection of StructFields. It doubles as the
// schema of a DataFrame / relation.
type StructType struct {
	Fields []StructField
}

// NewStruct builds a StructType from fields.
func NewStruct(fields ...StructField) StructType { return StructType{Fields: fields} }

func (s StructType) Name() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.String()
	}
	return "STRUCT<" + strings.Join(parts, ", ") + ">"
}

func (s StructType) Equals(other DataType) bool {
	o, ok := other.(StructType)
	if !ok || len(o.Fields) != len(s.Fields) {
		return false
	}
	for i, f := range s.Fields {
		g := o.Fields[i]
		if g.Name != f.Name || g.Nullable != f.Nullable || !g.Type.Equals(f.Type) {
			return false
		}
	}
	return true
}

func (s StructType) String() string { return s.Name() }

// FieldIndex returns the ordinal of the named field, or -1 if absent.
// Matching is case-insensitive, following Spark SQL's default resolution.
func (s StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// FieldNames returns the field names in order.
func (s StructType) FieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Add returns a copy of s with an extra field appended.
func (s StructType) Add(name string, t DataType, nullable bool) StructType {
	fields := make([]StructField, len(s.Fields), len(s.Fields)+1)
	copy(fields, s.Fields)
	return StructType{Fields: append(fields, StructField{Name: name, Type: t, Nullable: nullable})}
}

// IsNumeric reports whether t participates in arithmetic. (Every atomic
// type carries a rank field, so the check must look at the rank, not just
// the interface.)
func IsNumeric(t DataType) bool {
	n, ok := t.(NumericType)
	return ok && n.numericRank() > 0
}

// IsIntegral reports whether t is an integer type.
func IsIntegral(t DataType) bool { return t.Equals(Int) || t.Equals(Long) }

// IsAtomic reports whether t is a non-nested type.
func IsAtomic(t DataType) bool {
	switch t.(type) {
	case atomic, DecimalType:
		return true
	}
	return false
}

// IsOrdered reports whether values of t can be compared with < (used by
// sort orders and comparison operators).
func IsOrdered(t DataType) bool {
	if IsNumeric(t) {
		return true
	}
	return t.Equals(String) || t.Equals(Date) || t.Equals(Timestamp) || t.Equals(Boolean)
}
