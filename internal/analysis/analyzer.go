package analysis

import (
	"repro/internal/catalyst"
	"repro/internal/plan"
)

// Analyzer resolves an unresolved logical plan against a catalog. A new
// Analyzer should be used per Analyze call (it accumulates errors).
type Analyzer struct {
	catalog *Catalog
	errs    []error
}

// NewAnalyzer builds an analyzer over the catalog.
func NewAnalyzer(catalog *Catalog) *Analyzer {
	return &Analyzer{catalog: catalog}
}

// Analyze runs the resolution rule batch to fixed point and then the
// analysis checks, returning the resolved plan or the first error. This is
// what DataFrames call eagerly on construction (paper §3.4) so invalid
// column names or types fail immediately, while execution stays lazy.
func Analyze(catalog *Catalog, p plan.LogicalPlan) (plan.LogicalPlan, error) {
	return NewAnalyzer(catalog).Analyze(p)
}

// Analyze resolves the plan.
func (a *Analyzer) Analyze(p plan.LogicalPlan) (plan.LogicalPlan, error) {
	a.errs = nil
	exec := &catalyst.RuleExecutor[plan.LogicalPlan]{
		Batches: []catalyst.Batch[plan.LogicalPlan]{
			{
				Name: "Resolution",
				Rules: []catalyst.Rule[plan.LogicalPlan]{
					{Name: "ResolveRelations", Apply: a.resolveRelations},
					{Name: "DeduplicateJoinSides", Apply: a.deduplicateJoinSides},
					{Name: "ResolveStar", Apply: a.resolveStar},
					{Name: "ResolveFunctions", Apply: a.resolveFunctions},
					{Name: "ResolveReferences", Apply: a.resolveReferences},
					{Name: "ResolveMissingSortRefs", Apply: a.resolveMissingSortRefs},
					{Name: "GlobalAggregates", Apply: a.globalAggregates},
					{Name: "ResolveHaving", Apply: a.resolveHaving},
					{Name: "ResolveAliases", Apply: a.resolveAliases},
					{Name: "TypeCoercion", Apply: a.typeCoercion},
				},
			},
		},
	}
	out, err := exec.Execute(p)
	if err != nil {
		return nil, err
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	if err := CheckAnalysis(out); err != nil {
		return nil, err
	}
	return out, nil
}

// fail records an analysis error discovered inside a rule (rules cannot
// return errors; the Analyze entry point surfaces the first one).
func (a *Analyzer) fail(err error) {
	a.errs = append(a.errs, err)
}
