// Package analysis implements the Catalyst analyzer (paper §4.3.1): it
// turns an "unresolved logical plan" — attribute names and relation names
// without types — into a resolved plan, by looking up relations in a
// Catalog, mapping named attributes to operator inputs, giving attributes
// unique IDs, resolving function calls to built-ins or registered UDFs, and
// propagating/coercing types through expressions. It runs as a catalyst
// RuleExecutor batch to fixed point, followed by CheckAnalysis.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/plan"
	"repro/internal/types"
)

// Catalog tracks temporary tables/views and registered functions — the
// "Catalog object that tracks the tables in all data sources" of §4.3.1.
// Registered DataFrames remain unmaterialized logical plans, so
// optimizations happen across SQL and the original DataFrame expressions
// (paper §3.3). It is safe for concurrent use.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]plan.LogicalPlan
	funcs      map[string]*UDF
	tableFuncs map[string]TableFunction
	udts       *types.UDTRegistry
}

// TableFunction is a MADLib-style table UDF (paper §3.7): it receives the
// resolved plans of its argument tables and returns the plan of its result
// relation. Registered functions may build arbitrary relational or
// procedural pipelines.
type TableFunction func(args []plan.LogicalPlan) (plan.LogicalPlan, error)

// UDF is a registered user-defined scalar function (paper §3.7).
type UDF struct {
	Name string
	Fn   func(args []any) any
	In   []types.DataType
	Ret  types.DataType
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:     make(map[string]plan.LogicalPlan),
		funcs:      make(map[string]*UDF),
		tableFuncs: make(map[string]TableFunction),
		udts:       types.NewUDTRegistry(),
	}
}

// RegisterTable binds a name to a logical plan (registerTempTable).
func (c *Catalog) RegisterTable(name string, p plan.LogicalPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(name)] = p
}

// DropTable removes a temp table.
func (c *Catalog) DropTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, strings.ToLower(name))
}

// LookupTable resolves a table name.
func (c *Catalog) LookupTable(name string) (plan.LogicalPlan, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.tables[strings.ToLower(name)]
	return p, ok
}

// TableNames lists registered tables, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterUDF adds a scalar UDF under a (case-insensitive) name.
func (c *Catalog) RegisterUDF(u *UDF) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.funcs[strings.ToLower(u.Name)] = u
}

// LookupUDF resolves a UDF by name.
func (c *Catalog) LookupUDF(name string) (*UDF, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.funcs[strings.ToLower(name)]
	return u, ok
}

// RegisterTableFunction adds a table-valued function under a name.
func (c *Catalog) RegisterTableFunction(name string, f TableFunction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tableFuncs[strings.ToLower(name)] = f
}

// LookupTableFunction resolves a table-valued function by name.
func (c *Catalog) LookupTableFunction(name string) (TableFunction, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.tableFuncs[strings.ToLower(name)]
	return f, ok
}

// UDTs exposes the user-defined-type registry (paper §4.4.2).
func (c *Catalog) UDTs() *types.UDTRegistry { return c.udts }

// resolveError is the typed error CheckAnalysis surfaces.
type resolveError struct{ msg string }

func (e *resolveError) Error() string { return e.msg }

// Errorf builds an analysis error.
func Errorf(format string, args ...any) error {
	return &resolveError{msg: fmt.Sprintf("analysis: "+format, args...)}
}
