package analysis

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// typeCoercion inserts casts so that operators see operands of matching
// types (paper §4.3.1: "we cannot know the type of 1 + col until we have
// resolved col and possibly cast its subexpressions to compatible types").
// Each rewrite is idempotent — once types match no further casts are added,
// so the batch reaches a fixed point.
func (a *Analyzer) typeCoercion(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		switch x := e.(type) {
		case *expr.BinaryArith:
			return coerceArith(x)
		case *expr.Comparison:
			return coerceComparison(x)
		case *expr.In:
			return coerceIn(x)
		case *expr.CaseWhen:
			return coerceCaseWhen(x)
		case *expr.Coalesce:
			return coerceCoalesce(x)
		case *expr.ScalarUDF:
			return coerceUDF(x)
		case *expr.Like:
			return nil, false
		}
		return nil, false
	})
}

func bothTyped(l, r expr.Expression) bool {
	return l.Resolved() && r.Resolved()
}

func castTo(e expr.Expression, t types.DataType) expr.Expression {
	if e.DataType().Equals(t) {
		return e
	}
	// Fold casts of literals immediately; keeps plans readable and makes
	// pushdown see plain constants.
	if lit, ok := e.(*expr.Literal); ok {
		if lit.Value == nil {
			return &expr.Literal{Value: nil, Type: t}
		}
		if v := expr.CastValue(lit.Value, t); v != nil {
			return &expr.Literal{Value: v, Type: t}
		}
	}
	return expr.NewCast(e, t)
}

func coerceArith(x *expr.BinaryArith) (expr.Expression, bool) {
	if !bothTyped(x.Left, x.Right) {
		return nil, false
	}
	lt, rt := x.Left.DataType(), x.Right.DataType()
	// Integer division yields DOUBLE (Spark SQL's `/` semantics).
	if x.Op == expr.OpDiv && types.IsIntegral(lt) && types.IsIntegral(rt) {
		return &expr.BinaryArith{
			Op:   expr.OpDiv,
			Left: castTo(x.Left, types.Double), Right: castTo(x.Right, types.Double),
		}, true
	}
	if lt.Equals(rt) {
		return nil, false
	}
	target, ok := arithTarget(lt, rt)
	if !ok {
		return nil, false // CheckAnalysis reports the type error
	}
	return &expr.BinaryArith{Op: x.Op, Left: castTo(x.Left, target), Right: castTo(x.Right, target)}, true
}

// arithTarget picks the common type for mixed operands, treating strings as
// doubles (Hive-compatible lenient arithmetic).
func arithTarget(lt, rt types.DataType) (types.DataType, bool) {
	if lt.Equals(types.String) && types.IsNumeric(rt) {
		return types.Double, true
	}
	if rt.Equals(types.String) && types.IsNumeric(lt) {
		return types.Double, true
	}
	if t, ok := types.TightestCommonType(lt, rt); ok && types.IsNumeric(t) {
		return t, true
	}
	return nil, false
}

func coerceComparison(x *expr.Comparison) (expr.Expression, bool) {
	if !bothTyped(x.Left, x.Right) {
		return nil, false
	}
	lt, rt := x.Left.DataType(), x.Right.DataType()
	if lt.Equals(rt) {
		return nil, false
	}
	var target types.DataType
	switch {
	case lt.Equals(types.String) && (rt.Equals(types.Date) || rt.Equals(types.Timestamp)):
		target = rt
	case rt.Equals(types.String) && (lt.Equals(types.Date) || lt.Equals(types.Timestamp)):
		target = lt
	case lt.Equals(types.String) && types.IsNumeric(rt):
		target = types.Double
	case rt.Equals(types.String) && types.IsNumeric(lt):
		target = types.Double
	default:
		t, ok := types.TightestCommonType(lt, rt)
		if !ok {
			return nil, false
		}
		target = t
	}
	return &expr.Comparison{Op: x.Op, Left: castTo(x.Left, target), Right: castTo(x.Right, target)}, true
}

func coerceIn(x *expr.In) (expr.Expression, bool) {
	if !x.Value.Resolved() {
		return nil, false
	}
	target := x.Value.DataType()
	changed := false
	list := make([]expr.Expression, len(x.List))
	for i, e := range x.List {
		if !e.Resolved() {
			return nil, false
		}
		if !e.DataType().Equals(target) {
			if t, ok := types.TightestCommonType(e.DataType(), target); ok && t.Equals(target) {
				list[i] = castTo(e, target)
				changed = true
				continue
			}
			// Value side may need widening instead (col IN (1.5, 2)): use
			// string-free common type across all.
			return coerceInWiden(x)
		}
		list[i] = e
	}
	if !changed {
		return nil, false
	}
	return &expr.In{Value: x.Value, List: list}, true
}

func coerceInWiden(x *expr.In) (expr.Expression, bool) {
	target := x.Value.DataType()
	for _, e := range x.List {
		t, ok := types.TightestCommonType(e.DataType(), target)
		if !ok {
			return nil, false
		}
		target = t
	}
	if target.Equals(x.Value.DataType()) {
		return nil, false
	}
	list := make([]expr.Expression, len(x.List))
	for i, e := range x.List {
		list[i] = castTo(e, target)
	}
	return &expr.In{Value: castTo(x.Value, target), List: list}, true
}

func coerceCaseWhen(x *expr.CaseWhen) (expr.Expression, bool) {
	branches := x.Branches()
	elseV := x.ElseValue()
	var target types.DataType
	for _, b := range branches {
		if !b[1].Resolved() {
			return nil, false
		}
		target = widen(target, b[1].DataType())
	}
	if elseV != nil {
		if !elseV.Resolved() {
			return nil, false
		}
		target = widen(target, elseV.DataType())
	}
	if target == nil {
		return nil, false
	}
	changed := false
	newBranches := make([][2]expr.Expression, len(branches))
	for i, b := range branches {
		nv := castTo(b[1], target)
		if nv != b[1] {
			changed = true
		}
		newBranches[i] = [2]expr.Expression{b[0], nv}
	}
	var newElse expr.Expression
	if elseV != nil {
		newElse = castTo(elseV, target)
		if newElse != elseV {
			changed = true
		}
	}
	if !changed {
		return nil, false
	}
	return expr.NewCaseWhen(newBranches, newElse), true
}

func widen(acc types.DataType, t types.DataType) types.DataType {
	if acc == nil {
		return t
	}
	if w, ok := types.TightestCommonType(acc, t); ok {
		return w
	}
	return acc
}

func coerceCoalesce(x *expr.Coalesce) (expr.Expression, bool) {
	var target types.DataType
	for _, e := range x.Args {
		if !e.Resolved() {
			return nil, false
		}
		target = widen(target, e.DataType())
	}
	if target == nil {
		return nil, false
	}
	changed := false
	args := make([]expr.Expression, len(x.Args))
	for i, e := range x.Args {
		args[i] = castTo(e, target)
		if args[i] != e {
			changed = true
		}
	}
	if !changed {
		return nil, false
	}
	return &expr.Coalesce{Args: args}, true
}

func coerceUDF(x *expr.ScalarUDF) (expr.Expression, bool) {
	if len(x.Args) != len(x.In) {
		return nil, false
	}
	changed := false
	args := make([]expr.Expression, len(x.Args))
	for i, e := range x.Args {
		if !e.Resolved() {
			return nil, false
		}
		args[i] = castTo(e, x.In[i])
		if args[i] != e {
			changed = true
		}
	}
	if !changed {
		return nil, false
	}
	return &expr.ScalarUDF{Name: x.Name, Fn: x.Fn, In: x.In, Ret: x.Ret, Args: args}, true
}
