package analysis

import (
	"strings"
	"testing"

	"repro/internal/catalyst"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/types"
)

func usersCatalog() (*Catalog, *plan.LocalRelation) {
	rel := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "name", Type: types.String, Nullable: false},
		types.StructField{Name: "age", Type: types.Int, Nullable: true},
		types.StructField{Name: "deptId", Type: types.Int, Nullable: false},
	), []row.Row{{"A", int32(20), int32(1)}})
	cat := NewCatalog()
	cat.RegisterTable("users", rel)
	return cat, rel
}

func TestResolveRelationAndReferences(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Filter{
		Cond:  expr.LT(expr.UnresolvedAttr("age"), expr.Lit(21)),
		Child: &plan.UnresolvedRelation{Name: "Users"}, // case-insensitive
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resolved() {
		t.Fatalf("plan not resolved:\n%s", out)
	}
	// The resolved attribute must be the catalog relation's (same ID).
	f := out.(*plan.Filter)
	cond := f.Cond.(*expr.Comparison)
	attr := cond.Left.(*expr.AttributeReference)
	if attr.ID_ != rel.Attrs[1].ID_ {
		t.Errorf("resolved to %v, want id %d", attr, rel.Attrs[1].ID_)
	}
}

func TestUnknownTableError(t *testing.T) {
	cat, _ := usersCatalog()
	_, err := Analyze(cat, &plan.UnresolvedRelation{Name: "nope"})
	if err == nil || !strings.Contains(err.Error(), "table not found") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "users") {
		t.Errorf("error should list known tables: %v", err)
	}
}

func TestUnknownColumnError(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{expr.UnresolvedAttr("salary")},
		Child: rel,
	}
	_, err := Analyze(cat, lp)
	if err == nil || !strings.Contains(err.Error(), "salary") {
		t.Fatalf("err = %v", err)
	}
}

func TestQualifiedResolution(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List: []expr.Expression{expr.UnresolvedAttr("u", "age")},
		Child: &plan.SubqueryAlias{
			Name:  "u",
			Child: rel,
		},
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resolved() {
		t.Fatal("qualified reference should resolve")
	}
	// Wrong qualifier fails.
	bad := &plan.Project{
		List:  []expr.Expression{expr.UnresolvedAttr("x", "age")},
		Child: &plan.SubqueryAlias{Name: "u", Child: rel},
	}
	if _, err := Analyze(cat, bad); err == nil {
		t.Fatal("wrong qualifier should fail")
	}
}

func TestStructFieldPathResolution(t *testing.T) {
	loc := types.StructType{}.Add("lat", types.Double, false).Add("long", types.Double, false)
	rel := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "loc", Type: loc, Nullable: true},
	), nil)
	cat := NewCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{expr.UnresolvedAttr("loc", "lat")},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	proj := out.(*plan.Project)
	named, ok := proj.List[0].(expr.Named)
	if !ok {
		t.Fatalf("projected field should be aliased: %v", proj.List[0])
	}
	if !named.ToAttribute().Type.Equals(types.Double) {
		t.Errorf("loc.lat type = %s", named.ToAttribute().Type.Name())
	}
	// Nonexistent struct field errors.
	bad := &plan.Project{
		List:  []expr.Expression{expr.UnresolvedAttr("loc", "altitude")},
		Child: rel,
	}
	if _, err := Analyze(cat, bad); err == nil {
		t.Fatal("missing struct field should fail")
	}
}

func TestStarExpansion(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{&expr.Star{}},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Output()) != 3 {
		t.Fatalf("star expanded to %d columns", len(out.Output()))
	}
	// Qualified star over a join picks one side.
	other := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "id", Type: types.Int, Nullable: false},
	), nil)
	j := &plan.Join{
		Left:  plan.LogicalPlan(&plan.SubqueryAlias{Name: "u", Child: rel}),
		Right: &plan.SubqueryAlias{Name: "d", Child: other},
		Type:  plan.CrossJoin,
	}
	q := &plan.Project{List: []expr.Expression{&expr.Star{Qualifier: "d"}}, Child: j}
	out, err = Analyze(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Output()) != 1 || out.Output()[0].Name != "id" {
		t.Fatalf("d.* = %v", out.Output())
	}
}

func TestFunctionResolutionAndUDF(t *testing.T) {
	cat, rel := usersCatalog()
	cat.RegisterUDF(&UDF{
		Name: "double_age",
		Fn:   func(args []any) any { return args[0].(int32) * 2 },
		In:   []types.DataType{types.Int},
		Ret:  types.Int,
	})
	// The UDF resolves by name (case-insensitively) to a typed ScalarUDF.
	lp := &plan.Project{
		List: []expr.Expression{
			&expr.UnresolvedFunction{Name: "DOUBLE_AGE", Args: []expr.Expression{expr.UnresolvedAttr("age")}},
		},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Int) {
		t.Errorf("udf result type = %s", out.Output()[0].Type.Name())
	}

	// Mixing an aggregate with a non-aggregated scalar column is a SQL
	// error the checker must catch.
	bad := &plan.Project{
		List: []expr.Expression{
			&expr.UnresolvedFunction{Name: "COUNT", Star: true},
			&expr.UnresolvedFunction{Name: "double_age", Args: []expr.Expression{expr.UnresolvedAttr("age")}},
		},
		Child: rel,
	}
	if _, err := Analyze(cat, bad); err == nil || !strings.Contains(err.Error(), "grouped") {
		t.Fatalf("expected grouping error, got %v", err)
	}
}

func TestUndefinedFunctionError(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{&expr.UnresolvedFunction{Name: "frobnicate", Args: []expr.Expression{expr.Lit(1)}}},
		Child: rel,
	}
	_, err := Analyze(cat, lp)
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalAggregateLifting(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{&expr.UnresolvedFunction{Name: "count", Star: true}},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*plan.Aggregate); !ok {
		t.Fatalf("expected Aggregate, got %T", out)
	}
}

func TestTypeCoercionInsertsCasts(t *testing.T) {
	cat, rel := usersCatalog()
	// age (INT) + 1.5 (DOUBLE) -> both cast to DOUBLE.
	lp := &plan.Project{
		List:  []expr.Expression{expr.Add(expr.UnresolvedAttr("age"), expr.Lit(1.5))},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Double) {
		t.Errorf("INT + DOUBLE = %s, want DOUBLE", out.Output()[0].Type.Name())
	}
	hasCast := catalyst.Exists[plan.LogicalPlan](out, func(n plan.LogicalPlan) bool {
		for _, e := range n.Expressions() {
			if catalyst.Exists[expr.Expression](e, func(x expr.Expression) bool {
				_, isCast := x.(*expr.Cast)
				return isCast
			}) {
				return true
			}
		}
		return false
	})
	if !hasCast {
		t.Errorf("expected a cast in:\n%s", out)
	}
}

func TestIntegerDivisionBecomesDouble(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{expr.Div(expr.UnresolvedAttr("age"), expr.Lit(2))},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Double) {
		t.Errorf("INT / INT = %s, want DOUBLE (Spark semantics)", out.Output()[0].Type.Name())
	}
}

func TestStringDateComparisonCoercion(t *testing.T) {
	rel := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "d", Type: types.Date, Nullable: false},
	), nil)
	cat := NewCatalog()
	lp := &plan.Filter{
		Cond:  expr.GT(expr.UnresolvedAttr("d"), expr.Lit("2015-01-01")),
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	cond := out.(*plan.Filter).Cond.(*expr.Comparison)
	if !cond.Right.DataType().Equals(types.Date) {
		t.Errorf("string literal should coerce to DATE, got %s", cond.Right.DataType().Name())
	}
	// Literal folding at coercion time: the cast collapsed to a literal.
	if lit, ok := cond.Right.(*expr.Literal); !ok || lit.Value != int32(16436) {
		t.Errorf("expected folded date literal, got %v", cond.Right)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	cat, rel := usersCatalog()
	agg := &plan.Aggregate{
		Grouping: []expr.Expression{rel.Attrs[2]},
		Aggs: []expr.Expression{
			rel.Attrs[0], // name: neither grouped nor aggregated
			expr.NewAlias(expr.NewCountStar(), "n"),
		},
		Child: rel,
	}
	_, err := Analyze(cat, agg)
	if err == nil || !strings.Contains(err.Error(), "neither grouped nor aggregated") {
		t.Fatalf("err = %v", err)
	}
}

func TestNonBooleanFilterRejected(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Filter{Cond: expr.UnresolvedAttr("age"), Child: rel}
	_, err := Analyze(cat, lp)
	if err == nil || !strings.Contains(err.Error(), "BOOLEAN") {
		t.Fatalf("err = %v", err)
	}
}

func TestHavingRewrite(t *testing.T) {
	cat, rel := usersCatalog()
	// Filter over Aggregate with an aggregate in the condition.
	agg := &plan.Aggregate{
		Grouping: []expr.Expression{expr.UnresolvedAttr("deptId")},
		Aggs: []expr.Expression{
			expr.UnresolvedAttr("deptId"),
		},
		Child: rel,
	}
	lp := &plan.Filter{
		Cond:  expr.GT(&expr.UnresolvedFunction{Name: "count", Star: true}, expr.Lit(int64(1))),
		Child: agg,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite produces Project(Filter(Aggregate)) with the hidden
	// aggregate column projected away.
	proj, ok := out.(*plan.Project)
	if !ok {
		t.Fatalf("expected Project on top, got %T:\n%s", out, out)
	}
	if len(proj.Output()) != 1 {
		t.Fatalf("HAVING column must be hidden: %v", proj.Output())
	}
	if _, ok := proj.Child.(*plan.Filter); !ok {
		t.Fatalf("expected Filter below Project:\n%s", out)
	}
}

func TestSelfJoinDeduplication(t *testing.T) {
	cat, rel := usersCatalog()
	j := &plan.Join{
		Left:  plan.LogicalPlan(&plan.SubqueryAlias{Name: "a", Child: rel}),
		Right: &plan.SubqueryAlias{Name: "b", Child: rel},
		Type:  plan.InnerJoin,
		Cond: expr.EQ(
			expr.UnresolvedAttr("a", "deptId"),
			expr.UnresolvedAttr("b", "deptId")),
	}
	out, err := Analyze(cat, j)
	if err != nil {
		t.Fatal(err)
	}
	join := out.(*plan.Join)
	leftIDs := expr.NewAttributeSet(join.Left.Output()...)
	for _, a := range join.Right.Output() {
		if leftIDs.Contains(a.ID_) {
			t.Fatalf("join sides share attribute id %v", a)
		}
	}
	// And the condition references one attr from each side.
	cond := join.Cond.(*expr.Comparison)
	l := cond.Left.(*expr.AttributeReference)
	r := cond.Right.(*expr.AttributeReference)
	if !leftIDs.Contains(l.ID_) || leftIDs.Contains(r.ID_) {
		t.Fatalf("condition not split across sides: %v", cond)
	}
}

func TestAmbiguousReferenceError(t *testing.T) {
	cat, rel := usersCatalog()
	other := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "age", Type: types.Int, Nullable: false},
	), nil)
	j := &plan.Join{Left: rel, Right: other, Type: plan.CrossJoin}
	lp := &plan.Project{List: []expr.Expression{expr.UnresolvedAttr("age")}, Child: j}
	_, err := Analyze(cat, lp)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestAliasedExpressionsGetNames(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List:  []expr.Expression{expr.Add(expr.UnresolvedAttr("age"), expr.Lit(1))},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	name := out.Output()[0].Name
	if name == "" || strings.Contains(name, "#") {
		t.Errorf("generated name should be pretty, got %q", name)
	}
}

func TestInListCoercion(t *testing.T) {
	cat, rel := usersCatalog()
	// List items of a different integer width coerce to the value's type.
	lp := &plan.Filter{
		Cond: &expr.In{
			Value: expr.UnresolvedAttr("age"),
			List:  []expr.Expression{expr.Lit(int64(21)), expr.Lit(int32(30))},
		},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	in := out.(*plan.Filter).Cond.(*expr.In)
	// Value side widened to BIGINT to absorb the int64 literal.
	if !in.Value.DataType().Equals(types.Long) {
		t.Errorf("IN value type = %s", in.Value.DataType().Name())
	}
	for i, item := range in.List {
		if !item.DataType().Equals(types.Long) {
			t.Errorf("IN list[%d] type = %s", i, item.DataType().Name())
		}
	}
}

func TestCaseWhenBranchCoercion(t *testing.T) {
	cat, rel := usersCatalog()
	cw := expr.NewCaseWhen([][2]expr.Expression{
		{expr.GT(expr.UnresolvedAttr("age"), expr.Lit(21)), expr.Lit(int32(1))},
	}, expr.Lit(2.5))
	lp := &plan.Project{List: []expr.Expression{cw}, Child: rel}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Double) {
		t.Errorf("CASE branches should widen to DOUBLE, got %s", out.Output()[0].Type.Name())
	}
}

func TestCoalesceCoercion(t *testing.T) {
	cat, rel := usersCatalog()
	co := &expr.Coalesce{Args: []expr.Expression{
		expr.UnresolvedAttr("age"), // INT
		expr.Lit(int64(0)),         // BIGINT
	}}
	lp := &plan.Project{List: []expr.Expression{co}, Child: rel}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Long) {
		t.Errorf("coalesce type = %s", out.Output()[0].Type.Name())
	}
}

func TestUDFArgumentCoercion(t *testing.T) {
	cat, rel := usersCatalog()
	cat.RegisterUDF(&UDF{
		Name: "needs_double",
		Fn:   func(args []any) any { return args[0] },
		In:   []types.DataType{types.Double},
		Ret:  types.Double,
	})
	lp := &plan.Project{
		List: []expr.Expression{
			&expr.UnresolvedFunction{Name: "needs_double", Args: []expr.Expression{expr.UnresolvedAttr("age")}},
		},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	udf, _ := catalyst.Find[expr.Expression](out.Expressions()[0], func(e expr.Expression) bool {
		_, ok := e.(*expr.ScalarUDF)
		return ok
	})
	arg := udf.(*expr.ScalarUDF).Args[0]
	if !arg.DataType().Equals(types.Double) {
		t.Errorf("udf arg should be cast to DOUBLE, got %s", arg)
	}
}

func TestStringNumericArithmeticCoercion(t *testing.T) {
	cat, rel := usersCatalog()
	// name (STRING) + age (INT): lenient Hive-style arithmetic via DOUBLE.
	lp := &plan.Project{
		List:  []expr.Expression{expr.Add(expr.UnresolvedAttr("name"), expr.UnresolvedAttr("age"))},
		Child: rel,
	}
	out, err := Analyze(cat, lp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Output()[0].Type.Equals(types.Double) {
		t.Errorf("STRING + INT = %s, want DOUBLE", out.Output()[0].Type.Name())
	}
}

func TestWrongArgCountErrors(t *testing.T) {
	cat, rel := usersCatalog()
	lp := &plan.Project{
		List: []expr.Expression{
			&expr.UnresolvedFunction{Name: "upper", Args: []expr.Expression{
				expr.UnresolvedAttr("name"), expr.UnresolvedAttr("name"),
			}},
		},
		Child: rel,
	}
	_, err := Analyze(cat, lp)
	if err == nil || !strings.Contains(err.Error(), "expects 1 argument") {
		t.Fatalf("err = %v", err)
	}
}
