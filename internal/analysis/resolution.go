package analysis

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// resolveRelations replaces UnresolvedRelation nodes with the catalog's
// plan for that name, wrapped in a SubqueryAlias so qualified references
// (name.col) resolve.
func (a *Analyzer) resolveRelations(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		if tf, ok := n.(*plan.UnresolvedTableFunction); ok {
			return a.resolveTableFunction(tf)
		}
		u, ok := n.(*plan.UnresolvedRelation)
		if !ok {
			return nil, false
		}
		table, found := a.catalog.LookupTable(u.Name)
		if !found {
			a.fail(Errorf("table not found: %s (known tables: %s)",
				u.Name, strings.Join(a.catalog.TableNames(), ", ")))
			return nil, false
		}
		return &plan.SubqueryAlias{Name: strings.ToLower(u.Name), Child: table}, true
	})
}

// resolveTableFunction invokes a registered table UDF with the resolved
// plans of its argument tables (paper §3.7's MADLib-style table functions).
func (a *Analyzer) resolveTableFunction(tf *plan.UnresolvedTableFunction) (plan.LogicalPlan, bool) {
	fn, found := a.catalog.LookupTableFunction(tf.Name)
	if !found {
		a.fail(Errorf("undefined table function %q", tf.Name))
		return nil, false
	}
	args := make([]plan.LogicalPlan, len(tf.Args))
	for i, name := range tf.Args {
		table, ok := a.catalog.LookupTable(name)
		if !ok {
			a.fail(Errorf("table function %s: table not found: %s", tf.Name, name))
			return nil, false
		}
		args[i] = table
	}
	out, err := fn(args)
	if err != nil {
		a.fail(Errorf("table function %s: %v", tf.Name, err))
		return nil, false
	}
	return &plan.SubqueryAlias{Name: strings.ToLower(tf.Name), Child: out}, true
}

// resolveStar expands `*` and `t.*` in Project and Aggregate lists to the
// child's output attributes.
func (a *Analyzer) resolveStar(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		switch node := n.(type) {
		case *plan.Project:
			if !node.Child.Resolved() || !hasStar(node.List) {
				return nil, false
			}
			return &plan.Project{List: expandStars(node.List, node.Child), Child: node.Child}, true
		case *plan.Aggregate:
			if !node.Child.Resolved() || !hasStar(node.Aggs) {
				return nil, false
			}
			return &plan.Aggregate{
				Grouping: node.Grouping,
				Aggs:     expandStars(node.Aggs, node.Child),
				Child:    node.Child,
			}, true
		}
		return nil, false
	})
}

func hasStar(list []expr.Expression) bool {
	for _, e := range list {
		if _, ok := e.(*expr.Star); ok {
			return true
		}
	}
	return false
}

func expandStars(list []expr.Expression, child plan.LogicalPlan) []expr.Expression {
	out := make([]expr.Expression, 0, len(list))
	for _, e := range list {
		star, ok := e.(*expr.Star)
		if !ok {
			out = append(out, e)
			continue
		}
		for _, attr := range child.Output() {
			if star.Qualifier == "" || strings.EqualFold(star.Qualifier, attr.Qualifier) {
				out = append(out, attr)
			}
		}
	}
	return out
}

// resolveReferences maps UnresolvedAttributes to their children's output
// attributes, handling qualifiers (t.col) and struct-field paths (loc.lat).
func (a *Analyzer) resolveReferences(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		if !childrenResolvedPlan(n) {
			return nil, false
		}
		input := plan.InputAttributes(n)
		replaced, ok := transformNodeExprs(n, func(e expr.Expression) (expr.Expression, bool) {
			u, isUnresolved := e.(*expr.UnresolvedAttribute)
			if !isUnresolved {
				return nil, false
			}
			resolved, err := ResolveAttribute(u.Parts, input)
			if err != nil {
				// Leave unresolved; CheckAnalysis reports it with context
				// unless it is an ambiguity, which we surface eagerly.
				if strings.Contains(err.Error(), "ambiguous") {
					a.fail(err)
				}
				return nil, false
			}
			return resolved, true
		})
		if !ok {
			return nil, false
		}
		return replaced, true
	})
}

// ResolveAttribute resolves a dotted name path against input attributes:
// [col], [qualifier, col], or either followed by struct field accesses.
func ResolveAttribute(parts []string, input []*expr.AttributeReference) (expr.Expression, error) {
	// Longest match first: qualifier.column, then bare column.
	type candidate struct {
		attr *expr.AttributeReference
		rest []string
	}
	var cands []candidate
	if len(parts) >= 2 {
		for _, attr := range input {
			if strings.EqualFold(attr.Qualifier, parts[0]) && strings.EqualFold(attr.Name, parts[1]) {
				cands = append(cands, candidate{attr, parts[2:]})
			}
		}
	}
	if len(cands) == 0 {
		for _, attr := range input {
			if strings.EqualFold(attr.Name, parts[0]) {
				cands = append(cands, candidate{attr, parts[1:]})
			}
		}
	}
	switch {
	case len(cands) == 0:
		return nil, Errorf("cannot resolve column %q given input [%s]",
			strings.Join(parts, "."), attrNames(input))
	case len(cands) > 1 && cands[0].attr.ID_ != cands[1].attr.ID_:
		return nil, Errorf("reference %q is ambiguous: matches %s and %s",
			strings.Join(parts, "."), cands[0].attr, cands[1].attr)
	}
	var out expr.Expression = cands[0].attr
	for _, field := range cands[0].rest {
		st, isStruct := out.DataType().(types.StructType)
		if !isStruct {
			return nil, Errorf("cannot access field %q: %s is not a struct", field, out)
		}
		if st.FieldIndex(field) < 0 {
			return nil, Errorf("struct %s has no field %q", out, field)
		}
		out = &expr.GetField{Child: out, FieldName: field}
	}
	return out, nil
}

func attrNames(input []*expr.AttributeReference) string {
	names := make([]string, len(input))
	for i, a := range input {
		if a.Qualifier != "" {
			names[i] = a.Qualifier + "." + a.Name
		} else {
			names[i] = a.Name
		}
	}
	return strings.Join(names, ", ")
}

// resolveMissingSortRefs handles ORDER BY over columns absent from the
// SELECT list (SELECT shout(name) FROM t ORDER BY name): the missing
// attributes are added to the projection below the sort and projected away
// above it — the same rewrite Spark SQL's analyzer applies.
func (a *Analyzer) resolveMissingSortRefs(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		s, ok := n.(*plan.Sort)
		if !ok || s.Resolved() {
			return nil, false
		}
		// ORDER BY over an aggregate may repeat a grouped expression
		// (ORDER BY year(d) after GROUP BY year(d)): resolve the order
		// expression against the aggregate's input and substitute the
		// matching output column.
		if agg, isAgg := s.Child.(*plan.Aggregate); isAgg && agg.Resolved() {
			return resolveSortOverAggregate(s, agg)
		}
		proj, ok := s.Child.(*plan.Project)
		if !ok || !proj.Resolved() {
			return nil, false
		}
		innerOut := proj.Child.Output()
		var extra []*expr.AttributeReference
		seen := make(expr.AttributeSet)
		changed := false
		newOrders := make([]*expr.SortOrder, len(s.Orders))
		for i, o := range s.Orders {
			rewritten := expr.TransformUp(o.Child, func(e expr.Expression) (expr.Expression, bool) {
				u, isU := e.(*expr.UnresolvedAttribute)
				if !isU {
					return nil, false
				}
				resolved, err := ResolveAttribute(u.Parts, innerOut)
				if err != nil {
					return nil, false
				}
				for _, attr := range expr.Attributes(resolved) {
					if !seen.Contains(attr.ID_) && !plan.OutputSet(proj).Contains(attr.ID_) {
						seen.Add(attr.ID_)
						extra = append(extra, attr)
					}
				}
				changed = true
				return resolved, true
			})
			if rewritten != o.Child {
				newOrders[i] = &expr.SortOrder{Child: rewritten, Descending: o.Descending}
			} else {
				newOrders[i] = o
			}
		}
		if !changed || len(extra) == 0 {
			return nil, false
		}
		widened := make([]expr.Expression, 0, len(proj.List)+len(extra))
		widened = append(widened, proj.List...)
		for _, attr := range extra {
			widened = append(widened, attr)
		}
		origOutput := make([]expr.Expression, 0, len(proj.List))
		for _, attr := range proj.Output() {
			origOutput = append(origOutput, attr)
		}
		return &plan.Project{
			List: origOutput,
			Child: &plan.Sort{
				Orders: newOrders,
				Global: s.Global,
				Child:  &plan.Project{List: widened, Child: proj.Child},
			},
		}, true
	})
}

// resolveSortOverAggregate resolves ORDER BY expressions that structurally
// repeat an aggregate output expression (grouped expressions or aggregate
// functions), substituting the output attribute.
func resolveSortOverAggregate(s *plan.Sort, agg *plan.Aggregate) (plan.LogicalPlan, bool) {
	input := agg.Child.Output()
	changed := false
	newOrders := make([]*expr.SortOrder, len(s.Orders))
	for i, o := range s.Orders {
		// First resolve the order expression's names against the
		// aggregate's INPUT (the grouped expressions are written in terms
		// of input columns).
		resolved := expr.TransformUp(o.Child, func(e expr.Expression) (expr.Expression, bool) {
			u, isU := e.(*expr.UnresolvedAttribute)
			if !isU {
				return nil, false
			}
			r, err := ResolveAttribute(u.Parts, input)
			if err != nil {
				return nil, false
			}
			return r, true
		})
		// Then match the whole expression against the aggregate outputs.
		matched := false
		for _, a := range agg.Aggs {
			named, isNamed := a.(expr.Named)
			if !isNamed {
				continue
			}
			target := a
			if alias, isAlias := a.(*expr.Alias); isAlias {
				target = alias.Child
			}
			if expr.Equivalent(resolved, target) {
				newOrders[i] = &expr.SortOrder{Child: named.ToAttribute(), Descending: o.Descending}
				matched = true
				changed = true
				break
			}
		}
		if !matched {
			newOrders[i] = o
		}
	}
	if !changed {
		return nil, false
	}
	return &plan.Sort{Orders: newOrders, Global: s.Global, Child: agg}, true
}

// resolveFunctions maps UnresolvedFunction calls to built-in expressions or
// registered UDFs.
func (a *Analyzer) resolveFunctions(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformExpressionsUp(p, func(e expr.Expression) (expr.Expression, bool) {
		u, ok := e.(*expr.UnresolvedFunction)
		if !ok {
			return nil, false
		}
		out, err := a.buildFunction(u)
		if err != nil {
			a.fail(err)
			return nil, false
		}
		if out == nil {
			return nil, false // arguments not yet resolved; retry next pass
		}
		return out, true
	})
}

// buildFunction constructs the expression for a function call. A nil, nil
// return means "not yet" (children unresolved for functions that need
// types).
func (a *Analyzer) buildFunction(u *expr.UnresolvedFunction) (expr.Expression, error) {
	name := strings.ToLower(u.Name)
	args := u.Args
	need := func(n int) error {
		if len(args) != n {
			return Errorf("function %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	if u.Distinct && name != "count" {
		return nil, Errorf("DISTINCT is only supported in COUNT, not %s", name)
	}
	switch name {
	case "count":
		if u.Star {
			return expr.NewCountStar(), nil
		}
		if err := need(1); err != nil {
			return nil, err
		}
		if u.Distinct {
			return &expr.CountDistinct{Child: args[0]}, nil
		}
		return &expr.Count{Child: args[0]}, nil
	case "sum":
		if err := need(1); err != nil {
			return nil, err
		}
		return &expr.Sum{Child: args[0]}, nil
	case "avg", "mean":
		if err := need(1); err != nil {
			return nil, err
		}
		return &expr.Avg{Child: args[0]}, nil
	case "min":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.NewMin(args[0]), nil
	case "max":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.NewMax(args[0]), nil
	case "first":
		if err := need(1); err != nil {
			return nil, err
		}
		return &expr.First{Child: args[0]}, nil
	case "substr", "substring":
		if err := need(3); err != nil {
			return nil, err
		}
		return &expr.Substring{Str: args[0], Pos: args[1], Len: args[2]}, nil
	case "upper":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Upper(args[0]), nil
	case "lower":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Lower(args[0]), nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Length(args[0]), nil
	case "trim":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Trim(args[0]), nil
	case "concat":
		return &expr.Concat{Args: args}, nil
	case "coalesce":
		if len(args) == 0 {
			return nil, Errorf("coalesce requires at least one argument")
		}
		return &expr.Coalesce{Args: args}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return &expr.Abs{Child: args[0]}, nil
	case "size":
		if err := need(1); err != nil {
			return nil, err
		}
		return &expr.ArraySize{Child: args[0]}, nil
	case "year":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Year(args[0]), nil
	case "month":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Month(args[0]), nil
	case "day":
		if err := need(1); err != nil {
			return nil, err
		}
		return expr.Day(args[0]), nil
	case "startswith":
		if err := need(2); err != nil {
			return nil, err
		}
		return expr.StartsWith(args[0], args[1]), nil
	case "endswith":
		if err := need(2); err != nil {
			return nil, err
		}
		return expr.EndsWith(args[0], args[1]), nil
	case "contains":
		if err := need(2); err != nil {
			return nil, err
		}
		return expr.Contains(args[0], args[1]), nil
	}
	if udf, ok := a.catalog.LookupUDF(name); ok {
		if len(args) != len(udf.In) {
			return nil, Errorf("UDF %s expects %d argument(s), got %d", name, len(udf.In), len(args))
		}
		return &expr.ScalarUDF{Name: udf.Name, Fn: udf.Fn, In: udf.In, Ret: udf.Ret, Args: args}, nil
	}
	return nil, Errorf("undefined function %q", u.Name)
}

// globalAggregates turns a Project whose list contains aggregate functions
// into an ungrouped Aggregate (SELECT count(*) FROM t).
func (a *Analyzer) globalAggregates(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		proj, ok := n.(*plan.Project)
		if !ok {
			return nil, false
		}
		for _, e := range proj.List {
			if expr.ContainsAggregate(e) {
				return &plan.Aggregate{Grouping: nil, Aggs: proj.List, Child: proj.Child}, true
			}
		}
		return nil, false
	})
}

// resolveHaving rewrites Filter-over-Aggregate conditions that contain
// aggregate functions (HAVING count(*) > 5): the aggregates move into the
// Aggregate's output under hidden aliases, the filter references them, and
// a Project restores the original schema.
func (a *Analyzer) resolveHaving(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		f, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		agg, ok := f.Child.(*plan.Aggregate)
		if !ok || !expr.ContainsAggregate(f.Cond) {
			return nil, false
		}
		if !agg.Child.Resolved() {
			return nil, false
		}
		newAggs := append([]expr.Expression{}, agg.Aggs...)
		cond := expr.TransformUp(f.Cond, func(e expr.Expression) (expr.Expression, bool) {
			af, isAgg := e.(expr.AggregateFunc)
			if !isAgg || !af.Resolved() {
				return nil, false
			}
			alias := expr.NewAlias(af, fmt.Sprintf("havingCondition%d", len(newAggs)))
			newAggs = append(newAggs, alias)
			return alias.ToAttribute(), true
		})
		if len(newAggs) == len(agg.Aggs) {
			return nil, false // aggregates not yet resolved; retry later
		}
		origOutput := make([]expr.Expression, len(agg.Aggs))
		for i, e := range agg.Aggs {
			if named, isNamed := e.(expr.Named); isNamed {
				origOutput[i] = named.ToAttribute()
			} else {
				return nil, false // wait for ResolveAliases
			}
		}
		inner := &plan.Aggregate{Grouping: agg.Grouping, Aggs: newAggs, Child: agg.Child}
		return &plan.Project{
			List:  origOutput,
			Child: &plan.Filter{Cond: cond, Child: inner},
		}, true
	})
}

// resolveAliases wraps resolved, unnamed expressions in Project and
// Aggregate lists with generated aliases so every output column is named.
func (a *Analyzer) resolveAliases(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		switch node := n.(type) {
		case *plan.Project:
			list, changed := aliasList(node.List)
			if !changed {
				return nil, false
			}
			return &plan.Project{List: list, Child: node.Child}, true
		case *plan.Aggregate:
			list, changed := aliasList(node.Aggs)
			if !changed {
				return nil, false
			}
			return &plan.Aggregate{Grouping: node.Grouping, Aggs: list, Child: node.Child}, true
		}
		return nil, false
	})
}

func aliasList(list []expr.Expression) ([]expr.Expression, bool) {
	out := make([]expr.Expression, len(list))
	changed := false
	for i, e := range list {
		if _, isNamed := e.(expr.Named); !isNamed && e.Resolved() {
			out[i] = expr.NewAlias(e, prettyName(e))
			changed = true
		} else {
			out[i] = e
		}
	}
	return out, changed
}

// prettyName renders an expression as a column name, stripping attribute
// ID suffixes (sum(x#3) -> sum(x)).
func prettyName(e expr.Expression) string {
	s := e.String()
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			for i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				i++
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// deduplicateJoinSides gives the right side of a self-join fresh attribute
// IDs so the two sides stay distinguishable (paper §4.3.1's unique-ID
// requirement).
func (a *Analyzer) deduplicateJoinSides(p plan.LogicalPlan) plan.LogicalPlan {
	return plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		j, ok := n.(*plan.Join)
		if !ok || !j.Left.Resolved() || !j.Right.Resolved() {
			return nil, false
		}
		leftSet := plan.OutputSet(j.Left)
		conflict := false
		for _, attr := range j.Right.Output() {
			if leftSet.Contains(attr.ID_) {
				conflict = true
				break
			}
		}
		if !conflict {
			return nil, false
		}
		newRight, mapping := freshenPlan(j.Right, leftSet)
		if len(mapping) == 0 {
			return nil, false
		}
		// The join condition is NOT remapped: in SQL self-joins the
		// condition still holds UnresolvedAttributes with qualifiers
		// (a.id, b.id) that resolve after deduplication (this rule runs
		// before ResolveReferences). DSL self-joins should use Alias —
		// with raw shared column objects the reference is inherently
		// ambiguous, the same caveat real Spark SQL documents.
		return &plan.Join{Left: j.Left, Right: newRight, Type: j.Type, Cond: j.Cond}, true
	})
}

// freshenPlan rebuilds a subtree, giving any leaf attribute whose ID
// collides with taken a fresh ID, and remapping references above.
func freshenPlan(p plan.LogicalPlan, taken expr.AttributeSet) (plan.LogicalPlan, map[expr.ID]*expr.AttributeReference) {
	mapping := make(map[expr.ID]*expr.AttributeReference)
	out := plan.TransformUp(p, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
		switch leaf := n.(type) {
		case *plan.LocalRelation:
			attrs, changed := freshenAttrs(leaf.Attrs, taken, mapping)
			if !changed {
				return nil, false
			}
			return &plan.LocalRelation{Attrs: attrs, Rows: leaf.Rows, TableStats: leaf.TableStats}, true
		case *plan.LogicalRDD:
			attrs, changed := freshenAttrs(leaf.Attrs, taken, mapping)
			if !changed {
				return nil, false
			}
			return &plan.LogicalRDD{Attrs: attrs, RDD: leaf.RDD, SizeHint: leaf.SizeHint, TableStats: leaf.TableStats}, true
		case *plan.DataSourceRelation:
			attrs, changed := freshenAttrs(leaf.Attrs, taken, mapping)
			if !changed {
				return nil, false
			}
			c := *leaf
			c.Attrs = attrs
			return &c, true
		case *plan.InMemoryRelation:
			attrs, changed := freshenAttrs(leaf.Attrs, taken, mapping)
			if !changed {
				return nil, false
			}
			c := *leaf
			c.Attrs = attrs
			return &c, true
		case *plan.Range:
			if !taken.Contains(leaf.Attr.ID_) {
				return nil, false
			}
			fresh := leaf.Attr.WithFreshID()
			mapping[leaf.Attr.ID_] = fresh
			c := *leaf
			c.Attr = fresh
			return &c, true
		default:
			// Remap expressions and re-alias so derived attribute IDs
			// (Alias IDs) that collide are also freshened.
			replaced, changed := transformNodeExprs(n, func(e expr.Expression) (expr.Expression, bool) {
				switch x := e.(type) {
				case *expr.AttributeReference:
					if fresh, ok := mapping[x.ID_]; ok {
						return fresh.WithQualifier(x.Qualifier), true
					}
				case *expr.Alias:
					if taken.Contains(x.ID_) {
						fresh := expr.NewAlias(x.Child, x.Name)
						mapping[x.ID_] = fresh.ToAttribute()
						return fresh, true
					}
				}
				return nil, false
			})
			if !changed {
				return nil, false
			}
			return replaced, true
		}
	})
	return out, mapping
}

func freshenAttrs(attrs []*expr.AttributeReference, taken expr.AttributeSet, mapping map[expr.ID]*expr.AttributeReference) ([]*expr.AttributeReference, bool) {
	out := make([]*expr.AttributeReference, len(attrs))
	changed := false
	for i, attr := range attrs {
		if taken.Contains(attr.ID_) {
			fresh := attr.WithFreshID()
			mapping[attr.ID_] = fresh
			out[i] = fresh
			changed = true
		} else {
			out[i] = attr
		}
	}
	return out, changed
}

func childrenResolvedPlan(p plan.LogicalPlan) bool {
	for _, c := range p.Children() {
		if !c.Resolved() {
			return false
		}
	}
	return true
}

// transformNodeExprs rewrites the expressions of a single plan node
// (not descending into child plans), reporting whether anything changed.
func transformNodeExprs(n plan.LogicalPlan, f func(expr.Expression) (expr.Expression, bool)) (plan.LogicalPlan, bool) {
	exprs := n.Expressions()
	if len(exprs) == 0 {
		return n, false
	}
	newExprs := make([]expr.Expression, len(exprs))
	changed := false
	for i, e := range exprs {
		ne := expr.TransformUp(e, f)
		newExprs[i] = ne
		if any(ne) != any(e) {
			changed = true
		}
	}
	if !changed {
		return n, false
	}
	return n.WithNewExpressions(newExprs), true
}
