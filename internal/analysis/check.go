package analysis

import (
	"strings"

	"repro/internal/catalyst"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// CheckAnalysis validates a plan after the resolution batch: every node and
// expression must be resolved, filters must be boolean, aggregate output
// must only reference grouped columns or aggregates, and every referenced
// attribute must come from a child (the "sanity checks after each batch" of
// paper §4.2). Errors carry the offending fragment so the user sees the
// problem "as soon as they type an invalid line of code" (§3.4).
func CheckAnalysis(p plan.LogicalPlan) error {
	var err error
	catalyst.Foreach[plan.LogicalPlan](p, func(n plan.LogicalPlan) {
		if err != nil {
			return
		}
		// Unresolved relation/plan-level nodes.
		if !n.Resolved() {
			if u, ok := n.(*plan.UnresolvedRelation); ok {
				err = Errorf("table not found: %s", u.Name)
				return
			}
			// Find the unresolved expression for a pointed error message.
			for _, e := range n.Expressions() {
				if bad, found := firstUnresolved(e); found {
					err = Errorf("cannot resolve %s in operator %s", describe(bad), n.SimpleString())
					return
				}
			}
			err = Errorf("unresolved operator %s", n.SimpleString())
			return
		}
		if missing := plan.MissingReferences(n); len(missing) > 0 && len(n.Children()) > 0 {
			err = Errorf("operator %s references attributes missing from its children", n.SimpleString())
			return
		}
		switch node := n.(type) {
		case *plan.Filter:
			if !node.Cond.DataType().Equals(types.Boolean) {
				err = Errorf("filter condition %s must be BOOLEAN, not %s",
					node.Cond, node.Cond.DataType().Name())
			}
		case *plan.Join:
			if node.Cond != nil && !node.Cond.DataType().Equals(types.Boolean) {
				err = Errorf("join condition %s must be BOOLEAN, not %s",
					node.Cond, node.Cond.DataType().Name())
			}
		case *plan.Aggregate:
			err = checkAggregate(node)
		case *plan.Union:
			err = checkUnion(node)
		}
	})
	return err
}

func firstUnresolved(e expr.Expression) (expr.Expression, bool) {
	return catalyst.Find[expr.Expression](e, func(x expr.Expression) bool {
		return !x.Resolved() && allChildrenResolved(x)
	})
}

func allChildrenResolved(e expr.Expression) bool {
	for _, c := range e.Children() {
		if !c.Resolved() {
			return false
		}
	}
	return true
}

func describe(e expr.Expression) string {
	switch x := e.(type) {
	case *expr.UnresolvedAttribute:
		return "column '" + strings.Join(x.Parts, ".") + "'"
	case *expr.UnresolvedFunction:
		return "function '" + x.Name + "'"
	default:
		return "'" + e.String() + "' (type mismatch)"
	}
}

// checkAggregate enforces SQL grouping semantics: expressions in the
// aggregate list must be aggregate functions or appear in (be derivable
// from) the grouping expressions.
func checkAggregate(a *plan.Aggregate) error {
	groupAttrs := make(expr.AttributeSet)
	for _, g := range a.Grouping {
		for id := range expr.References(g) {
			groupAttrs.Add(id)
		}
	}
	for _, e := range a.Aggs {
		if bad := findUngroupedRef(e, a.Grouping, groupAttrs); bad != nil {
			return Errorf("expression %s is neither grouped nor aggregated (add it to GROUP BY or wrap in an aggregate)", bad)
		}
	}
	return nil
}

// findUngroupedRef walks e skipping aggregate subtrees and whole
// expressions that structurally match a grouping expression, returning an
// attribute reference that escapes both.
func findUngroupedRef(e expr.Expression, grouping []expr.Expression, groupAttrs expr.AttributeSet) expr.Expression {
	if _, isAgg := e.(expr.AggregateFunc); isAgg {
		return nil
	}
	for _, g := range grouping {
		if expr.Equivalent(e, g) {
			return nil
		}
	}
	if attr, ok := e.(*expr.AttributeReference); ok {
		if groupAttrs.Contains(attr.ID_) {
			return nil
		}
		return attr
	}
	for _, c := range e.Children() {
		if bad := findUngroupedRef(c, grouping, groupAttrs); bad != nil {
			return bad
		}
	}
	return nil
}

func checkUnion(u *plan.Union) error {
	first := plan.Schema(u.Kids[0])
	for i, k := range u.Kids[1:] {
		s := plan.Schema(k)
		if len(s.Fields) != len(first.Fields) {
			return Errorf("UNION requires the same number of columns: %d vs %d",
				len(first.Fields), len(s.Fields))
		}
		for j := range s.Fields {
			if !s.Fields[j].Type.Equals(first.Fields[j].Type) {
				return Errorf("UNION column %d type mismatch in input %d: %s vs %s",
					j+1, i+2, first.Fields[j].Type.Name(), s.Fields[j].Type.Name())
			}
		}
	}
	return nil
}
