package sparksql

import (
	"repro/internal/expr"
)

// Column is an expression in the DataFrame DSL (paper §3.3). Operators on
// Columns build an abstract syntax tree that Catalyst optimizes, rather
// than opaque host-language functions — the core difference from the
// native RDD API.
type Column struct {
	e expr.Expression
}

// Col references a column by (possibly dotted) name: "age", "users.age",
// "loc.lat".
func Col(name string) Column {
	return Column{e: expr.UnresolvedAttr(splitDots(name)...)}
}

func splitDots(name string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			parts = append(parts, name[start:i])
			start = i + 1
		}
	}
	return append(parts, name[start:])
}

// Lit builds a literal Column from a Go value (nil for SQL NULL).
func Lit(v any) Column { return Column{e: expr.Lit(v)} }

// Expr exposes the underlying expression for advanced integrations.
func (c Column) Expr() expr.Expression { return c.e }

// String renders the expression.
func (c Column) String() string { return c.e.String() }

// toCol converts string (column name) / Column / literal-ish arguments.
func toCol(v any) Column {
	switch x := v.(type) {
	case Column:
		return x
	case string:
		return Col(x)
	default:
		return Lit(v)
	}
}

// lit coerces the operand of a binary operator: Columns pass through,
// anything else becomes a literal.
func operand(v any) expr.Expression {
	if c, ok := v.(Column); ok {
		return c.e
	}
	return expr.Lit(v)
}

// --- comparisons (the paper's ===, >, etc.) ---

// EQ is the equality test (the paper's === operator).
func (c Column) EQ(other any) Column { return Column{e: expr.EQ(c.e, operand(other))} }

// NEQ is inequality.
func (c Column) NEQ(other any) Column { return Column{e: expr.NEQ(c.e, operand(other))} }

// Lt is less-than.
func (c Column) Lt(other any) Column { return Column{e: expr.LT(c.e, operand(other))} }

// Le is less-or-equal.
func (c Column) Le(other any) Column { return Column{e: expr.LE(c.e, operand(other))} }

// Gt is greater-than.
func (c Column) Gt(other any) Column { return Column{e: expr.GT(c.e, operand(other))} }

// Ge is greater-or-equal.
func (c Column) Ge(other any) Column { return Column{e: expr.GE(c.e, operand(other))} }

// --- arithmetic ---

// Plus is addition.
func (c Column) Plus(other any) Column { return Column{e: expr.Add(c.e, operand(other))} }

// Minus is subtraction.
func (c Column) Minus(other any) Column { return Column{e: expr.Sub(c.e, operand(other))} }

// Times is multiplication.
func (c Column) Times(other any) Column { return Column{e: expr.Mul(c.e, operand(other))} }

// Divide is division.
func (c Column) Divide(other any) Column { return Column{e: expr.Div(c.e, operand(other))} }

// Mod is modulo.
func (c Column) Mod(other any) Column { return Column{e: expr.Mod(c.e, operand(other))} }

// --- logic ---

// And is conjunction.
func (c Column) And(other Column) Column { return Column{e: &expr.And{Left: c.e, Right: other.e}} }

// Or is disjunction.
func (c Column) Or(other Column) Column { return Column{e: &expr.Or{Left: c.e, Right: other.e}} }

// Not negates.
func (c Column) Not() Column { return Column{e: &expr.Not{Child: c.e}} }

// --- predicates ---

// IsNull tests for SQL NULL.
func (c Column) IsNull() Column { return Column{e: &expr.IsNull{Child: c.e}} }

// IsNotNull tests for non-NULL.
func (c Column) IsNotNull() Column { return Column{e: &expr.IsNotNull{Child: c.e}} }

// Like applies a SQL LIKE pattern.
func (c Column) Like(pattern string) Column {
	return Column{e: &expr.Like{Left: c.e, Pattern: expr.Lit(pattern)}}
}

// Contains tests substring containment.
func (c Column) Contains(sub any) Column {
	return Column{e: expr.Contains(c.e, operand(sub))}
}

// StartsWith tests a prefix.
func (c Column) StartsWith(prefix any) Column {
	return Column{e: expr.StartsWith(c.e, operand(prefix))}
}

// EndsWith tests a suffix.
func (c Column) EndsWith(suffix any) Column {
	return Column{e: expr.EndsWith(c.e, operand(suffix))}
}

// In tests membership in a literal list.
func (c Column) In(values ...any) Column {
	list := make([]expr.Expression, len(values))
	for i, v := range values {
		list[i] = operand(v)
	}
	return Column{e: &expr.In{Value: c.e, List: list}}
}

// --- naming, ordering, casting ---

// As names the column (SELECT expr AS name).
func (c Column) As(name string) Column { return Column{e: expr.NewAlias(c.e, name)} }

// Asc orders ascending (for OrderBy).
func (c Column) Asc() Column { return Column{e: expr.Asc(c.e)} }

// Desc orders descending.
func (c Column) Desc() Column { return Column{e: expr.Desc(c.e)} }

// Cast converts to a target type.
func (c Column) Cast(to DataType) Column { return Column{e: expr.NewCast(c.e, to)} }

// GetField drills into a struct column (loc.lat on inferred JSON).
func (c Column) GetField(name string) Column {
	return Column{e: &expr.GetField{Child: c.e, FieldName: name}}
}

// GetItem indexes an array column.
func (c Column) GetItem(i int) Column {
	return Column{e: &expr.GetArrayItem{Child: c.e, Index: expr.Lit(i)}}
}

// Substr takes the 1-based substring.
func (c Column) Substr(pos, length int) Column {
	return Column{e: &expr.Substring{Str: c.e, Pos: expr.Lit(pos), Len: expr.Lit(length)}}
}

// --- aggregate builders ---

// Count aggregates non-NULL values of a column.
func Count(c Column) Column { return Column{e: &expr.Count{Child: c.e}} }

// CountStar counts rows.
func CountStar() Column { return Column{e: expr.NewCountStar()} }

// Sum aggregates a numeric column.
func Sum(c Column) Column { return Column{e: &expr.Sum{Child: c.e}} }

// Avg averages a numeric column.
func Avg(c Column) Column { return Column{e: &expr.Avg{Child: c.e}} }

// Min takes the minimum.
func Min(c Column) Column { return Column{e: expr.NewMin(c.e)} }

// Max takes the maximum.
func Max(c Column) Column { return Column{e: expr.NewMax(c.e)} }

// First takes the first non-NULL value.
func First(c Column) Column { return Column{e: &expr.First{Child: c.e}} }

// --- scalar function builders ---

// Upper upper-cases a string column.
func Upper(c Column) Column { return Column{e: expr.Upper(c.e)} }

// Lower lower-cases a string column.
func Lower(c Column) Column { return Column{e: expr.Lower(c.e)} }

// Length returns the byte length of a string column.
func Length(c Column) Column { return Column{e: expr.Length(c.e)} }

// Concat concatenates string columns.
func Concat(cols ...Column) Column {
	args := make([]expr.Expression, len(cols))
	for i, cc := range cols {
		args[i] = cc.e
	}
	return Column{e: &expr.Concat{Args: args}}
}

// Coalesce returns the first non-NULL argument.
func Coalesce(cols ...Column) Column {
	args := make([]expr.Expression, len(cols))
	for i, cc := range cols {
		args[i] = cc.e
	}
	return Column{e: &expr.Coalesce{Args: args}}
}

// Abs takes the absolute value.
func Abs(c Column) Column { return Column{e: &expr.Abs{Child: c.e}} }

// UDFColumn builds a column applying an arbitrary Go function with
// explicit SQL types — the building block libraries like the ML pipeline
// (paper §5.2) use for transformations whose results are arrays, structs
// or user-defined types. args receive SQL values (NULL as nil).
func UDFColumn(name string, fn func(args []any) any, in []DataType, ret DataType, args ...Column) Column {
	exprs := make([]expr.Expression, len(args))
	for i, a := range args {
		exprs[i] = a.e
	}
	return Column{e: &expr.ScalarUDF{Name: name, Fn: fn, In: in, Ret: ret, Args: exprs}}
}

// When starts a CASE expression: When(cond, value).Otherwise(v).
func When(cond Column, value any) CaseBuilder {
	return CaseBuilder{branches: [][2]expr.Expression{{cond.e, operand(value)}}}
}

// CaseBuilder accumulates CASE WHEN branches.
type CaseBuilder struct {
	branches [][2]expr.Expression
}

// When adds another branch.
func (b CaseBuilder) When(cond Column, value any) CaseBuilder {
	return CaseBuilder{branches: append(b.branches, [2]expr.Expression{cond.e, operand(value)})}
}

// Otherwise finishes with an ELSE value.
func (b CaseBuilder) Otherwise(value any) Column {
	return Column{e: expr.NewCaseWhen(b.branches, operand(value))}
}

// End finishes without an ELSE (unmatched rows yield NULL).
func (b CaseBuilder) End() Column {
	return Column{e: expr.NewCaseWhen(b.branches, nil)}
}
