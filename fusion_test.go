package sparksql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Whole-stage fusion property tests. These extend the spill harness in
// spill_test.go (spillConfig, rowsText, canonText, spillCollect) with CACHED
// tables — fusion only engages over a columnar cache scan — and compare every
// fused shape against the row-at-a-time path: group-key specializations
// (int64, string, (int64,int64) pair, generic, global), every aggregate
// function, broadcast-join probes on int, string, and pair keys under INNER
// and LEFT OUTER, string/date kernels in the pipeline, and memory budgets
// down to one byte (the fused aggregate's partials feed the same
// grace-partitioned spill merge as the row path's).

// fusedConfig is spillConfig plus the row/vectorized switch: vectorized=false
// is the golden row-at-a-time engine, vectorized=true runs the fused plans
// (Fusion defaults on).
func fusedConfig(budget int64, vectorized bool) Config {
	cfg := spillConfig(budget)
	cfg.Vectorized = vectorized
	return cfg
}

// setupFusedTables mirrors setupSpillTables but caches every table and adds
// what the fused shapes need: a low-cardinality string key (word), a second
// int key (sub) for pair grouping and pair-key joins, a DATE column for the
// date kernels, and NULLs sprinkled through every key column.
func setupFusedTables(t testing.TB, ctx *Context) {
	t.Helper()
	events := StructType{}.
		Add("id", IntType, false).
		Add("grp", IntType, true).
		Add("sub", IntType, true).
		Add("word", StringType, true).
		Add("name", StringType, false).
		Add("day", DateType, false).
		Add("val", DoubleType, true)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	rows := make([]Row, spillRows)
	for i := range rows {
		r := Row{
			int32(i),
			int32(i % 80),
			int32(i % 7),
			words[(i*31)%len(words)],
			fmt.Sprintf("n%05d", (i*7919)%spillRows),
			int32(16071 + i%700), // 2014-01-01 .. late 2015
			float64(i%997) * 1.5,
		}
		switch i % 53 { // NULLs in every key/value column the shapes group or join on
		case 0:
			r[1] = nil
		case 1:
			r[2] = nil
		case 2:
			r[3] = nil
		case 3:
			r[6] = nil
		}
		rows[i] = r
	}
	cacheTempTable(t, ctx, events, rows, "events")

	dim := StructType{}.
		Add("grp", IntType, false).
		Add("label", StringType, false)
	var drows []Row
	for g := 0; g < 80; g += 2 {
		drows = append(drows, Row{int32(g), fmt.Sprintf("label%02d", g)})
	}
	cacheTempTable(t, ctx, dim, drows, "dim")

	// Two of the six words are missing so inner string joins drop rows and
	// LEFT OUTER null-extends them.
	dimw := StructType{}.
		Add("word", StringType, false).
		Add("wlabel", StringType, false)
	var wrows []Row
	for _, w := range words[:4] {
		wrows = append(wrows, Row{w, "W:" + w})
	}
	cacheTempTable(t, ctx, dimw, wrows, "dimw")

	// Sparse (grp, sub) pairs for the pair-key probe table.
	dimp := StructType{}.
		Add("grp", IntType, false).
		Add("sub", IntType, false).
		Add("plabel", StringType, false)
	var prows []Row
	for g := 0; g < 80; g += 3 {
		for s := 0; s < 7; s += 2 {
			prows = append(prows, Row{int32(g), int32(s), fmt.Sprintf("p%02d-%d", g, s)})
		}
	}
	cacheTempTable(t, ctx, dimp, prows, "dimp")
}

func cacheTempTable(t testing.TB, ctx *Context, schema StructType, rows []Row, name string) {
	t.Helper()
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Cache(); err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable(name)
}

// fusedExactQueries must match the row path byte for byte, in order.
var fusedExactQueries = []string{
	"SELECT grp, count(*), sum(val) FROM events WHERE id < 2000 GROUP BY grp ORDER BY grp",
	"SELECT word, min(name), max(name) FROM events GROUP BY word ORDER BY word",
	"SELECT name, val FROM events WHERE grp = 7 ORDER BY name",
}

// fusedCanonQueries are compared as sorted row sets (aggregate emission order
// is map-random on the row path). Together they hit every group-table and
// probe-table specialization, the generic fallbacks, and the string/date
// kernels feeding a fused sink.
var fusedCanonQueries = []string{
	// i64 group key, full numeric aggregate set.
	"SELECT grp, count(*), sum(val), avg(val), min(val), max(val) FROM events GROUP BY grp",
	// string group key; first() checks merge-order sensitivity.
	"SELECT word, count(*), sum(val), first(name) FROM events GROUP BY word",
	// (i64, i64) pair group key.
	"SELECT grp, sub, count(*), avg(val) FROM events GROUP BY grp, sub",
	// generic (boxed) group key: Double.
	"SELECT val, count(*) FROM events GROUP BY val",
	// global aggregate, string min/max.
	"SELECT count(*), sum(val), avg(val), min(name), max(name) FROM events WHERE grp > 10",
	// count(DISTINCT) buffers.
	"SELECT grp, count(DISTINCT word) FROM events GROUP BY grp",
	// date kernels as group keys and as a filter.
	"SELECT year(day), month(day), count(*) FROM events GROUP BY year(day), month(day)",
	"SELECT grp, count(*) FROM events WHERE year(day) = 2015 GROUP BY grp",
	// string kernel filter into a fused sink.
	"SELECT word, count(*) FROM events WHERE name LIKE 'n01%' GROUP BY word",
	// broadcast probes: int, string, and pair keys; INNER and LEFT OUTER.
	"SELECT e.name, d.label FROM events e JOIN dim d ON e.grp = d.grp WHERE e.id < 1500",
	"SELECT e.name, d.label FROM events e LEFT JOIN dim d ON e.grp = d.grp WHERE e.id < 500",
	"SELECT e.name, w.wlabel FROM events e JOIN dimw w ON e.word = w.word WHERE e.id < 1500",
	"SELECT e.name, w.wlabel FROM events e LEFT JOIN dimw w ON e.word = w.word WHERE e.id < 500",
	"SELECT e.name, p.plabel FROM events e JOIN dimp p ON e.grp = p.grp AND e.sub = p.sub",
	"SELECT e.name, p.plabel FROM events e LEFT JOIN dimp p ON e.grp = p.grp AND e.sub = p.sub WHERE e.id < 500",
	// aggregate above a join: the probe fuses, the sink sits higher.
	"SELECT d.label, count(*) FROM events e JOIN dim d ON e.grp = d.grp GROUP BY d.label",
}

// randomFusedQueries derives extra grouped-aggregate shapes from a fixed
// seed: random key shape, random selectivity.
func randomFusedQueries() []string {
	rng := rand.New(rand.NewSource(0xF05E))
	keys := []string{"grp", "sub", "word", "grp, sub"}
	var out []string
	for i := 0; i < 4; i++ {
		k := keys[rng.Intn(len(keys))]
		x := rng.Intn(spillRows)
		out = append(out, fmt.Sprintf(
			"SELECT %s, count(*), sum(val), min(name) FROM events WHERE id < %d GROUP BY %s", k, x, k))
	}
	return out
}

// TestFusedPipelineByteIdentical is the acceptance property: at every budget
// — unbounded down to one byte — the fused engine's results are byte-identical
// to the row path's, spilling really happens at the bounded budgets, and no
// spill file survives any query.
func TestFusedPipelineByteIdentical(t *testing.T) {
	canonQueries := append(append([]string{}, fusedCanonQueries...), randomFusedQueries()...)

	golden := NewContextWithConfig(fusedConfig(0, false))
	setupFusedTables(t, golden)
	wantExact := make(map[string]string, len(fusedExactQueries))
	for _, q := range fusedExactQueries {
		wantExact[q] = rowsText(spillCollect(t, golden, q))
	}
	wantCanon := make(map[string]string, len(canonQueries))
	for _, q := range canonQueries {
		wantCanon[q] = canonText(spillCollect(t, golden, q))
	}

	budgets := []int64{0, 1, 127, 1 << 10, 16 << 10}
	rng := rand.New(rand.NewSource(0x5B111))
	for i := 0; i < 3; i++ {
		budgets = append(budgets, 1+rng.Int63n(16<<10))
	}

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			if budget == 1 && testing.Short() {
				t.Skip("one-byte budget spills per row; skipped in -short")
			}
			ctx := NewContextWithConfig(fusedConfig(budget, true))
			setupFusedTables(t, ctx)
			ctx.SpillFS().WriteNanosPerByte = 0
			ctx.SpillFS().ReadNanosPerByte = 0
			for _, q := range fusedExactQueries {
				if got := rowsText(spillCollect(t, ctx, q)); got != wantExact[q] {
					t.Errorf("%q diverged from the row path at budget %d", q, budget)
				}
				if nf := ctx.SpillFS().NumFiles(); nf != 0 {
					t.Fatalf("%q left %d spill files at budget %d", q, nf, budget)
				}
			}
			for _, q := range canonQueries {
				if got := canonText(spillCollect(t, ctx, q)); got != wantCanon[q] {
					t.Errorf("%q diverged from the row path at budget %d", q, budget)
				}
				if nf := ctx.SpillFS().NumFiles(); nf != 0 {
					t.Fatalf("%q left %d spill files at budget %d", q, nf, budget)
				}
			}
			if budget > 0 {
				if n := ctx.Metrics().Counter("memory.spill.count").Load(); n == 0 {
					t.Fatalf("budget %d forced no spills over %d-row inputs", budget, spillRows)
				}
			}
		})
	}
}

// TestFusionExplain pins the observability contract: fused plans announce
// themselves (operator name + `fused: true`), the Fusion knob removes them,
// and EXPLAIN ANALYZE annotates the fused operators with actuals.
func TestFusionExplain(t *testing.T) {
	ctx := NewContextWithConfig(fusedConfig(0, true))
	setupFusedTables(t, ctx)

	mustExplain := func(q string) string {
		t.Helper()
		df, err := ctx.SQL(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		out, err := df.Explain()
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		return out
	}

	agg := mustExplain("SELECT grp, count(*), sum(val) FROM events GROUP BY grp")
	if !strings.Contains(agg, "FusedHashAggregate") || !strings.Contains(agg, "(fused: true)") {
		t.Fatalf("aggregate plan not fused:\n%s", agg)
	}
	join := mustExplain("SELECT e.name, d.label FROM events e JOIN dim d ON e.grp = d.grp")
	if !strings.Contains(join, "FusedBroadcastHashJoin") {
		t.Fatalf("broadcast join plan not fused:\n%s", join)
	}

	df, err := ctx.SQL("SELECT grp, count(*) FROM events WHERE id < 2000 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	analyzed, err := df.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyzed, "FusedHashAggregate") || !strings.Contains(analyzed, "actual:") {
		t.Fatalf("EXPLAIN ANALYZE missing fused actuals:\n%s", analyzed)
	}

	// The knob: Fusion=false keeps vectorized pipelines but no fused sinks.
	cfg := fusedConfig(0, true)
	cfg.Fusion = false
	off := NewContextWithConfig(cfg)
	setupFusedTables(t, off)
	odf, err := off.SQL("SELECT grp, count(*) FROM events GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	oout, err := odf.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(oout, "Fused") {
		t.Fatalf("Fusion=false still produced fused operators:\n%s", oout)
	}
	if !strings.Contains(oout, "VectorizedPipeline") {
		t.Fatalf("Fusion=false lost vectorization:\n%s", oout)
	}
}
