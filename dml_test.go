package sparksql

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func mustSQL(t *testing.T, ctx *Context, query string) *DataFrame {
	t.Helper()
	df, err := ctx.SQL(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	return df
}

func collectSQL(t *testing.T, ctx *Context, query string) []Row {
	t.Helper()
	rows, err := mustSQL(t, ctx, query).Collect()
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	return rows
}

func affected(t *testing.T, ctx *Context, query string) int64 {
	t.Helper()
	rows := collectSQL(t, ctx, query)
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("%s: result = %v, want one rows_affected row", query, rows)
	}
	return rows[0][0].(int64)
}

func TestSQLCreateInsertSelect(t *testing.T) {
	ctx := NewContext()
	mustSQL(t, ctx, "CREATE TABLE users (id BIGINT NOT NULL, name STRING, age INT)")
	if n := affected(t, ctx, "INSERT INTO users VALUES (1, 'alice', 34), (2, 'bob', 19), (3, 'carol', 27)"); n != 3 {
		t.Fatalf("inserted %d rows", n)
	}
	// A column-subset insert leaves unlisted columns NULL.
	if n := affected(t, ctx, "INSERT INTO users (id, name) VALUES (4, 'dave')"); n != 1 {
		t.Fatalf("inserted %d rows", n)
	}
	// VALUES expressions run through the full evaluator: arithmetic, casts.
	affected(t, ctx, "INSERT INTO users VALUES (2 + 3, UPPER('eve'), CAST('40' AS INT))")

	got := collectSQL(t, ctx, "SELECT id, name, age FROM users ORDER BY id")
	want := []Row{
		{int64(1), "alice", int32(34)},
		{int64(2), "bob", int32(19)},
		{int64(3), "carol", int32(27)},
		{int64(4), "dave", nil},
		{int64(5), "EVE", int32(40)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	// Persistent tables are ordinary scan sources: aggregates, joins, the
	// whole relational surface.
	got = collectSQL(t, ctx, "SELECT COUNT(*), AVG(age) FROM users WHERE age IS NOT NULL")
	if len(got) != 1 || got[0][0].(int64) != 4 {
		t.Fatalf("agg = %v", got)
	}

	if n := affected(t, ctx, "UPDATE users SET age = age + 1 WHERE name = 'bob'"); n != 1 {
		t.Fatalf("updated %d rows", n)
	}
	got = collectSQL(t, ctx, "SELECT age FROM users WHERE name = 'bob'")
	if !reflect.DeepEqual(got, []Row{{int32(20)}}) {
		t.Fatalf("bob's age = %v", got)
	}

	if n := affected(t, ctx, "DELETE FROM users WHERE age IS NULL"); n != 1 {
		t.Fatalf("deleted %d rows", n)
	}
	if n := len(collectSQL(t, ctx, "SELECT id FROM users")); n != 4 {
		t.Fatalf("%d rows after delete", n)
	}

	mustSQL(t, ctx, "DROP TABLE users")
	if _, err := ctx.SQL("SELECT * FROM users"); err == nil {
		t.Fatal("query against dropped table succeeded")
	}
}

func TestSQLInsertSelect(t *testing.T) {
	ctx := NewContext()
	mustSQL(t, ctx, "CREATE TABLE src (id BIGINT, v STRING)")
	mustSQL(t, ctx, "CREATE TABLE dst (id BIGINT, v STRING)")
	affected(t, ctx, "INSERT INTO src VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
	if n := affected(t, ctx, "INSERT INTO dst SELECT id, UPPER(v) FROM src WHERE id > 2"); n != 2 {
		t.Fatalf("inserted %d rows", n)
	}
	got := collectSQL(t, ctx, "SELECT id, v FROM dst ORDER BY id")
	want := []Row{{int64(3), "C"}, {int64(4), "D"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	// CREATE TABLE AS SELECT snapshots a query result into a new table.
	mustSQL(t, ctx, "CREATE TABLE copy AS SELECT id FROM src WHERE id < 3")
	if n := len(collectSQL(t, ctx, "SELECT * FROM copy")); n != 2 {
		t.Fatalf("CTAS rows = %d", n)
	}
}

func TestSQLShowTablesAndDescribe(t *testing.T) {
	ctx := NewContext()
	mustSQL(t, ctx, "CREATE TABLE t1 (a BIGINT NOT NULL, b STRING)")
	affected(t, ctx, "INSERT INTO t1 VALUES (1,'x'),(2,'y')")
	ctx.Range(5).RegisterTempTable("view5")

	rows := collectSQL(t, ctx, "SHOW TABLES")
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r[0].(string)] = r
	}
	t1, ok := byName["t1"]
	if !ok || t1[1] != "table" || t1[2].(int64) != 2 || t1[3].(int64) <= 0 {
		t.Fatalf("t1 row = %v", t1)
	}
	if v, ok := byName["view5"]; !ok || v[1] != "temp" || v[2] != nil {
		t.Fatalf("view5 row = %v", v)
	}

	desc := collectSQL(t, ctx, "DESCRIBE t1")
	want := []Row{
		{"a", "BIGINT", "false"},
		{"b", "STRING", "true"},
		{"# version", "2", ""},
	}
	if !reflect.DeepEqual(desc, want) {
		t.Fatalf("describe = %v, want %v", desc, want)
	}
	// DESCRIBE works on temp tables too (no version row).
	desc = collectSQL(t, ctx, "DESCRIBE view5")
	if len(desc) != 1 || desc[0][0] != "id" {
		t.Fatalf("describe view5 = %v", desc)
	}
}

// TestSQLSnapshotIsolation is the acceptance criterion: a query planned
// before concurrent UPDATE/DELETE statements returns byte-identical
// pre-write results when executed after them.
func TestSQLSnapshotIsolation(t *testing.T) {
	ctx := NewContext()
	mustSQL(t, ctx, "CREATE TABLE accounts (id BIGINT, balance BIGINT)")
	affected(t, ctx, "INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300)")

	// Pin the snapshot: building the frame resolves the current version.
	pinned := mustSQL(t, ctx, "SELECT id, balance FROM accounts ORDER BY id")
	before, err := pinned.Collect()
	if err != nil {
		t.Fatal(err)
	}

	affected(t, ctx, "UPDATE accounts SET balance = 0 WHERE id = 1")
	affected(t, ctx, "DELETE FROM accounts WHERE id = 3")
	affected(t, ctx, "INSERT INTO accounts VALUES (4, 400)")

	// The pinned frame still reads the pre-write version...
	after, err := pinned.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("pinned query drifted: %v vs %v", after, before)
	}
	want := []Row{{int64(1), int64(100)}, {int64(2), int64(200)}, {int64(3), int64(300)}}
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("pinned rows = %v, want %v", after, want)
	}
	// ...while a fresh query sees all three writes.
	fresh := collectSQL(t, ctx, "SELECT id, balance FROM accounts ORDER BY id")
	wantFresh := []Row{{int64(1), int64(0)}, {int64(2), int64(200)}, {int64(4), int64(400)}}
	if !reflect.DeepEqual(fresh, wantFresh) {
		t.Fatalf("fresh rows = %v, want %v", fresh, wantFresh)
	}
}

// TestSQLDurablePersistence: committed DML survives a context restart on
// the same data directory.
func TestSQLDurablePersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.DataDir = dir
	ctx := NewContextWithConfig(cfg)
	mustSQL(t, ctx, "CREATE TABLE kv (k BIGINT, v STRING)")
	affected(t, ctx, "INSERT INTO kv VALUES (1,'a'),(2,'b')")
	affected(t, ctx, "DELETE FROM kv WHERE k = 1")
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}

	ctx2 := NewContextWithConfig(cfg)
	defer ctx2.Close()
	got := collectSQL(t, ctx2, "SELECT k, v FROM kv ORDER BY k")
	if !reflect.DeepEqual(got, []Row{{int64(2), "b"}}) {
		t.Fatalf("recovered rows = %v", got)
	}
	// And keeps accepting writes.
	affected(t, ctx2, "INSERT INTO kv VALUES (3,'c')")
	got = collectSQL(t, ctx2, "SELECT k FROM kv ORDER BY k")
	if !reflect.DeepEqual(got, []Row{{int64(2)}, {int64(3)}}) {
		t.Fatalf("rows = %v", got)
	}
}

// TestStatsAutoRefreshChangesPlan: once DML pushes a table past the
// refresh threshold its statistics recompute automatically, and a query
// planned afterwards comes out different — the CBO sees the new sizes.
func TestStatsAutoRefreshChangesPlan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StatsRefreshRows = 100
	cfg.BroadcastThreshold = 4096
	ctx := NewContextWithConfig(cfg)
	mustSQL(t, ctx, "CREATE TABLE big (k BIGINT, pad STRING)")
	mustSQL(t, ctx, "CREATE TABLE small (k BIGINT, name STRING)")
	affected(t, ctx, "INSERT INTO small VALUES (1,'a'),(2,'b'),(3,'c')")
	ctx.Range(50).RegisterTempTable("r50")
	ctx.Range(2000).RegisterTempTable("r2000")

	// 50 rows: below the refresh threshold, so big's statistics still say
	// zero rows and the planner happily broadcasts it.
	affected(t, ctx, "INSERT INTO big SELECT id, 'padpadpadpadpadpadpadpadpadpadpad' FROM r50")
	if rel := ctx.Store().Snapshot("big"); rel.RowCount != 0 {
		t.Fatalf("stats refreshed below threshold: %d rows", rel.RowCount)
	}
	const join = "SELECT small.name FROM big JOIN small ON big.k = small.k"
	planBefore, err := mustSQL(t, ctx, join).Explain()
	if err != nil {
		t.Fatal(err)
	}

	// 2000 more rows cross the threshold: statistics refresh, big's
	// estimated size blows past the broadcast threshold, and the same
	// query plans differently.
	affected(t, ctx, "INSERT INTO big SELECT id, 'padpadpadpadpadpadpadpadpadpadpad' FROM r2000")
	rel := ctx.Store().Snapshot("big")
	if rel.RowCount != 2050 {
		t.Fatalf("stats not refreshed above threshold: %d rows", rel.RowCount)
	}
	if rel.SizeInBytes <= int64(cfg.BroadcastThreshold) {
		t.Fatalf("test setup: big is only %d bytes", rel.SizeInBytes)
	}
	planAfter, err := mustSQL(t, ctx, join).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if planBefore == planAfter {
		t.Fatalf("plan did not change after stats refresh:\n%s", planAfter)
	}
}

// TestAnalyzeTableRoutesToStore: ANALYZE TABLE on a persistent table
// refreshes its statistics immediately, below any threshold.
func TestAnalyzeTableRoutesToStore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StatsRefreshRows = -1 // never auto-refresh
	ctx := NewContextWithConfig(cfg)
	mustSQL(t, ctx, "CREATE TABLE t (a BIGINT)")
	affected(t, ctx, "INSERT INTO t VALUES (1),(2),(3)")
	if rel := ctx.Store().Snapshot("t"); rel.RowCount != 0 {
		t.Fatalf("auto-refresh happened despite negative threshold: %d", rel.RowCount)
	}
	mustSQL(t, ctx, "ANALYZE TABLE t COMPUTE STATISTICS")
	rel := ctx.Store().Snapshot("t")
	if rel.RowCount != 3 || rel.TableStats == nil || rel.TableStats.RowCount != 3 {
		t.Fatalf("ANALYZE did not refresh store stats: %+v", rel)
	}
}

// TestDMLErrors: the failure modes surface as errors, not partial writes.
func TestDMLErrors(t *testing.T) {
	ctx := NewContext()
	mustSQL(t, ctx, "CREATE TABLE t (a BIGINT NOT NULL, b STRING)")
	for _, bad := range []string{
		"CREATE TABLE t (x INT)",                  // duplicate
		"INSERT INTO missing VALUES (1)",          // unknown table
		"INSERT INTO t VALUES (1)",                // arity
		"INSERT INTO t (a, nope) VALUES (1, 'x')", // unknown column
		"INSERT INTO t (b) VALUES ('x')",          // NULL into NOT NULL
		"UPDATE t SET nope = 1",                   // unknown SET column
		"UPDATE missing SET a = 1",                // unknown table
		"DELETE FROM missing",                     // unknown table
		"DROP TABLE missing",                      // unknown table
		"DESCRIBE missing",                        // unknown table
	} {
		if _, err := ctx.SQL(bad); err == nil {
			t.Errorf("%s: no error", bad)
		}
	}
	// Nothing was committed by the failures.
	if n := len(collectSQL(t, ctx, "SELECT * FROM t")); n != 0 {
		t.Fatalf("table has %d rows after failed DML", n)
	}
	if !strings.Contains(fmt.Sprint(collectSQL(t, ctx, "SHOW TABLES")), "t") {
		t.Fatal("SHOW TABLES lost the table")
	}
}
