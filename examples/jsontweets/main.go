// JSON schema inference: the paper's §5.1 — generate tweets with missing
// fields and mixed integer/float coordinates, infer the schema in one pass,
// and query nested paths immediately. Also demonstrates the §7.1 online
// aggregation extension over the same data.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/online"
)

func main() {
	dir, err := os.MkdirTemp("", "tweets")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a tweets file shaped like the paper's Figure 5.
	path := filepath.Join(dir, "tweets.json")
	var sb strings.Builder
	for i := int64(0); i < 5_000; i++ {
		sb.WriteString(datagen.TweetJSON(3, i))
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	ctx := sparksql.NewContext()
	tweets, err := ctx.Read().JSON(path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("inferred schema (paper Figure 6's shape):")
	for _, f := range tweets.Schema().Fields {
		fmt.Printf("  %s\n", f)
	}

	// Query nested fields by path right away (paper's §5.1 query).
	tweets.RegisterTempTable("tweets")
	q, err := ctx.SQL(`
		SELECT loc.lat, loc.long FROM tweets
		WHERE text LIKE '%spark%' AND loc IS NOT NULL
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := q.Show(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntweets mentioning spark, located:")
	fmt.Print(out)

	// §7.1: online aggregation — watch the average latitude converge with
	// tightening confidence intervals, batch by batch.
	located, err := tweets.WhereSQL("loc IS NOT NULL")
	if err != nil {
		log.Fatal(err)
	}
	withLat, err := located.Select(
		sparksql.Lit("all").As("grp"),
		sparksql.Col("loc").GetField("lat").As("lat"))
	if err != nil {
		log.Fatal(err)
	}
	progress, err := online.Avg(ctx, withLat, "grp", "lat", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nonline AVG(lat): estimate ± 95% CI as data streams in")
	for _, p := range progress {
		for _, e := range p.Estimates {
			fmt.Printf("  %3.0f%% of data: %.3f ± %.3f (n=%d)\n",
				p.Fraction*100, e.Avg, e.CI, e.N)
		}
	}
}
