// ML pipeline: the paper's Figure 7 — a (text, label) DataFrame flows
// through Tokenizer → HashingTF → LogisticRegression, with vectors stored
// as a user-defined type (§4.4.2, §5.2), and the trained model registered
// as a SQL UDF (§3.7's MADLib-style exposure).
package main

import (
	"fmt"
	"log"

	sparksql "repro"
	"repro/internal/ml"
	"repro/internal/row"
)

func main() {
	ctx := sparksql.NewContext()
	if err := ctx.RegisterUDT(ml.VectorUDT{}); err != nil {
		log.Fatal(err)
	}

	// Training data: (text, label) records, as in Figure 7.
	schema := sparksql.StructType{}.
		Add("text", sparksql.StringType, false).
		Add("label", sparksql.DoubleType, false)
	train, err := ctx.CreateDataFrame(schema, []sparksql.Row{
		{"spark sql is fast and declarative", 1.0},
		{"catalyst optimizes query plans", 1.0},
		{"dataframes mix relational and procedural", 1.0},
		{"the quick brown fox jumps", 0.0},
		{"lazy dogs sleep all day", 0.0},
		{"foxes and dogs are animals", 0.0},
	})
	if err != nil {
		log.Fatal(err)
	}

	pipeline := &ml.Pipeline{Stages: []any{
		&ml.Tokenizer{InputCol: "text", OutputCol: "words"},
		&ml.HashingTF{InputCol: "words", OutputCol: "features", NumFeatures: 256},
		&ml.LogisticRegression{FeaturesCol: "features", LabelCol: "label", MaxIter: 200},
	}}
	model, err := pipeline.Fit(train)
	if err != nil {
		log.Fatal(err)
	}

	// Score new documents.
	test, err := ctx.CreateDataFrame(schema, []sparksql.Row{
		{"spark plans queries with catalyst", 1.0},
		{"the brown dog sleeps", 0.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	scored, err := model.Transform(test)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := scored.Select("text", "label", "prediction")
	if err != nil {
		log.Fatal(err)
	}
	out, err := sel.Show(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline predictions:")
	fmt.Print(out)

	// Expose the model to SQL users (paper §3.7): register predict as a
	// UDF over the vector UDT and call it from a query.
	lrModel := model.Stages[2].(*ml.LogisticRegressionModel)
	featurizer := &ml.PipelineModel{Stages: model.Stages[:2]}
	feats, err := featurizer.Transform(test)
	if err != nil {
		log.Fatal(err)
	}
	feats.RegisterTempTable("docs")
	predictCol := sparksql.UDFColumn("predict",
		func(args []any) any {
			if args[0] == nil {
				return nil
			}
			return lrModel.PredictProb(ml.DeserializeVector(args[0].(row.Row)))
		},
		[]sparksql.DataType{ml.VectorUDT{}.SQLType()},
		sparksql.DoubleType,
		sparksql.Col("features"))
	probs, err := feats.Select(sparksql.Col("text"), predictCol.As("p_spark"))
	if err != nil {
		log.Fatal(err)
	}
	out, err = probs.Show(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P(label=1) via model-as-UDF:")
	fmt.Print(out)
}
