// Quickstart: the paper's §3.1 flow — create a DataFrame over native Go
// data, filter it with the DSL, register it as a temp table, and mix in
// SQL, with eager analysis catching schema errors immediately.
package main

import (
	"fmt"
	"log"

	sparksql "repro"
)

// User is a native Go record; the schema is inferred by reflection, the
// analogue of Spark SQL reading Scala case classes (paper §3.5).
type User struct {
	Name string
	Age  int32
}

func main() {
	ctx := sparksql.NewContext()

	users, err := ctx.CreateDataFrameFromStructs([]User{
		{"Alice", 22}, {"Bob", 19}, {"Carol", 35}, {"Dan", 17},
	})
	if err != nil {
		log.Fatal(err)
	}

	// DSL: users.where(users("age") < 21) — paper §3.1.
	young, err := users.Where(users.MustCol("Age").Lt(21))
	if err != nil {
		log.Fatal(err)
	}
	n, err := young.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users under 21: %d\n", n)

	// DataFrames registered as temp tables stay unmaterialized views, so
	// SQL composes with the DSL plan (paper §3.3).
	young.RegisterTempTable("young")
	stats, err := ctx.SQL("SELECT count(*), avg(Age) FROM young")
	if err != nil {
		log.Fatal(err)
	}
	out, err := stats.Show(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// Analysis is eager: a typo fails NOW, not at execution (paper §3.4).
	if _, err := users.Where(sparksql.Col("aeg").Lt(21)); err != nil {
		fmt.Printf("eager analysis caught: %v\n", err)
	}

	// An inline UDF (paper §3.7), usable from SQL immediately.
	if err := ctx.RegisterUDF("shout", func(s string) string { return s + "!" }); err != nil {
		log.Fatal(err)
	}
	users.RegisterTempTable("users")
	df, err := ctx.SQL("SELECT shout(Name) FROM users ORDER BY Name LIMIT 2")
	if err != nil {
		log.Fatal(err)
	}
	out, err = df.Show(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// EXPLAIN shows all Catalyst phases (paper Figure 3).
	explain, err := young.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCatalyst phases for the `young` DataFrame:")
	fmt.Print(explain)
}
