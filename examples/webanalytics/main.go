// Web analytics: the paper's evaluation workload (§6.1) end to end —
// generate the Pavlo rankings/uservisits tables, store them in the
// columnar file format, and run the AMPLab benchmark's scan, aggregation
// and join queries, showing the optimized plans with pushdown.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/row"
)

func main() {
	dir, err := os.MkdirTemp("", "webanalytics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ctx := sparksql.NewContext()

	// Generate and persist the two tables columnar.
	const nRankings, nVisits = 10_000, 30_000
	rankings := make([]sparksql.Row, nRankings)
	for i := range rankings {
		rankings[i] = datagen.RankingRow(7, int64(i))
	}
	visits := make([]sparksql.Row, nVisits)
	for i := range visits {
		visits[i] = datagen.UserVisitRow(8, int64(i), nRankings)
	}
	writeTable(ctx, filepath.Join(dir, "rankings.gcf"), datagen.RankingsSchema().Fields, rankings, "rankings")
	writeTable(ctx, filepath.Join(dir, "uservisits.gcf"), datagen.UserVisitsSchema().Fields, visits, "uservisits")

	// Q1: scan with predicate pushdown into the columnar file.
	q1, err := ctx.SQL("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000")
	if err != nil {
		log.Fatal(err)
	}
	n, err := q1.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d high-rank pages\n", n)
	explain, _ := q1.Explain()
	fmt.Println(explain)

	// Q2: aggregation on a computed key.
	q2, err := ctx.SQL(`
		SELECT SUBSTR(sourceIP, 1, 8) AS prefix, SUM(adRevenue) AS rev
		FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 8)
		ORDER BY rev DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := q2.Show(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2: top revenue by source prefix")
	fmt.Print(out)

	// Q3: the join — the cost model picks a broadcast join because the
	// rankings table is small.
	q3, err := ctx.SQL(`
		SELECT sourceIP, SUM(adRevenue) AS totalRevenue, AVG(pageRank) AS avgRank
		FROM rankings R JOIN uservisits UV ON R.pageURL = UV.destURL
		WHERE UV.visitDate >= '1980-01-01' AND UV.visitDate <= '1980-04-01'
		GROUP BY sourceIP ORDER BY totalRevenue DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	out, err = q3.Show(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q3: top visitors in Q1 1980")
	fmt.Print(out)
	explain, _ = q3.Explain()
	fmt.Println(explain)
}

func writeTable(ctx *sparksql.Context, path string, fields []sparksql.StructField, rows []row.Row, name string) {
	schema := sparksql.StructType{Fields: fields}
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := df.Write().RowGroupSize(4096).ColFile(path); err != nil {
		log.Fatal(err)
	}
	stored, err := ctx.Read().ColFile(path)
	if err != nil {
		log.Fatal(err)
	}
	stored.RegisterTempTable(name)
}
