// Query federation: the paper's §5.3 example — join a "remote" users
// database (the embedded memdb standing in for MySQL-behind-JDBC) with
// local JSON logs. Catalyst pushes the registrationDate predicate and the
// column list into the database, and the program prints the exact query
// the remote database served plus the bytes that crossed the link, with
// and without pushdown.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	sparksql "repro"
	"repro/internal/memdb"
	"repro/internal/row"
	"repro/internal/types"
)

func main() {
	// The "remote" database.
	db := memdb.New()
	userSchema := types.StructType{}.
		Add("id", types.Long, false).
		Add("name", types.String, false).
		Add("registrationDate", types.Date, false).
		Add("bio", types.String, false)
	users := make([]row.Row, 2_000)
	for i := range users {
		users[i] = row.Row{
			int64(i),
			fmt.Sprintf("user%04d", i),
			int32(16071 + (i*11)%730), // 2014-2015
			"a long biography that pushdown avoids shipping over the network",
		}
	}
	db.CreateTable("users", userSchema, users)

	// Local JSON logs.
	dir, err := os.MkdirTemp("", "federation")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logsPath := filepath.Join(dir, "logs.json")
	f, err := os.Create(logsPath)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8_000; i++ {
		fmt.Fprintf(f, "{\"userId\": %d, \"message\": \"GET /page/%d\"}\n", (i*13)%2000, i%97)
	}
	f.Close()

	for _, pushdown := range []bool{false, true} {
		ctx := sparksql.NewContext()
		ctx.RegisterDataSource("jdbc", memdb.Provider(db))

		// The paper's two CREATE TEMPORARY TABLE statements (§5.3).
		pd := fmt.Sprintf("%v", pushdown)
		if _, err := ctx.SQL(
			"CREATE TEMPORARY TABLE users USING jdbc OPTIONS(`table` 'users', pushdown '" + pd + "')"); err != nil {
			log.Fatal(err)
		}
		if _, err := ctx.SQL(
			"CREATE TEMPORARY TABLE logs USING json OPTIONS(path '" + logsPath + "')"); err != nil {
			log.Fatal(err)
		}

		db.ResetMeter()
		df, err := ctx.SQL(`
			SELECT users.id, users.name, logs.message
			FROM users JOIN logs ON users.id = logs.userId
			WHERE users.registrationDate > '2015-01-01'`)
		if err != nil {
			log.Fatal(err)
		}
		n, err := df.Count()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pushdown=%-5v rows=%d  bytes over link=%d\n", pushdown, n, db.BytesTransferred())
	}

	if qlog := db.QueryLog(); len(qlog) > 0 {
		fmt.Println("\nquery the remote database served last (with pushdown):")
		fmt.Println(" ", qlog[len(qlog)-1])
	}
}
