// Range join: the paper's §7.2 computational-genomics extension — overlap
// joins expressed as inequality predicates, executed with an interval tree
// via a custom planner strategy instead of a nested-loop join, and timed
// against the fallback.
package main

import (
	"fmt"
	"log"
	"time"

	sparksql "repro"
	"repro/internal/rangejoin"
)

// Feature is a genomic interval; Read is a position to locate in features.
type Feature struct {
	Start int64
	End   int64
	Gene  string
}

type Read struct {
	Start int64
	End   int64
	ID    int64
}

func run(withStrategy bool, nFeatures, nReads int) (int64, time.Duration, error) {
	ctx := sparksql.NewContext()
	if withStrategy {
		// The extension point: ~100 lines of planning rule in the paper.
		ctx.Engine().AddStrategy(rangejoin.Strategy())
	}

	features := make([]Feature, nFeatures)
	for i := range features {
		start := int64(i) * 100
		features[i] = Feature{Start: start, End: start + 150, Gene: fmt.Sprintf("g%d", i)}
	}
	reads := make([]Read, nReads)
	for i := range reads {
		pos := int64(i*37) % (int64(nFeatures) * 100)
		reads[i] = Read{Start: pos, End: pos + 50, ID: int64(i)}
	}
	a, err := ctx.CreateDataFrameFromStructs(features)
	if err != nil {
		return 0, 0, err
	}
	b, err := ctx.CreateDataFrameFromStructs(reads)
	if err != nil {
		return 0, 0, err
	}
	a.RegisterTempTable("a")
	b.RegisterTempTable("b")

	// The paper's §7.2 range join.
	df, err := ctx.SQL(`
		SELECT * FROM a JOIN b
		ON a.Start < b.Start AND b.Start < a.End
		WHERE a.Start < a.End AND b.Start < b.End`)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	n, err := df.Count()
	return n, time.Since(t0), err
}

func main() {
	const nFeatures, nReads = 1_500, 8_000
	nLoop, tLoop, err := run(false, nFeatures, nReads)
	if err != nil {
		log.Fatal(err)
	}
	nTree, tTree, err := run(true, nFeatures, nReads)
	if err != nil {
		log.Fatal(err)
	}
	if nLoop != nTree {
		log.Fatalf("result mismatch: nested-loop=%d interval-tree=%d", nLoop, nTree)
	}
	fmt.Printf("overlaps found: %d\n", nTree)
	fmt.Printf("nested-loop join:    %v\n", tLoop)
	fmt.Printf("interval-tree join:  %v (%.1fx faster)\n",
		tTree, float64(tLoop)/float64(tTree))
}
