package sparksql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

// vecTestContext builds a context with the vectorized knob set, caches a
// rankings-like table with NULLs under it, and registers a UDF, so the
// battery below exercises native kernels and scalar fallbacks alike.
func vecTestContext(t *testing.T, vectorized bool) *Context {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Vectorized = vectorized
	ctx := NewContextWithConfig(cfg)
	if err := ctx.RegisterUDF("twice", func(x int32) int32 { return 2 * x }); err != nil {
		t.Fatal(err)
	}
	schema := StructType{}.
		Add("url", StringType, true).
		Add("rank", IntType, true).
		Add("dur", LongType, true).
		Add("rev", DoubleType, true)
	rows := make([]Row, 3000)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := range rows {
		r := Row{
			fmt.Sprintf("url_%s_%04d", words[i%len(words)], i%50),
			int32((i * 37) % 1000),
			int64(i % 17),
			float64(i%400) / 4.0,
		}
		if i%13 == 0 {
			r[i%4] = nil
		}
		rows[i] = r
	}
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Cache(); err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("pages")
	return ctx
}

// The acceptance contract: every query returns byte-identical results with
// Vectorized on and off, across native kernels, scalar fallbacks, and
// operators above the pipeline.
func TestVectorizedResultsByteIdentical(t *testing.T) {
	rowCtx := vecTestContext(t, false)
	vecCtx := vecTestContext(t, true)
	queries := []string{
		"SELECT url, rank FROM pages WHERE rank > 500",
		"SELECT rank + 10, dur * 3 FROM pages WHERE rank >= 990",
		"SELECT url FROM pages WHERE rank > 100 AND rank < 120",
		"SELECT url FROM pages WHERE rank < 5 OR rank > 995",
		"SELECT url FROM pages WHERE rank IS NULL",
		"SELECT rank FROM pages WHERE url IS NOT NULL AND rank IS NOT NULL",
		"SELECT dur FROM pages WHERE dur IN (3, 5, 16)",
		"SELECT url FROM pages WHERE url LIKE 'url_alpha%'",     // fallback kernel
		"SELECT twice(rank) FROM pages WHERE rank > 700",        // UDF fallback
		"SELECT rev * 2.0 FROM pages WHERE rev >= 90.0",
		"SELECT rank / 0 FROM pages WHERE rank > 900",           // NULL division
		"SELECT url, rank FROM pages WHERE NOT (rank > 10)",     // 3-valued NOT
		"SELECT COUNT(*), SUM(rank), AVG(rev) FROM pages WHERE rank > 250",
		"SELECT url, COUNT(*) FROM pages WHERE rank > 300 GROUP BY url ORDER BY url LIMIT 20",
	}
	for _, q := range queries {
		rowRes := mustRunRows(t, rowCtx, q)
		vecRes := mustRunRows(t, vecCtx, q)
		if len(rowRes) != len(vecRes) {
			t.Fatalf("%s\nrow-path %d rows, vectorized %d", q, len(rowRes), len(vecRes))
		}
		for i := range rowRes {
			for j := range rowRes[i] {
				if !row.Equal(rowRes[i][j], vecRes[i][j]) {
					t.Fatalf("%s\nrow %d col %d: row-path=%v (%T), vectorized=%v (%T)",
						q, i, j, rowRes[i][j], rowRes[i][j], vecRes[i][j], vecRes[i][j])
				}
			}
		}
	}
}

func mustRunRows(t *testing.T, ctx *Context, q string) []Row {
	t.Helper()
	df, err := ctx.SQL(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows
}

// EXPLAIN must show the vectorized operator when the knob is on (proving the
// fast path actually runs) and the row pipeline when off.
func TestVectorizedExplain(t *testing.T) {
	const q = "SELECT url, rank + 1 FROM pages WHERE rank > 500"
	for _, vectorized := range []bool{true, false} {
		ctx := vecTestContext(t, vectorized)
		df, err := ctx.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		explain, err := df.Explain()
		if err != nil {
			t.Fatal(err)
		}
		hasVec := strings.Contains(explain, "VectorizedPipeline")
		if vectorized && !hasVec {
			t.Fatalf("vectorized on: plan lacks VectorizedPipeline:\n%s", explain)
		}
		if !vectorized && hasVec {
			t.Fatalf("vectorized off: plan still vectorized:\n%s", explain)
		}
	}
}

// The UDT cache path (BOXED columns) must keep working under vectorization:
// scans of user types fall back per row but stay correct.
func TestVectorizedBoxedColumns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vectorized = true
	ctx := NewContextWithConfig(cfg)
	schema := StructType{}.
		Add("id", IntType, false).
		Add("d", DecimalType(10, 2), true)
	rows := make([]Row, 300)
	for i := range rows {
		rows[i] = Row{int32(i), types.NewDecimal(int64(i*100+i), 2)}
	}
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Cache(); err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("dec")
	got := mustRunRows(t, ctx, "SELECT d FROM dec WHERE id > 290")
	if len(got) != 9 {
		t.Fatalf("decimal rows = %d, want 9", len(got))
	}
	if got[0][0].(types.Decimal).String() != "293.91" {
		t.Fatalf("decimal value = %v", got[0][0])
	}
}
