package sparksql

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// analyzeText runs EXPLAIN ANALYZE <starQuery> through the SQL front end —
// executing the query with per-operator metrics forced on — and reassembles
// the returned rows into the annotated plan text.
func analyzeText(t *testing.T, ctx *Context) string {
	t.Helper()
	df, err := ctx.SQL("EXPLAIN ANALYZE " + starQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r[0].(string))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// wallTimes normalizes measured durations ("0.6 ms" -> "T ms") so the golden
// file pins row counts and plan shape, not machine speed.
var wallTimes = regexp.MustCompile(`\d+(\.\d+)? ms`)

func normalizeAnalyze(s string) string {
	return wallTimes.ReplaceAllString(normalizePlan(s), "T ms")
}

// TestExplainAnalyzeStarSchemaGolden pins the EXPLAIN ANALYZE output of the
// star-schema query: every physical node carries both its cost estimate and
// the measured actuals, with row counts that are hand-computable from the
// fixture. dim2 holds 1000 rows named "d2-" + "x"*(i%7) + digit(i%10), so
// "d2-xxx3" matches i ≡ 3 (mod 70): 15 keys. Each dim2 key matches 5000/1000
// = 5 fact rows, so the join (and everything above it) carries 15*5 = 75
// rows; the build sides materialize 15 (filtered dim2) and 20 (dim1) rows.
func TestExplainAnalyzeStarSchemaGolden(t *testing.T) {
	ctx := starSchemaContext(t, DefaultConfig())
	analyzeStarSchema(t, ctx)
	raw := analyzeText(t, ctx)
	got := normalizeAnalyze(raw)

	golden := filepath.Join("testdata", "explain_analyze_star_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("EXPLAIN ANALYZE output differs from golden (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Structural assertions, independent of the golden bytes.
	sections := strings.Split(got, "== ")
	var physical string
	for _, s := range sections {
		if strings.HasPrefix(s, "Physical Plan ==") {
			physical = s
		}
	}
	if physical == "" {
		t.Fatal("no physical section in EXPLAIN ANALYZE output")
	}
	for _, line := range strings.Split(physical, "\n")[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.Contains(line, "actual: ") {
			t.Fatalf("physical plan line lacks actual: annotation: %q", line)
		}
		if !strings.Contains(line, "est: ") {
			t.Fatalf("physical plan line lacks est: annotation: %q", line)
		}
	}

	// The hand-computed cardinalities, matched exactly: top of the plan and
	// both joins flow 75 rows, the filtered dim2 pipeline keeps 15 of its
	// 1000, the builds hold 20 (dim1) and 15 (filtered dim2), and the scans
	// see every seeded row.
	for _, want := range []string{
		"actual: 75 rows",   // Sort / joins / projections
		"actual: 15 rows",   // filtered dim2 pipeline
		"actual: 5000 rows", // fact scan
		"actual: 1000 rows", // dim2 scan
		"actual: 20 rows",   // dim1 scan
		"build=20 rows",
		"build=15 rows",
	} {
		if !strings.Contains(physical, want) {
			t.Fatalf("physical plan lacks %q:\n%s", want, physical)
		}
	}
	if !strings.Contains(got, "result: 75 rows in T ms") {
		t.Fatalf("missing runtime summary:\n%s", got)
	}
}

// TestExplainAnalyzeFreshPerRun pins that each EXPLAIN ANALYZE builds a
// fresh execution: actuals reflect exactly one run and do not accumulate
// across invocations.
func TestExplainAnalyzeFreshPerRun(t *testing.T) {
	ctx := starSchemaContext(t, DefaultConfig())
	analyzeStarSchema(t, ctx)
	first := normalizeAnalyze(analyzeText(t, ctx))
	second := normalizeAnalyze(analyzeText(t, ctx))
	if first != second {
		t.Fatalf("EXPLAIN ANALYZE not stable across runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if strings.Contains(second, "actual: 150 rows") {
		t.Fatal("actual row counts accumulated across runs")
	}
}

// TestExplainAnalyzeMatchesCollect pins that running a query under EXPLAIN
// ANALYZE returns the same row count the plain query produces, for a few
// shapes beyond the star schema (aggregate, vectorizable scan).
func TestExplainAnalyzeMatchesCollect(t *testing.T) {
	ctx := starSchemaContext(t, DefaultConfig())
	analyzeStarSchema(t, ctx)
	for _, q := range []string{
		"SELECT d1_k, count(*) AS n FROM fact GROUP BY d1_k",
		"SELECT f_id FROM fact WHERE amount > 40",
	} {
		df, err := ctx.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := df.Collect()
		if err != nil {
			t.Fatal(err)
		}
		adf, err := ctx.SQL("EXPLAIN ANALYZE " + q)
		if err != nil {
			t.Fatal(err)
		}
		arows, err := adf.Collect()
		if err != nil {
			t.Fatal(err)
		}
		var text strings.Builder
		for _, r := range arows {
			text.WriteString(r[0].(string))
			text.WriteByte('\n')
		}
		want := fmt.Sprintf("result: %d rows", len(rows))
		if !strings.Contains(text.String(), want) {
			t.Fatalf("EXPLAIN ANALYZE of %q lacks %q:\n%s", q, want, text.String())
		}
	}
}
