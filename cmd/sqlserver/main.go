// Command sqlserver serves SQL over TCP with a line protocol — the paper's
// Figure 1 JDBC/ODBC access path. Tables are registered from files at
// startup:
//
//	sqlserver -addr 127.0.0.1:7433 -table people=people.csv -table logs=logs.json
//
// Then from any client:
//
//	printf 'SELECT count(*) FROM people\n' | nc 127.0.0.1 7433
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	sparksql "repro"
	"repro/internal/sqlserver"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for /metrics, /trace and /history (empty = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and expvar under /debug/ on the metrics address")
	maxRows := flag.Int("maxrows", 10000, "maximum rows returned per query")
	dataDir := flag.String("data", "", "data directory for persistent tables (empty = in-memory only)")
	var tables tableFlags
	flag.Var(&tables, "table", "name=path registration (csv, json or gcf by extension); repeatable")
	flag.Parse()

	cfg := sparksql.DefaultConfig()
	cfg.DataDir = *dataDir
	ctx := sparksql.NewContextWithConfig(cfg)
	defer ctx.Close()
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("invalid -table %q; want name=path", spec)
		}
		var df *sparksql.DataFrame
		var err error
		switch {
		case strings.HasSuffix(path, ".csv"):
			df, err = ctx.Read().CSV(path)
		case strings.HasSuffix(path, ".json"):
			df, err = ctx.Read().JSON(path)
		case strings.HasSuffix(path, ".gcf"):
			df, err = ctx.Read().ColFile(path)
		default:
			fatal("unknown table format for %q (want .csv/.json/.gcf)", path)
		}
		if err != nil {
			fatal("loading %s: %v", path, err)
		}
		df.RegisterTempTable(name)
		fmt.Printf("registered %s from %s (%d columns)\n", name, path, len(df.Columns()))
	}

	srv := sqlserver.New(ctx)
	srv.MaxRows = *maxRows
	srv.EnablePprof = *pprofOn
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fatal("listen: %v", err)
	}
	fmt.Printf("serving SQL on %s\n", bound)
	if *metricsAddr != "" {
		mbound, err := srv.ListenAndServeMetrics(*metricsAddr)
		if err != nil {
			fatal("metrics listen: %v", err)
		}
		fmt.Printf("serving metrics on http://%s/metrics (trace at /trace, history at /history)\n", mbound)
	}
	select {} // serve forever
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlserver: "+format+"\n", args...)
	os.Exit(1)
}
