// Command benchrunner regenerates every figure of the paper's evaluation
// as text tables: Figure 4 (expression evaluation), Figure 8 (AMPLab big
// data benchmark across Shark / Spark SQL / native), Figure 9 (DataFrame
// vs native RDD code) and Figure 10 (separate vs integrated pipelines),
// plus the federation and cache ablations. Absolute times depend on the
// machine; the table footers restate the paper's expected shape.
//
// Usage: benchrunner [-scale N] [-fig 4,8,9,10,extra]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

var (
	scale  = flag.Int("scale", 1, "workload scale multiplier")
	figSel = flag.String("fig", "4,8,9,10,extra", "comma-separated figures to run")
)

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, f := range strings.Split(*figSel, ",") {
		want[strings.TrimSpace(f)] = true
	}
	if want["4"] {
		fig4()
	}
	if want["8"] {
		fig8()
	}
	if want["9"] {
		fig9()
	}
	if want["10"] {
		fig10()
	}
	if want["extra"] {
		extras()
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// timeIt reports the MINIMUM time over several runs — the standard way to
// suppress GC pauses and scheduler noise on shared machines.
func timeIt(minRuns int, fn func()) time.Duration {
	fn() // warm up
	if minRuns < 3 {
		minRuns = 3
	}
	best := time.Duration(1<<63 - 1)
	runs := 0
	start := time.Now()
	for runs < minRuns || time.Since(start) < 500*time.Millisecond {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
		runs++
	}
	return best
}

func fig4() {
	header("Figure 4: evaluating x+x+x, per-evaluation cost")
	f := experiments.NewFig4()
	n := 5_000_000 * *scale
	var sink int64
	measure := func(fn func(int64) int64) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			sink = fn(int64(i))
		}
		return time.Since(start) / time.Duration(n)
	}
	interp := measure(f.Interpreted)
	gen := measure(f.Generated)
	unboxed := measure(f.GeneratedUnboxed)
	hand := measure(f.HandWritten)
	_ = sink
	fmt.Printf("%-22s %12s %10s\n", "strategy", "ns/eval", "vs hand")
	for _, r := range []struct {
		name string
		d    time.Duration
	}{
		{"interpreted", interp},
		{"codegen (boxed)", gen},
		{"codegen (unboxed)", unboxed},
		{"hand-written", hand},
	} {
		fmt.Printf("%-22s %12.1f %9.1fx\n", r.name,
			float64(r.d.Nanoseconds()), float64(r.d)/float64(hand))
	}
	fmt.Println("paper shape: interpreted ≈ 13-17x hand-written; codegen within ~1.3x")
}

func fig8() {
	header("Figure 8: AMPLab big data benchmark (runtime per query)")
	dir, err := os.MkdirTemp("", "amplab")
	must(err)
	defer os.RemoveAll(dir)
	data, err := experiments.NewAMPLab(dir, int64(20_000**scale), int64(60_000**scale))
	must(err)
	shark, err := data.NewContext(true)
	must(err)
	spark, err := data.NewContext(false)
	must(err)

	fmt.Printf("%-6s %12s %12s %12s %9s %9s\n",
		"query", "shark", "sparksql", "native", "sh/ss", "ss/nat")
	report := func(name, q string, native func()) {
		ts := timeIt(2, func() { mustN(experiments.RunSQL(shark, q)) })
		tq := timeIt(2, func() { mustN(experiments.RunSQL(spark, q)) })
		tn := timeIt(2, native)
		fmt.Printf("%-6s %12s %12s %12s %8.1fx %8.1fx\n",
			name, ts.Round(time.Microsecond), tq.Round(time.Microsecond),
			tn.Round(time.Microsecond),
			float64(ts)/float64(tq), float64(tq)/float64(tn))
	}
	for i, x := range experiments.Q1Params {
		x := x
		report(fmt.Sprintf("Q1%c", 'a'+i), experiments.Q1(x), func() { data.NativeQ1(x) })
	}
	for i, p := range experiments.Q2Params {
		p := p
		report(fmt.Sprintf("Q2%c", 'a'+i), experiments.Q2(p), func() { data.NativeQ2(p) })
	}
	for i, cutoff := range experiments.Q3Params {
		days := experiments.Q3Cutoffs[i]
		report(fmt.Sprintf("Q3%c", 'a'+i), experiments.Q3(cutoff), func() { data.NativeQ3(days) })
	}
	report("Q4", experiments.Q4Query, func() { data.NativeQ4() })
	fmt.Println("paper shape: Spark SQL substantially faster than Shark on all queries;")
	fmt.Println("             competitive with (within a small factor of) the native engine;")
	fmt.Println("             smallest native gap on the UDF-bound Q4.")
}

func fig9() {
	header("Figure 9: aggregation — native APIs vs DataFrame")
	f := experiments.NewFig9(int64(300_000**scale), 10_000)
	must(f.Verify())
	py := timeIt(1, func() { f.RunPython() })
	sc := timeIt(1, func() { f.RunScala() })
	df := timeIt(1, func() { mustE(f.RunDataFrame()) })
	fmt.Printf("%-22s %12s %10s\n", "implementation", "runtime", "vs DF")
	fmt.Printf("%-22s %12s %9.1fx\n", "Python-style RDD", py.Round(time.Millisecond), float64(py)/float64(df))
	fmt.Printf("%-22s %12s %9.1fx\n", "Scala-style RDD", sc.Round(time.Millisecond), float64(sc)/float64(df))
	fmt.Printf("%-22s %12s %9.1fx\n", "DataFrame", df.Round(time.Millisecond), 1.0)
	fmt.Println("paper shape: DataFrame ≈ 12x faster than Python API, ≈ 2x faster than Scala API")
}

func fig10() {
	header("Figure 10: two-stage pipeline — separate engines vs integrated")
	f := experiments.NewFig10(int64(30_000 * *scale))
	must(f.Verify())
	sep := timeIt(1, func() { mustE(f.RunSeparate()) })
	integ := timeIt(1, func() { mustE(f.RunIntegrated()) })
	fmt.Printf("%-28s %12s\n", "pipeline", "runtime")
	fmt.Printf("%-28s %12s\n", "separate SQL + Spark job", sep.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "integrated DataFrame", integ.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx (paper: ≈2x)\n", float64(sep)/float64(integ))
}

func extras() {
	header("Ablation: query federation pushdown (paper §5.3)")
	fed, err := experiments.NewFederation(int64(5_000**scale), int64(20_000**scale))
	must(err)
	rowsOff, bytesOff, err := fed.Run(false)
	must(err)
	rowsOn, bytesOn, err := fed.Run(true)
	must(err)
	fmt.Printf("result rows: %d (both)\n", rowsOn)
	fmt.Printf("link bytes without pushdown: %d\n", bytesOff)
	fmt.Printf("link bytes with pushdown:    %d (%.1fx less)\n",
		bytesOn, float64(bytesOff)/float64(bytesOn))
	if log := fed.RemoteQueryLog(); len(log) > 0 {
		fmt.Printf("last remote query: %s\n", log[len(log)-1])
	}
	_ = rowsOff

	header("Ablation: columnar cache footprint (paper §3.6)")
	study, err := experiments.NewCacheStudy(int64(50_000 * *scale))
	must(err)
	fmt.Printf("rows cached:        %d\n", study.Info.Rows)
	fmt.Printf("boxed-object bytes: %d\n", study.Info.ObjectBytes)
	fmt.Printf("columnar bytes:     %d (%.1fx smaller; paper: order of magnitude)\n",
		study.Info.ColumnarBytes,
		float64(study.Info.ObjectBytes)/float64(study.Info.ColumnarBytes))
	fmt.Printf("encodings: %v\n", study.Info.Encodings)

	header("Ablation: vectorized execution over the columnar cache")
	vs, err := experiments.NewVectorizedStudy(int64(200_000 * *scale))
	must(err)
	must(vs.Verify())
	x := experiments.Q1Params[0]
	tRow := timeIt(3, func() { mustN(vs.RunRow(x)) })
	tVec := timeIt(3, func() { mustN(vs.RunVec(x)) })
	tNat := timeIt(3, func() { vs.RunNative(x) })
	fmt.Printf("%-22s %12s %10s\n", "execution model", "runtime", "vs vec")
	fmt.Printf("%-22s %12s %9.1fx\n", "row-at-a-time", tRow.Round(time.Microsecond), float64(tRow)/float64(tVec))
	fmt.Printf("%-22s %12s %9.1fx\n", "vectorized", tVec.Round(time.Microsecond), 1.0)
	fmt.Printf("%-22s %12s %9.1fx\n", "hand-written native", tNat.Round(time.Microsecond), float64(tNat)/float64(tVec))
	fmt.Printf("speedup over row-at-a-time: %.1fx (acceptance floor: 2x)\n",
		float64(tRow)/float64(tVec))
	fmt.Println("results verified byte-identical across both paths for every Q1 selectivity")

	header("Ablation: whole-stage fusion (batch-native aggregation and join probe)")
	fs, err := experiments.NewFusionStudy(int64(200_000 * *scale))
	must(err)
	must(fs.Verify())
	aggQ, joinQ := experiments.FusedAggQuery(), experiments.FusedJoinQuery()
	aRow := timeIt(3, func() { mustN(fs.RunRow(aggQ)) })
	aVec := timeIt(3, func() { mustN(fs.RunVec(aggQ)) })
	aFused := timeIt(3, func() { mustN(fs.RunFused(aggQ)) })
	aNat := timeIt(3, func() { fs.NativeAgg() })
	jRow := timeIt(3, func() { mustN(fs.RunRow(joinQ)) })
	jVec := timeIt(3, func() { mustN(fs.RunVec(joinQ)) })
	jFused := timeIt(3, func() { mustN(fs.RunFused(joinQ)) })
	fmt.Printf("%-22s %12s %10s %12s %10s\n", "execution model", "aggregate", "vs fused", "join probe", "vs fused")
	fmt.Printf("%-22s %12s %9.1fx %12s %9.1fx\n", "row-at-a-time",
		aRow.Round(time.Microsecond), float64(aRow)/float64(aFused),
		jRow.Round(time.Microsecond), float64(jRow)/float64(jFused))
	fmt.Printf("%-22s %12s %9.1fx %12s %9.1fx\n", "vectorized pipeline",
		aVec.Round(time.Microsecond), float64(aVec)/float64(aFused),
		jVec.Round(time.Microsecond), float64(jVec)/float64(jFused))
	fmt.Printf("%-22s %12s %9.1fx %12s %9.1fx\n", "whole-stage fused",
		aFused.Round(time.Microsecond), 1.0, jFused.Round(time.Microsecond), 1.0)
	fmt.Printf("%-22s %12s %9.1fx\n", "hand-written native",
		aNat.Round(time.Microsecond), float64(aNat)/float64(aFused))
	fmt.Printf("fused aggregation speedup over vectorized: %.1fx (acceptance floor: 2x)\n",
		float64(aVec)/float64(aFused))
	fmt.Println("results verified identical across all three engines for both shapes")

	header("Ablation: memory budget and spill-to-disk")
	ss, err := experiments.NewSpillStudy(int64(20_000 * *scale))
	must(err)
	res, err := ss.Run()
	must(err)
	fmt.Printf("data size (boxed): %d bytes\n", ss.DataBytes)
	fmt.Printf("%-14s %10s %12s %12s %12s %8s\n",
		"budget", "bytes", "agg", "join", "spilled", "runs")
	for _, r := range res {
		fmt.Printf("%-14s %10d %12s %12s %12d %8d\n",
			r.Mode, r.Budget,
			r.AggTime.Round(time.Microsecond), r.JoinTime.Round(time.Microsecond),
			r.SpillBytes, r.SpillRuns)
	}
	fmt.Println("results verified identical at every budget; no spill files leaked")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func mustN(_ int64, err error) { must(err) }

func mustE[T any](_ T, err error) { must(err) }
