package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	sparksql "repro"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<16)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

func shellCtx(t *testing.T) *sparksql.Context {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "people.csv")
	if err := os.WriteFile(path, []byte("name,age\nAda,36\nBob,17\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := sparksql.NewContext()
	run(ctx, "CREATE TEMPORARY TABLE people USING csv OPTIONS(path '"+path+"')")
	return ctx
}

func TestRunSelect(t *testing.T) {
	ctx := shellCtx(t)
	out := capture(t, func() {
		run(ctx, "SELECT name FROM people WHERE age > 20")
	})
	if !strings.Contains(out, "Ada") || strings.Contains(out, "Bob") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunReportsErrors(t *testing.T) {
	ctx := shellCtx(t)
	out := capture(t, func() {
		run(ctx, "SELECT nosuch FROM people")
	})
	if !strings.Contains(out, "error") || !strings.Contains(out, "nosuch") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestDotCommands(t *testing.T) {
	ctx := shellCtx(t)
	out := capture(t, func() { command(ctx, ".tables") })
	if !strings.Contains(out, "people") {
		t.Fatalf(".tables:\n%s", out)
	}
	out = capture(t, func() { command(ctx, ".schema people") })
	if !strings.Contains(out, "age") {
		t.Fatalf(".schema:\n%s", out)
	}
	out = capture(t, func() { command(ctx, ".explain SELECT name FROM people WHERE age > 20") })
	if !strings.Contains(out, "Physical Plan") {
		t.Fatalf(".explain:\n%s", out)
	}
	out = capture(t, func() { command(ctx, ".help") })
	if !strings.Contains(out, ".tables") {
		t.Fatalf(".help:\n%s", out)
	}
	if command(ctx, ".quit") {
		t.Fatal(".quit must stop the loop")
	}
	out = capture(t, func() { command(ctx, ".bogus") })
	if !strings.Contains(out, "unknown command") {
		t.Fatalf(".bogus:\n%s", out)
	}
}
