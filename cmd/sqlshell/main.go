// Command sqlshell is an interactive SQL console over the Spark SQL engine
// (the paper's command-line interface in Figure 1). Register data sources
// with CREATE TEMPORARY TABLE ... USING csv|json|colfile OPTIONS(path '...')
// and query them; dot-commands control the session:
//
//	.tables            list registered tables
//	.schema <table>    print a table's schema
//	.explain <query>   show all Catalyst plan phases
//	.history           show the query event log (alias for SHOW HISTORY)
//	.cluster           show cluster membership (alias for SHOW CLUSTER)
//	.mode shark|sparksql  switch engine mode
//	.quit              exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	sparksql "repro"
)

func main() {
	dataDir := flag.String("data", "", "data directory for persistent tables (empty = in-memory only)")
	flag.Parse()
	cfg := sparksql.DefaultConfig()
	cfg.DataDir = *dataDir
	ctx := sparksql.NewContextWithConfig(cfg)
	defer ctx.Close()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Println("sparksql-go shell — SQL statements end with ';', .help for commands")
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !command(ctx, trimmed) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
			pending.Reset()
			run(ctx, stmt)
		}
		prompt()
	}
}

func command(ctx *sparksql.Context, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(".tables | .schema <t> | .explain <query> | .history | .cluster | .quit")
	case ".history":
		run(ctx, "SHOW HISTORY")
	case ".cluster":
		run(ctx, "SHOW CLUSTER")
	case ".tables":
		for _, t := range ctx.TableNames() {
			fmt.Println(t)
		}
	case ".schema":
		if len(fields) < 2 {
			fmt.Println("usage: .schema <table>")
			break
		}
		df, err := ctx.Table(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, f := range df.Schema().Fields {
			fmt.Printf("  %s\n", f)
		}
	case ".explain":
		query := strings.TrimSpace(strings.TrimPrefix(cmd, ".explain"))
		df, err := ctx.SQL(query)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		out, err := df.Explain()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(out)
	default:
		fmt.Println("unknown command; .help for help")
	}
	return true
}

func run(ctx *sparksql.Context, stmt string) {
	df, err := ctx.SQL(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(df.Columns()) == 0 {
		fmt.Println("ok")
		return
	}
	out, err := df.Show(50)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
}
