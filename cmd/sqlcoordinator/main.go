// Command sqlcoordinator is cmd/sqlserver with distributed execution
// enabled: it serves the SQL line protocol to clients while dispatching
// query partitions to sqlworker processes that join over TCP. With zero
// workers registered every query still answers — execution gracefully
// degrades to local compute.
//
//	sqlcoordinator -addr 127.0.0.1:7433 -cluster 127.0.0.1:7077 \
//	    -table people=people.csv
//	sqlworker -addr 127.0.0.1:7077 -id w1   # in other terminals
//	sqlworker -addr 127.0.0.1:7077 -id w2
//
// Worker membership, per-worker task counts and blacklist state show up
// in EXPLAIN ANALYZE output and on the -metrics endpoint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sparksql "repro"
	"repro/internal/sqlserver"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "SQL listen address")
	clusterAddr := flag.String("cluster", "127.0.0.1:7077", "coordinator listen address for workers")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for /metrics, /trace and /history (empty = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and expvar under /debug/ on the metrics address")
	maxRows := flag.Int("maxrows", 10000, "maximum rows returned per query")
	heartbeat := flag.Duration("heartbeat-timeout", 0, "evict workers silent for this long (0 = default)")
	harvest := flag.Duration("harvest", 0, "pull worker metrics on this period for the federated /metrics view (0 = on demand only)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
	dataDir := flag.String("data", "", "data directory for persistent tables (empty = in-memory only)")
	var tables tableFlags
	flag.Var(&tables, "table", "name=path registration (csv, json or gcf by extension); repeatable")
	flag.Parse()

	cfg := sparksql.DefaultConfig()
	cfg.DataDir = *dataDir
	cfg.Cluster = &sparksql.ClusterOptions{
		Listen:           *clusterAddr,
		HeartbeatTimeout: *heartbeat,
		HarvestInterval:  *harvest,
	}
	ctx := sparksql.NewContextWithConfig(cfg)
	defer ctx.Close()

	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("invalid -table %q; want name=path", spec)
		}
		var df *sparksql.DataFrame
		var err error
		switch {
		case strings.HasSuffix(path, ".csv"):
			df, err = ctx.Read().CSV(path)
		case strings.HasSuffix(path, ".json"):
			df, err = ctx.Read().JSON(path)
		case strings.HasSuffix(path, ".gcf"):
			df, err = ctx.Read().ColFile(path)
		default:
			fatal("unknown table format for %q (want .csv/.json/.gcf)", path)
		}
		if err != nil {
			fatal("loading %s: %v", path, err)
		}
		df.RegisterTempTable(name)
		fmt.Printf("registered %s from %s (%d columns)\n", name, path, len(df.Columns()))
	}

	srv := sqlserver.New(ctx)
	srv.MaxRows = *maxRows
	srv.DrainTimeout = *drain
	srv.EnablePprof = *pprofOn
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fatal("listen: %v", err)
	}
	fmt.Printf("serving SQL on %s\n", bound)
	fmt.Printf("workers join at %s (sqlworker -addr %s)\n", ctx.ClusterAddr(), ctx.ClusterAddr())
	if *metricsAddr != "" {
		mbound, err := srv.ListenAndServeMetrics(*metricsAddr)
		if err != nil {
			fatal("metrics listen: %v", err)
		}
		fmt.Printf("serving metrics on http://%s/metrics (trace at /trace, history at /history)\n", mbound)
	}
	select {} // serve forever
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlcoordinator: "+format+"\n", args...)
	os.Exit(1)
}
