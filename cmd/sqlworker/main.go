// Command sqlworker runs one SQL executor process against a coordinator —
// the reproduction's equivalent of a Spark executor. It registers over
// TCP, receives the coordinator's session (config knobs plus catalog
// tables), plans dispatched SQL locally, and serves its shuffle map
// output to peer workers. Worker loss is the coordinator's problem: kill
// this process and in-flight partitions are retried elsewhere.
//
//	sqlworker -addr 127.0.0.1:7077 -id w1
//
// The REPRO_WORKER_ADDR / REPRO_WORKER_ID environment variables override
// the flags so process-spawning harnesses can configure workers without
// argv plumbing.
package main

import (
	"flag"
	"os"

	"repro/internal/cluster/sqlexec"
)

func main() {
	addr := flag.String("addr", "", "coordinator address (host:port)")
	id := flag.String("id", "", "worker identity (default w-<pid>)")
	flag.Parse()

	if env := os.Getenv("REPRO_WORKER_ADDR"); env != "" {
		*addr = env
	}
	if env := os.Getenv("REPRO_WORKER_ID"); env != "" {
		*id = env
	}
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(sqlexec.RunWorker(*addr, *id))
}
