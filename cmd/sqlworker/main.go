// Command sqlworker runs one SQL executor process against a coordinator —
// the reproduction's equivalent of a Spark executor. It registers over
// TCP, receives the coordinator's session (config knobs plus catalog
// tables), plans dispatched SQL locally, and serves its shuffle map
// output to peer workers. Worker loss is the coordinator's problem: kill
// this process and in-flight partitions are retried elsewhere.
//
//	sqlworker -addr 127.0.0.1:7077 -id w1
//
// The REPRO_WORKER_ADDR / REPRO_WORKER_ID environment variables override
// the flags so process-spawning harnesses can configure workers without
// argv plumbing.
package main

import (
	"flag"
	"os"

	"repro/internal/cluster/sqlexec"
)

func main() {
	addr := flag.String("addr", "", "coordinator address (host:port)")
	id := flag.String("id", "", "worker identity (default w-<pid>)")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for this worker's /metrics and /trace (empty = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and expvar under /debug/ on the metrics address")
	flag.Parse()

	if env := os.Getenv("REPRO_WORKER_ADDR"); env != "" {
		*addr = env
	}
	if env := os.Getenv("REPRO_WORKER_ID"); env != "" {
		*id = env
	}
	// RunWorker reads the observability env vars; the flags are the
	// interactive spelling of the same knobs.
	if *metricsAddr != "" {
		os.Setenv("REPRO_WORKER_METRICS_ADDR", *metricsAddr)
	}
	if *pprofOn {
		os.Setenv("REPRO_WORKER_PPROF", "1")
	}
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(sqlexec.RunWorker(*addr, *id))
}
