#!/usr/bin/env sh
# Full local gate: vet, build, race-enabled tests, a one-iteration
# smoke pass over every benchmark so perf regressions that *crash* are
# caught even when nobody reads the numbers, and the metrics-overhead
# gate: fail if instrumented Q1 throughput regresses more than 5%
# against a metrics-off engine on either execution path.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench . -benchtime 1x ./...
PERF_GATE=1 go test -run '^TestMetricsOverheadGate$' -v ./internal/experiments/

# Small-budget spill suite, explicitly: every blocking operator must stay
# byte-identical to the in-memory path while spilling under tiny memory
# budgets (down to one byte), clean up all spill files on completion and
# cancellation, and survive combined task-failure + spill-write chaos.
go test -race -v -run '^TestSpill' .
go test -race -v -run '^TestChaosSpillWorkload$|^TestSpillStudy$' ./internal/experiments/
