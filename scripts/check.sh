#!/usr/bin/env sh
# Full local gate: vet, build, race-enabled tests, a one-iteration
# smoke pass over every benchmark so perf regressions that *crash* are
# caught even when nobody reads the numbers, and the metrics-overhead
# gate: fail if instrumented Q1 throughput regresses more than 5%
# against a metrics-off engine on either execution path.
# Every go test invocation carries an explicit -timeout so a distributed
# deadlock (a worker wedged mid-handshake, a drain that never finishes)
# fails the gate in minutes instead of hanging it.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race -timeout 10m ./...
go test -run '^$' -bench . -benchtime 1x -timeout 10m ./...
PERF_GATE=1 go test -run '^TestMetricsOverheadGate$' -v -timeout 10m ./internal/experiments/
# Whole-stage fusion gate: fused aggregation must hold its 2x speedup over
# the unfused vectorized path on the cached Q1 aggregate shape.
PERF_GATE=1 go test -run '^TestFusionGate$' -v -timeout 10m ./internal/experiments/

# Fusion property suite: every fused shape byte-identical to the row path,
# at budgets down to one byte.
go test -race -v -run '^TestFused|^TestFusion' -timeout 10m .

# Small-budget spill suite, explicitly: every blocking operator must stay
# byte-identical to the in-memory path while spilling under tiny memory
# budgets (down to one byte), clean up all spill files on completion and
# cancellation, and survive combined task-failure + spill-write chaos.
go test -race -v -run '^TestSpill' -timeout 10m .
go test -race -v -run '^TestChaosSpillWorkload$|^TestSpillStudy$' -timeout 10m ./internal/experiments/

# Adaptive regression gate: adaptive execution no slower than static
# planning on uniform data, and >= 2x faster on the skewed-join ablation
# where the size-blind static plan sorts both join inputs.
PERF_GATE=1 go test -run '^TestAdaptiveGate$' -v -timeout 10m ./internal/experiments/

# AQE property suite, explicitly: every adaptation (coalesce, promote,
# demote, skew split) must fire visibly in EXPLAIN ANALYZE and stay
# byte-identical to the static plan, including under a 1-byte budget,
# and plan-hash parity must survive annotation stripping.
go test -race -v -run '^TestAdaptive|^TestPlanHash' -timeout 10m .

# Multi-process distributed chaos: 3 worker processes over real TCP,
# SIGKILLed mid-query, heartbeat-starved into eviction and fed corrupted
# frames — every answer byte-identical to a local fault-free run. The
# schedule is seeded (deterministic) and the 5m timeout bounds wall time.
go test -race -v -run '^TestMultiproc' -timeout 5m ./internal/experiments/

# Cluster observability suite: merged-trace golden (worker spans carrying
# the coordinator's trace id, stable normalized ordering), federation
# harvest hammered concurrently with queries under -race, a SIGKILLed
# worker's partial spans leaving the merged trace and event log intact,
# and strict-JSON validation of the event-log wire form.
go test -race -v -run '^TestObservability|^TestHarvestUnderLoad$|^TestEventLogStrictJSON$' -timeout 10m ./internal/experiments/

# Observability overhead gate: trace ids + event-log appends must cost
# <= 5% on cached Q1 against an observability-off engine.
PERF_GATE=1 go test -run '^TestObservabilityGate$' -v -timeout 10m ./internal/experiments/

# Durable-table suite, explicitly: WAL codec + crash recovery (torn
# tails, uncommitted tails, deterministic segment ids), SQL DML
# end-to-end, snapshot isolation, durable round-trip and stats
# auto-refresh replanning.
go test -race -v -run '^TestRecover|^TestCheckpoint|^TestWAL' -timeout 10m ./internal/store/
go test -race -v -run '^TestSQL|^TestStatsAutoRefreshChangesPlan$|^TestDMLErrors$' -timeout 10m .

# Kill-and-recover chaos: an ingest child process SIGKILLed at random
# points, 5 rounds — every fsync-acked batch must survive recovery
# exactly, no torn batch may surface, and at most one committed batch
# per kill may lack an ack (the commit->ack window).
go test -race -v -run '^TestKillRecover$' -timeout 10m ./internal/experiments/

# Ingest regression gate: durable ingest >= 100k rows/s, and both
# recovery paths (full WAL replay, post-checkpoint reopen) cheaper than
# the fsync-bound ingest that produced the data.
PERF_GATE=1 go test -run '^TestIngestGate$' -v -timeout 10m ./internal/experiments/
