package sparksql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// DataFrame is a distributed collection of rows with a schema (paper §3.1):
// a logical plan that executes only on output operations (Collect, Count,
// Show), but is analyzed eagerly so schema errors surface immediately.
type DataFrame struct {
	ctx      *Context
	logical  plan.LogicalPlan
	analyzed plan.LogicalPlan
	// sqlText is the originating SQL statement when this frame came from
	// Context.SQL — the shippable form of the query for distributed
	// execution. Derived frames clear it: a DSL transformation on top of
	// a SQL frame is no longer the statement the text describes.
	sqlText string
	// originSQL is the SQL statement this frame descends from, kept across
	// derivations for the query event log only — a Show/Take on a SQL frame
	// logs under the user's statement even though the limited plan itself
	// is no longer shippable as that text.
	originSQL string
}

// derive builds a child DataFrame, eagerly analyzing the new plan.
func (df *DataFrame) derive(lp plan.LogicalPlan) (*DataFrame, error) {
	child, err := df.ctx.newDataFrame(lp)
	if err != nil {
		return nil, err
	}
	if df.sqlText != "" {
		child.originSQL = df.sqlText
	} else {
		child.originSQL = df.originSQL
	}
	return child, nil
}

// Schema returns the DataFrame's schema.
func (df *DataFrame) Schema() StructType { return plan.Schema(df.analyzed) }

// LogicalPlan exposes the underlying (unanalyzed) logical plan for
// libraries extending Catalyst (paper §7's research extensions rewrite
// query plans with transform calls).
func (df *DataFrame) LogicalPlan() plan.LogicalPlan { return df.logical }

// AnalyzedPlan exposes the resolved logical plan.
func (df *DataFrame) AnalyzedPlan() plan.LogicalPlan { return df.analyzed }

// FromPlan wraps a logical plan as a DataFrame (for plan-rewriting
// extensions); the plan is analyzed eagerly like any other construction.
func (c *Context) FromPlan(lp plan.LogicalPlan) (*DataFrame, error) {
	return c.newDataFrame(lp)
}

// Columns returns the output column names.
func (df *DataFrame) Columns() []string { return df.Schema().FieldNames() }

// Col returns a resolved column of this DataFrame, usable to disambiguate
// join inputs (the paper's employees("deptId")).
func (df *DataFrame) Col(name string) (Column, error) {
	out := df.analyzed.Output()
	resolved, err := analysisResolve(name, out)
	if err != nil {
		return Column{}, err
	}
	return Column{e: resolved}, nil
}

// MustCol is Col for known-good names (panics on error) — keeps examples
// close to the paper's syntax.
func (df *DataFrame) MustCol(name string) Column {
	c, err := df.Col(name)
	if err != nil {
		panic(err)
	}
	return c
}

func analysisResolve(name string, out []*expr.AttributeReference) (expr.Expression, error) {
	parts := splitDots(name)
	for _, a := range out {
		if strings.EqualFold(a.Name, parts[0]) {
			var e expr.Expression = a
			for _, f := range parts[1:] {
				e = &expr.GetField{Child: e, FieldName: f}
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sparksql: no such column %q (have %v)", name, attrNamesOf(out))
}

func attrNamesOf(out []*expr.AttributeReference) []string {
	names := make([]string, len(out))
	for i, a := range out {
		names[i] = a.Name
	}
	return names
}

// Select projects columns; arguments are column names (string), Columns,
// or "*".
func (df *DataFrame) Select(cols ...any) (*DataFrame, error) {
	list := make([]expr.Expression, len(cols))
	for i, c := range cols {
		if s, ok := c.(string); ok && s == "*" {
			list[i] = &expr.Star{}
			continue
		}
		list[i] = toCol(c).e
	}
	return df.derive(&plan.Project{List: list, Child: df.logical})
}

// SelectExpr projects SQL expression strings ("a+b AS total").
func (df *DataFrame) SelectExpr(exprs ...string) (*DataFrame, error) {
	list := make([]expr.Expression, len(exprs))
	for i, s := range exprs {
		e, err := sqlparser.ParseExpression(s)
		if err != nil {
			return nil, err
		}
		list[i] = e
	}
	return df.derive(&plan.Project{List: list, Child: df.logical})
}

// WithColumn appends (or replaces) a named column.
func (df *DataFrame) WithColumn(name string, col Column) (*DataFrame, error) {
	list := []expr.Expression{}
	replaced := false
	for _, a := range df.analyzed.Output() {
		if strings.EqualFold(a.Name, name) {
			list = append(list, expr.NewAlias(col.e, name))
			replaced = true
			continue
		}
		list = append(list, a)
	}
	if !replaced {
		list = append(list, expr.NewAlias(col.e, name))
	}
	return df.derive(&plan.Project{List: list, Child: df.logical})
}

// Where filters rows (paper: users.where(users("age") < 21)).
func (df *DataFrame) Where(cond Column) (*DataFrame, error) {
	return df.derive(&plan.Filter{Cond: cond.e, Child: df.logical})
}

// Filter is an alias for Where.
func (df *DataFrame) Filter(cond Column) (*DataFrame, error) { return df.Where(cond) }

// WhereSQL filters with a SQL expression string.
func (df *DataFrame) WhereSQL(cond string) (*DataFrame, error) {
	e, err := sqlparser.ParseExpression(cond)
	if err != nil {
		return nil, err
	}
	return df.derive(&plan.Filter{Cond: e, Child: df.logical})
}

// Join inner-joins with another DataFrame on a condition.
func (df *DataFrame) Join(other *DataFrame, on Column) (*DataFrame, error) {
	return df.JoinWith(other, on, "inner")
}

// JoinWith joins with an explicit type: "inner", "left_outer",
// "right_outer", "full_outer", "left_semi" or "cross".
func (df *DataFrame) JoinWith(other *DataFrame, on Column, joinType string) (*DataFrame, error) {
	var jt plan.JoinType
	switch strings.ToLower(joinType) {
	case "inner":
		jt = plan.InnerJoin
	case "left_outer", "left":
		jt = plan.LeftOuterJoin
	case "right_outer", "right":
		jt = plan.RightOuterJoin
	case "full_outer", "full", "outer":
		jt = plan.FullOuterJoin
	case "left_semi", "semi":
		jt = plan.LeftSemiJoin
	case "cross":
		jt = plan.CrossJoin
	default:
		return nil, fmt.Errorf("sparksql: unknown join type %q", joinType)
	}
	var cond expr.Expression
	if on != (Column{}) {
		cond = on.e
	}
	return df.derive(&plan.Join{Left: df.logical, Right: other.logical, Type: jt, Cond: cond})
}

// CrossJoin joins without a condition.
func (df *DataFrame) CrossJoin(other *DataFrame) (*DataFrame, error) {
	return df.derive(&plan.Join{Left: df.logical, Right: other.logical, Type: plan.CrossJoin})
}

// GroupBy starts a grouped aggregation.
func (df *DataFrame) GroupBy(cols ...any) *GroupedData {
	grouping := make([]expr.Expression, len(cols))
	for i, c := range cols {
		grouping[i] = toCol(c).e
	}
	return &GroupedData{df: df, grouping: grouping}
}

// Agg computes ungrouped aggregates over the whole DataFrame.
func (df *DataFrame) Agg(aggs ...Column) (*DataFrame, error) {
	return df.GroupBy().Agg(aggs...)
}

// OrderBy totally orders the result; use Column.Desc() for descending.
func (df *DataFrame) OrderBy(cols ...any) (*DataFrame, error) {
	orders := make([]*expr.SortOrder, len(cols))
	for i, c := range cols {
		e := toCol(c).e
		if so, ok := e.(*expr.SortOrder); ok {
			orders[i] = so
		} else {
			orders[i] = expr.Asc(e)
		}
	}
	return df.derive(&plan.Sort{Orders: orders, Global: true, Child: df.logical})
}

// Limit keeps the first n rows.
func (df *DataFrame) Limit(n int) (*DataFrame, error) {
	return df.derive(&plan.Limit{N: n, Child: df.logical})
}

// Distinct removes duplicate rows.
func (df *DataFrame) Distinct() (*DataFrame, error) {
	return df.derive(&plan.Distinct{Child: df.logical})
}

// UnionAll concatenates two DataFrames with compatible schemas.
func (df *DataFrame) UnionAll(other *DataFrame) (*DataFrame, error) {
	return df.derive(&plan.Union{Kids: []plan.LogicalPlan{df.logical, other.logical}})
}

// Alias names this DataFrame for qualified references (self-joins).
func (df *DataFrame) Alias(name string) (*DataFrame, error) {
	return df.derive(&plan.SubqueryAlias{Name: strings.ToLower(name), Child: df.logical})
}

// Sample keeps a deterministic pseudo-random fraction of rows.
func (df *DataFrame) Sample(fraction float64, seed int64) (*DataFrame, error) {
	return df.derive(&plan.Sample{Fraction: fraction, Seed: seed, Child: df.logical})
}

// RegisterTempTable registers the DataFrame as an unmaterialized view in
// the catalog (paper §3.3) — later SQL composes with this plan and is
// optimized across the boundary.
func (df *DataFrame) RegisterTempTable(name string) {
	df.ctx.engine.Catalog.RegisterTable(name, df.logical)
}

// --- output operations (execution happens here) ---

// queryExecution runs the Catalyst phases over the eagerly analyzed plan:
// the relation versions resolved when the frame was built are the ones the
// action reads, so a query pinned before a concurrent UPDATE/DELETE on a
// persistent table returns the pre-write rows.
func (df *DataFrame) queryExecution() (qe queryExec, err error) {
	q, err := df.ctx.engine.ExecuteResolved(df.logical, df.analyzed)
	if err != nil {
		return queryExec{}, err
	}
	if df.sqlText != "" {
		q.SetSQL(df.sqlText)
	} else {
		q.SetSQL(df.originSQL)
	}
	return queryExec{q}, nil
}

// distributable reports whether an action on this frame may ship to
// cluster workers: it must have originated as SQL text (closures cannot
// serialize), a cluster must be running, and every pinned persistent-table
// version must still be the store's current one — workers re-resolve the
// shipped text against the current catalog, so executing a stale snapshot
// remotely would silently read the wrong version. Stale frames run
// locally, preserving snapshot isolation.
func (df *DataFrame) distributable() bool {
	if df.sqlText == "" || df.ctx.engine.Cluster() == nil {
		return false
	}
	stale := false
	var walk func(lp plan.LogicalPlan)
	walk = func(lp plan.LogicalPlan) {
		if stale {
			return
		}
		if rel, ok := lp.(*plan.InMemoryRelation); ok && rel.Origin != "" {
			if df.ctx.store == nil || df.ctx.store.Snapshot(rel.Origin) != rel {
				stale = true
			}
		}
		for _, child := range lp.Children() {
			walk(child)
		}
	}
	walk(df.analyzed)
	return !stale
}

// Collect materializes all rows. Task failures (including recovered
// compute panics, after retries from lineage) surface as a *rdd.JobError
// carrying the failing stage, partition, attempt count and cause. Under
// Config.MemoryBudget the query executes against a per-query memory pool —
// blocking operators spill to the engine's DFS when it is exhausted — and
// every spill file is deleted before Collect returns, whether the query
// completes, fails or is cancelled.
func (df *DataFrame) Collect() ([]Row, error) {
	return df.CollectContext(context.Background())
}

// CollectContext is Collect under a caller context: cancelling ctx (or an
// expired deadline, or the engine's QueryTimeout) cancels all in-flight
// and pending tasks of the query and returns the context's error.
func (df *DataFrame) CollectContext(ctx context.Context) ([]Row, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return nil, err
	}
	if df.distributable() {
		return qe.q.CollectDistributedContext(ctx, df.sqlText)
	}
	return qe.q.CollectContext(ctx)
}

// Count returns the number of rows.
func (df *DataFrame) Count() (int64, error) {
	return df.CountContext(context.Background())
}

// CountContext is Count under a caller context.
func (df *DataFrame) CountContext(ctx context.Context) (int64, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return 0, err
	}
	if df.distributable() {
		return qe.q.CountDistributedContext(ctx, df.sqlText)
	}
	return qe.q.CountContext(ctx)
}

// Take returns up to n leading rows.
func (df *DataFrame) Take(n int) ([]Row, error) {
	limited, err := df.Limit(n)
	if err != nil {
		return nil, err
	}
	return limited.Collect()
}

// ToRDD exposes the result as an RDD of rows for procedural processing —
// the relational↔procedural bridge of §3.1 and the Figure 10 pipeline.
func (df *DataFrame) ToRDD() (*rdd.RDD[Row], error) {
	qe, err := df.queryExecution()
	if err != nil {
		return nil, err
	}
	return qe.q.RDD(), nil
}

// AdaptedQuery plans the query, replays a coordinator's adaptive decision
// list over the static physical plan, and returns the result RDD together
// with the decision-applied plan's fingerprint. Cluster workers use it to
// execute the exact plan the coordinator adapted — stages materialize once,
// on the coordinator, and workers only replay the recorded rewrites. An
// empty decision list yields the static plan, identical to ToRDD.
func (df *DataFrame) AdaptedQuery(decisions []physical.Decision) (*rdd.RDD[Row], uint64, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return nil, 0, err
	}
	if err := qe.q.ApplyDecisions(decisions); err != nil {
		return nil, 0, err
	}
	return qe.q.ExecutedRDD(), qe.q.PlanHash(), nil
}

// Explain renders the logical, analyzed, optimized and physical plans.
func (df *DataFrame) Explain() (string, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return "", err
	}
	return qe.q.Explain(), nil
}

// ExplainAnalyze runs the query with per-operator instrumentation forced
// on and renders the physical plan annotated with both the optimizer's
// `est:` prediction and the measured `actual:` rows and wall time per
// node, plus a runtime summary — the paper ecosystem's SQL metrics tab in
// text form, and the feedback loop that confronts cost-based estimates
// with what the run actually did.
func (df *DataFrame) ExplainAnalyze() (string, error) {
	return df.ExplainAnalyzeContext(context.Background())
}

// ExplainAnalyzeContext is ExplainAnalyze under a caller context.
func (df *DataFrame) ExplainAnalyzeContext(ctx context.Context) (string, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return "", err
	}
	return qe.q.ExplainAnalyzeContext(ctx)
}

// PlanHash returns a stable fingerprint of the query's physical plan
// (expression IDs normalized out), correlating log lines that ran the
// same plan shape.
func (df *DataFrame) PlanHash() (uint64, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return 0, err
	}
	return qe.q.PlanHash(), nil
}

// Show renders up to n rows as a text table.
func (df *DataFrame) Show(n int) (string, error) {
	rows, err := df.Take(n)
	if err != nil {
		return "", err
	}
	return FormatTable(df.Columns(), rows), nil
}

// FormatTable renders rows with a header, Spark-style.
func FormatTable(headers []string, rows []Row) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(headers))
		for ci := range headers {
			var v any
			if ci < len(r) {
				v = r[ci]
			}
			s := row.FormatValue(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeSep := func() {
		for _, w := range widths {
			sb.WriteByte('+')
			sb.WriteString(strings.Repeat("-", w+2))
		}
		sb.WriteString("+\n")
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			fmt.Fprintf(&sb, "| %-*s ", widths[i], v)
		}
		sb.WriteString("|\n")
	}
	writeSep()
	writeRow(headers)
	writeSep()
	for _, r := range cells {
		writeRow(r)
	}
	writeSep()
	return sb.String()
}

// Cache materializes the DataFrame into compressed columnar storage (paper
// §3.6) and redirects this DataFrame's plan to the cache. Returns cache
// statistics.
func (df *DataFrame) Cache() (CacheInfo, error) {
	qe, err := df.queryExecution()
	if err != nil {
		return CacheInfo{}, err
	}
	r := qe.q.RDD()
	parts := make([][]row.Row, r.NumPartitions())
	if err := r.ForeachPartition(func(p int, data []row.Row) { parts[p] = data }); err != nil {
		return CacheInfo{}, fmt.Errorf("sparksql: caching failed: %w", err)
	}
	schema := df.Schema()
	table := columnar.BuildTable(schema, parts, columnar.DefaultBatchSize)
	mem := &plan.InMemoryRelation{
		Attrs:       df.analyzed.Output(),
		Table:       table,
		SizeInBytes: table.SizeBytes(),
		RowCount:    table.RowCount(),
		TableStats:  table.Stats,
	}
	df.logical = mem
	df.analyzed = mem
	var objectBytes int64
	for _, p := range parts {
		for _, rr := range p {
			objectBytes += rr.ObjectSize()
		}
	}
	return CacheInfo{
		Rows:          table.RowCount(),
		ColumnarBytes: table.SizeBytes(),
		ObjectBytes:   objectBytes,
		Encodings:     table.Encodings(),
	}, nil
}

// CacheInfo reports the footprint of a cached DataFrame under the columnar
// format versus the boxed-object model (§3.6's order-of-magnitude claim).
type CacheInfo struct {
	Rows          int64
	ColumnarBytes int64
	ObjectBytes   int64
	Encodings     []string
}

// GroupedData is the result of GroupBy, awaiting aggregates (paper §3.3).
type GroupedData struct {
	df       *DataFrame
	grouping []expr.Expression
}

// Agg computes the given aggregates; the output contains the grouping
// columns followed by the aggregates.
func (g *GroupedData) Agg(aggs ...Column) (*DataFrame, error) {
	list := make([]expr.Expression, 0, len(g.grouping)+len(aggs))
	list = append(list, g.grouping...)
	for _, a := range aggs {
		list = append(list, a.e)
	}
	return g.df.derive(&plan.Aggregate{Grouping: g.grouping, Aggs: list, Child: g.df.logical})
}

// Count counts rows per group.
func (g *GroupedData) Count() (*DataFrame, error) {
	return g.Agg(CountStar().As("count"))
}

// Avg averages the named columns per group (df.groupBy("a").avg("b")).
func (g *GroupedData) Avg(cols ...string) (*DataFrame, error) {
	aggs := make([]Column, len(cols))
	for i, c := range cols {
		aggs[i] = Avg(Col(c)).As("avg(" + c + ")")
	}
	return g.Agg(aggs...)
}

// Sum sums the named columns per group.
func (g *GroupedData) Sum(cols ...string) (*DataFrame, error) {
	aggs := make([]Column, len(cols))
	for i, c := range cols {
		aggs[i] = Sum(Col(c)).As("sum(" + c + ")")
	}
	return g.Agg(aggs...)
}

// Max takes per-group maxima of the named columns.
func (g *GroupedData) Max(cols ...string) (*DataFrame, error) {
	aggs := make([]Column, len(cols))
	for i, c := range cols {
		aggs[i] = Max(Col(c)).As("max(" + c + ")")
	}
	return g.Agg(aggs...)
}

// Min takes per-group minima of the named columns.
func (g *GroupedData) Min(cols ...string) (*DataFrame, error) {
	aggs := make([]Column, len(cols))
	for i, c := range cols {
		aggs[i] = Min(Col(c)).As("min(" + c + ")")
	}
	return g.Agg(aggs...)
}

// queryExec wraps core.QueryExecution without exporting internal types in
// the public API surface.
type queryExec struct {
	q interface {
		Collect() ([]row.Row, error)
		CollectContext(ctx context.Context) ([]row.Row, error)
		Count() (int64, error)
		CountContext(ctx context.Context) (int64, error)
		RDD() *rdd.RDD[row.Row]
		Explain() string
		ExplainAnalyzeContext(ctx context.Context) (string, error)
		PlanHash() uint64
		CollectDistributedContext(ctx context.Context, sql string) ([]row.Row, error)
		CountDistributedContext(ctx context.Context, sql string) (int64, error)
		ApplyDecisions(ds []physical.Decision) error
		ExecutedRDD() *rdd.RDD[row.Row]
	}
}

// Ensure plan schema compatibility for writers.
var _ = types.StructType{}
