// Package sparksql is a from-scratch Go reproduction of Spark SQL
// (Armbrust et al., SIGMOD 2015): a DataFrame API that intermixes
// relational and procedural processing, backed by the Catalyst extensible
// optimizer, an RDD execution engine, columnar in-memory caching, a SQL
// front end, schema inference for JSON and native Go structs, user-defined
// functions and types, and a data source API with predicate pushdown and
// query federation.
//
// Quick start:
//
//	ctx := sparksql.NewContext()
//	users, _ := ctx.CreateDataFrameFromStructs([]User{{"Alice", 22}, {"Bob", 19}})
//	young := users.Where(users.Col("Age").Lt(sparksql.Lit(21)))
//	n, _ := young.Count()
//
// DataFrames are lazy — each represents a logical plan — but are analyzed
// eagerly, so referencing a missing column fails at the line that writes
// it, not at execution (paper §3.4).
package sparksql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster/sqlwire"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/datasource/colfile"
	"repro/internal/datasource/csvds"
	"repro/internal/datasource/jsonds"
	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/types"
)

// Re-exported value and schema types, so callers need only this package.
type (
	// Row is a positional result tuple; NULL is nil.
	Row = row.Row
	// DataType is a Spark SQL type object.
	DataType = types.DataType
	// StructType is a schema.
	StructType = types.StructType
	// StructField is one schema column.
	StructField = types.StructField
	// Decimal is a fixed-point decimal value.
	Decimal = types.Decimal
	// UserDefinedType maps a Go type onto built-in SQL types (paper §4.4.2).
	UserDefinedType = types.UserDefinedType
)

// Re-exported type singletons.
var (
	BooleanType   = types.Boolean
	IntType       = types.Int
	LongType      = types.Long
	FloatType     = types.Float
	DoubleType    = types.Double
	StringType    = types.String
	DateType      = types.Date
	TimestampType = types.Timestamp
)

// DecimalType builds a fixed-precision decimal type.
func DecimalType(precision, scale int) DataType {
	return types.DecimalType{Precision: precision, Scale: scale}
}

// ArrayType builds an array type.
func ArrayType(elem DataType, containsNull bool) DataType {
	return types.ArrayType{Elem: elem, ContainsNull: containsNull}
}

// Config selects the engine's operating mode. The zero value is invalid;
// start from DefaultConfig (everything on) or SharkConfig (the paper's
// baseline: no codegen, no pipelining, no source pushdown).
type Config struct {
	// Codegen compiles expressions to fused closures (paper §4.3.4).
	Codegen bool
	// LogicalOptimization enables the Catalyst optimizer rule batches.
	LogicalOptimization bool
	// SourcePushdown enables projection/filter pushdown into data sources.
	SourcePushdown bool
	// JoinReorder enables cost-based reordering of inner-join chains by
	// estimated output size (uses statistics collected by Cache() or
	// ANALYZE TABLE; without them plans come out unchanged).
	JoinReorder bool
	// PipelineCollapse fuses adjacent projects/filters into one map stage.
	PipelineCollapse bool
	// Vectorized runs fused pipelines over the columnar cache batch-at-a-time
	// with typed vectors and selection vectors instead of row-at-a-time; it
	// requires PipelineCollapse (vectorization applies to fused pipelines).
	Vectorized bool
	// Fusion extends vectorization to whole-stage fusion: aggregation
	// updates and broadcast-join probes run inside the batch pipeline over
	// type-specialized hash tables, never materializing intermediate rows.
	// Requires Vectorized; results are byte-identical either way, and
	// EXPLAIN annotates each candidate operator with `fused: true` or
	// `fallback: <reason>`.
	Fusion bool
	// BroadcastThreshold is the max estimated bytes for a broadcast join
	// side (paper §4.3.3).
	BroadcastThreshold int64
	// TargetPartitionBytes is the per-reduce-partition size the planner
	// aims for when it sizes shuffle exchanges from estimated (and, with
	// Adaptive, observed) input bytes. 0 means the planner default (4 MB).
	TargetPartitionBytes int64
	// ShufflePartitions is the reducer count; Parallelism the worker count.
	ShufflePartitions int
	Parallelism       int
	// QueryTimeout, when positive, bounds every query execution under this
	// context: a query exceeding it is cancelled (all in-flight and
	// pending tasks torn down) and returns context.DeadlineExceeded.
	QueryTimeout time.Duration
	// Speculation enables straggler mitigation: a task running longer than
	// SpeculationMultiplier × the job's median completed-task time gets a
	// backup attempt and the first finisher wins. Off by default — backup
	// attempts recompute partitions, which perturbs task-count metrics.
	Speculation bool
	// SpeculationMultiplier is the straggler threshold (0 = default 3x).
	SpeculationMultiplier float64
	// Metrics enables per-operator instrumentation (rows, batches, build
	// sizes, wall time per exec node) read back by EXPLAIN ANALYZE. The
	// cost is a few atomic adds per partition — never per row — so it is
	// on by default; EXPLAIN ANALYZE forces it on for its own run even
	// when disabled here.
	Metrics bool
	// MemoryBudget bounds each query's execution memory in bytes (0 =
	// unlimited, the default). When set, blocking operators — sort,
	// aggregation, distinct, and the sort-merge join the planner selects
	// for oversized build sides — reserve their buffered state from a
	// per-query pool and spill encoded runs/partitions to the engine's
	// simulated DFS when it is exhausted. Results are byte-identical to
	// the unbounded path at any budget; EXPLAIN ANALYZE reports
	// `spilled: N B, R runs` per operator.
	MemoryBudget int64
	// Adaptive enables adaptive query execution (Spark 3.x AQE): plans are
	// split at their exchanges into a stage DAG, each stage's observed
	// output statistics feed a re-planning step — shuffle partition counts
	// coalesce to the observed data size, broadcast joins demote when the
	// build side blows past its estimate (and shuffled joins promote when
	// an input turns out tiny), and skewed reduce partitions split into
	// parallel chunks. On by default; results are byte-identical with it
	// on or off, and off reproduces today's static plans exactly. EXPLAIN
	// ANALYZE records every decision as `adapted: <from> -> <to> (<reason>)`.
	Adaptive bool
	// SkewFactor is the multiple of the mean reduce-bucket size above which
	// adaptive execution splits a skewed partition (0 = default 4x).
	SkewFactor float64
	// Observability enables distributed query observability (on by
	// default): every query action gets a trace id threaded through its
	// spans, completed actions append to the query event log (SHOW
	// HISTORY, /history), and under a cluster the id ships in task specs
	// so worker-side spans and counters merge back with attribution. Off,
	// the wire protocol and all results are byte-identical to an engine
	// without this layer.
	Observability bool
	// DataDir, when set, makes persistent tables durable: the table store's
	// write-ahead log and checkpoints mirror to this host directory, and a
	// new context on the same directory recovers every committed
	// transaction (crash recovery replays the WAL past the last
	// checkpoint). Empty means persistent tables live for the process only.
	DataDir string
	// StatsRefreshRows is the minimum DML row-delta before a commit to a
	// persistent table automatically recomputes its optimizer statistics
	// (0 = default 256; negative = only ANALYZE TABLE refreshes). Large
	// tables additionally require ~12.5% drift so sustained ingest never
	// goes quadratic on stats recomputes.
	StatsRefreshRows int64
	// CheckpointBytes bounds WAL growth for persistent tables: once a
	// segment exceeds this many bytes the store checkpoints and truncates
	// the log (0 = default 4 MB; negative = never automatically).
	CheckpointBytes int64
	// Cluster, when non-nil, starts a coordinator for multi-process
	// distributed execution: worker processes (cmd/sqlworker, or any
	// process calling sqlexec.RunWorker) register over TCP and SQL query
	// partitions are dispatched to them, with worker loss recovered
	// through the rdd layer's ordinary retry/lineage machinery. With no
	// workers registered — or Cluster nil — execution is byte-identical
	// to the purely local engine.
	Cluster *ClusterOptions
}

// ClusterOptions tunes distributed execution (see Config.Cluster). The
// zero value listens on an ephemeral localhost port with the cluster
// package's default timeouts.
type ClusterOptions struct {
	// Listen is the coordinator's TCP address ("" = 127.0.0.1:0).
	Listen string
	// HeartbeatTimeout evicts a worker silent for this long (0 = 5s).
	HeartbeatTimeout time.Duration
	// TaskTimeout declares a dispatched task's worker hung after this
	// long (0 = 2m).
	TaskTimeout time.Duration
	// BlacklistThreshold is the consecutive-failure count that benches a
	// worker (0 = 3); BlacklistCooldown is for how long (0 = 5s).
	BlacklistThreshold int
	BlacklistCooldown  time.Duration
	// HarvestInterval, when positive, runs the metrics-federation
	// harvester on this period (pulling every live worker's registry over
	// the task protocol). Zero harvests on demand only — SHOW CLUSTER and
	// the /metrics endpoint trigger a pull themselves.
	HarvestInterval time.Duration
}

// DefaultConfig enables the full Spark SQL feature set.
func DefaultConfig() Config {
	return Config{
		Codegen:             true,
		LogicalOptimization: true,
		SourcePushdown:      true,
		JoinReorder:         true,
		PipelineCollapse:    true,
		Vectorized:          true,
		Fusion:              true,
		BroadcastThreshold:  10 << 20,
		Metrics:             true,
		Adaptive:            true,
		Observability:       true,
	}
}

// SharkConfig approximates the paper's Shark baseline.
func SharkConfig() Config {
	cfg := DefaultConfig()
	cfg.Codegen = false
	cfg.SourcePushdown = false
	cfg.PipelineCollapse = false
	cfg.Vectorized = false
	cfg.Fusion = false
	return cfg
}

func (c Config) toCore() core.Config {
	opt := optimizer.DefaultConfig()
	if !c.LogicalOptimization {
		opt.ExpressionOptimization = false
		opt.PlanOptimization = false
		opt.DecimalAggregates = false
	}
	opt.SourcePushdown = c.SourcePushdown && c.LogicalOptimization
	opt.JoinReorder = c.JoinReorder && c.LogicalOptimization
	pcfg := physical.DefaultPlannerConfig()
	pcfg.CollapsePipelines = c.PipelineCollapse
	pcfg.Vectorize = c.Vectorized && c.PipelineCollapse
	pcfg.Fuse = c.Fusion && c.Vectorized && c.PipelineCollapse
	if c.BroadcastThreshold > 0 {
		pcfg.BroadcastThreshold = c.BroadcastThreshold
	}
	if c.TargetPartitionBytes > 0 {
		pcfg.TargetPartitionBytes = c.TargetPartitionBytes
	}
	return core.Config{
		Codegen:               c.Codegen,
		Optimizer:             opt,
		Planner:               pcfg,
		ShufflePartitions:     c.ShufflePartitions,
		Parallelism:           c.Parallelism,
		QueryTimeout:          c.QueryTimeout,
		Speculation:           c.Speculation,
		SpeculationMultiplier: c.SpeculationMultiplier,
		Metrics:               c.Metrics,
		MemoryBudget:          c.MemoryBudget,
		Adaptive:              c.Adaptive,
		SkewFactor:            c.SkewFactor,
		Observability:         c.Observability,
	}
}

// Context is the entry point — the paper's SQLContext/HiveContext. It owns
// the catalog of temp tables, registered UDFs/UDTs, the data source
// provider registry and the execution engine.
type Context struct {
	engine  *core.Engine
	sources *datasource.Registry
	// store is the persistent table subsystem (CREATE TABLE / INSERT /
	// UPDATE / DELETE, WAL, snapshot reads). It publishes every table
	// version into the catalog, so queries treat persistent tables exactly
	// like cached temp tables.
	store *store.Store
}

// NewContext builds a context with DefaultConfig.
func NewContext() *Context { return NewContextWithConfig(DefaultConfig()) }

// NewContextWithConfig builds a context in the given mode. A bad
// Config.Cluster listen address panics — it is a programming error on par
// with an invalid regexp, and this constructor has no error return.
func NewContextWithConfig(cfg Config) *Context {
	ctx := &Context{
		engine:  core.NewEngine(cfg.toCore()),
		sources: datasource.NewRegistry(),
	}
	// Built-in data sources (paper §4.4.1's CSV / JSON / columnar file).
	ctx.sources.Register("csv", csvds.Provider())
	ctx.sources.Register("json", jsonds.Provider())
	ctx.sources.Register("colfile", colfile.Provider())
	// The persistent table store: durable (WAL + checkpoints mirrored to
	// DataDir) when configured, process-lifetime otherwise. Every committed
	// version is published into the catalog, so persistent tables are
	// first-class scan sources for the whole stack — vectorized/fused
	// pipelines, the cost-based optimizer, cluster shipping.
	storeFS := ctx.engine.SpillFS
	if cfg.DataDir != "" {
		var err error
		storeFS, err = dfs.OpenDir(cfg.DataDir)
		if err != nil {
			panic(fmt.Sprintf("sparksql: Config.DataDir: %v", err))
		}
	}
	st, err := store.Open(storeFS, store.Options{
		StatsRefreshRows: cfg.StatsRefreshRows,
		CheckpointBytes:  cfg.CheckpointBytes,
		Metrics:          ctx.engine.RDDCtx.Metrics(),
		Trace:            ctx.engine.RDDCtx.Trace(),
		OnChange: func(name string, rel *plan.InMemoryRelation) {
			if rel == nil {
				ctx.engine.Catalog.DropTable(name)
				return
			}
			ctx.engine.Catalog.RegisterTable(name, rel)
		},
	})
	if err != nil {
		panic(fmt.Sprintf("sparksql: opening table store: %v", err))
	}
	ctx.store = st
	if cfg.Cluster != nil {
		ecfg := ctx.engine.Cfg
		if _, err := core.EnableCluster(ctx.engine, core.ClusterOptions{
			Listen:             cfg.Cluster.Listen,
			HeartbeatTimeout:   cfg.Cluster.HeartbeatTimeout,
			TaskTimeout:        cfg.Cluster.TaskTimeout,
			BlacklistThreshold: cfg.Cluster.BlacklistThreshold,
			BlacklistCooldown:  cfg.Cluster.BlacklistCooldown,
			HarvestInterval:    cfg.Cluster.HarvestInterval,
			Session: sqlwire.SessionSpec{
				Codegen:              cfg.Codegen,
				LogicalOptimization:  cfg.LogicalOptimization,
				SourcePushdown:       cfg.SourcePushdown,
				JoinReorder:          cfg.JoinReorder,
				PipelineCollapse:     cfg.PipelineCollapse,
				Vectorized:           cfg.Vectorized,
				Fusion:               cfg.Fusion,
				BroadcastThreshold:   cfg.BroadcastThreshold,
				TargetPartitionBytes: cfg.TargetPartitionBytes,
				// Ship the engine's *resolved* parallelism: zero values
				// default to the local GOMAXPROCS, and workers must plan
				// with the same counts, not their own.
				ShufflePartitions: ecfg.ShufflePartitions,
				Parallelism:       ecfg.Parallelism,
				MemoryBudget:      cfg.MemoryBudget,
			},
		}); err != nil {
			panic(fmt.Sprintf("sparksql: Config.Cluster: %v", err))
		}
	}
	return ctx
}

// Cluster returns the distributed-execution runtime (nil without
// Config.Cluster): membership snapshots, chaos hooks, the coordinator.
func (c *Context) Cluster() *core.ClusterRuntime { return c.engine.Cluster() }

// ClusterAddr returns the coordinator's listen address, or "" when the
// context runs without a cluster. Workers are pointed at this address.
func (c *Context) ClusterAddr() string {
	if rt := c.engine.Cluster(); rt != nil {
		return rt.Addr()
	}
	return ""
}

// Close releases the context's external resources: the cluster
// coordinator when one is running, and the table store's durable file
// handles (syncing them) when DataDir is set. Purely local, non-durable
// contexts need no Close (it is a no-op on them, kept for symmetric
// defer ctx.Close()).
func (c *Context) Close() error {
	var first error
	if c.store != nil {
		if err := c.store.Close(); err != nil {
			first = err
		}
	}
	if rt := c.engine.Cluster(); rt != nil {
		if err := rt.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Store exposes the persistent table subsystem for tests and tools (WAL
// checkpointing, table info, direct snapshots).
func (c *Context) Store() *store.Store { return c.store }

// Engine exposes the underlying engine for advanced integrations (planner
// strategies, metrics); examples and benches use it, typical callers don't.
func (c *Context) Engine() *core.Engine { return c.engine }

// RDDContext exposes the task execution context for procedural RDD code.
func (c *Context) RDDContext() *rdd.Context { return c.engine.RDDCtx }

// SpillFS exposes the engine's spill file system (non-nil even without a
// MemoryBudget). Tests and experiments use it to assert spill files are
// cleaned up and to inject write faults.
func (c *Context) SpillFS() *dfs.FileSystem { return c.engine.SpillFS }

// RegisterDataSource adds a named relation provider, the USING extension
// point of §4.4.1.
func (c *Context) RegisterDataSource(name string, p datasource.Provider) {
	c.sources.Register(name, p)
}

// RegisterUDT registers a user-defined type (paper §4.4.2).
func (c *Context) RegisterUDT(udt UserDefinedType) error {
	return c.engine.Catalog.UDTs().Register(udt)
}

// withOriginSQL stamps the statement text onto a SHOW frame for event-log
// provenance only — SHOW frames are built from engine state, so the text is
// never shippable and must not become sqlText.
func withOriginSQL(df *DataFrame, err error, query string) (*DataFrame, error) {
	if err != nil {
		return nil, err
	}
	df.originSQL = query
	return df, nil
}

// SQL runs a SQL statement. Queries return a DataFrame; CREATE TEMPORARY
// TABLE statements register the table and return an empty DataFrame.
func (c *Context) SQL(query string) (*DataFrame, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStatement:
		df, err := c.newDataFrame(s.Plan)
		if err != nil {
			return nil, err
		}
		// Remember the SQL text: it is the only form of a query that can
		// be shipped to cluster workers (closures cannot serialize), so
		// output actions on this exact frame may execute distributed.
		df.sqlText = query
		return df, nil
	case *sqlparser.AnalyzeTable:
		if err := c.AnalyzeTable(s.Name); err != nil {
			return nil, err
		}
		return c.emptyFrame(), nil
	case *sqlparser.ExplainStatement:
		df, err := c.newDataFrame(s.Plan)
		if err != nil {
			return nil, err
		}
		var text string
		if s.Analyze {
			text, err = df.ExplainAnalyze()
		} else {
			text, err = df.Explain()
		}
		if err != nil {
			return nil, err
		}
		lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
		rows := make([]Row, len(lines))
		for i, l := range lines {
			rows[i] = Row{l}
		}
		schema := types.NewStruct(types.StructField{Name: "plan", Type: types.String, Nullable: false})
		return c.CreateDataFrame(schema, rows)
	case *sqlparser.CreateTable:
		return c.execCreateTable(s)
	case *sqlparser.DropTable:
		if err := c.store.DropTable(s.Name, s.IfExists); err != nil {
			return nil, err
		}
		return c.emptyFrame(), nil
	case *sqlparser.InsertStatement:
		return c.execInsert(s)
	case *sqlparser.UpdateStatement:
		return c.execUpdate(s)
	case *sqlparser.DeleteStatement:
		return c.execDelete(s)
	case *sqlparser.ShowTables:
		df, err := c.showTablesFrame()
		return withOriginSQL(df, err, query)
	case *sqlparser.DescribeTable:
		df, err := c.describeFrame(s.Name)
		return withOriginSQL(df, err, query)
	case *sqlparser.ShowMetrics:
		df, err := c.metricsFrame(s.Like)
		return withOriginSQL(df, err, query)
	case *sqlparser.ShowCluster:
		df, err := c.clusterFrame()
		return withOriginSQL(df, err, query)
	case *sqlparser.ShowHistory:
		df, err := c.historyFrame()
		return withOriginSQL(df, err, query)
	case *sqlparser.CreateTempTable:
		if s.AsSelect != nil {
			df, err := c.newDataFrame(s.AsSelect)
			if err != nil {
				return nil, err
			}
			df.RegisterTempTable(s.Name)
			return c.emptyFrame(), nil
		}
		provider, err := c.sources.Lookup(s.Provider)
		if err != nil {
			return nil, err
		}
		rel, err := provider.CreateRelation(s.Options)
		if err != nil {
			return nil, fmt.Errorf("sparksql: creating relation %q: %w", s.Name, err)
		}
		df, err := c.frameForRelation(s.Provider, rel)
		if err != nil {
			return nil, err
		}
		df.RegisterTempTable(s.Name)
		return c.emptyFrame(), nil
	default:
		return nil, fmt.Errorf("sparksql: unsupported statement")
	}
}

// AnalyzeTable scans a registered table once, collects per-table and
// per-column statistics (row count, size, min/max, null count, distinct
// count estimate) and attaches them to the table's catalog entry, where
// the cost-based optimizer reads them — the SQL form is
// `ANALYZE TABLE name [COMPUTE STATISTICS]`.
func (c *Context) AnalyzeTable(name string) error {
	// Persistent tables refresh through the store, which recomputes the
	// statistics and republishes the relation so the catalog's pinned
	// version carries them.
	if c.store.Has(name) {
		return c.store.Analyze(name)
	}
	lp, ok := c.engine.Catalog.LookupTable(name)
	if !ok {
		return fmt.Errorf("sparksql: ANALYZE TABLE: unknown table %q", name)
	}
	df, err := c.newDataFrame(lp)
	if err != nil {
		return err
	}
	rows, err := df.Collect()
	if err != nil {
		return err
	}
	t := stats.FromRows(df.Schema(), rows)
	// Attach to the catalog's own plan: its leaf is shared by reference
	// with every query planned after this point.
	if !plan.AttachStats(lp, t) {
		return fmt.Errorf("sparksql: ANALYZE TABLE %q: table is a view, not a base relation", name)
	}
	return nil
}

// Metrics returns the engine-wide metrics registry: every counter, gauge
// and histogram the rdd executor, shuffles and SQL server record. Shared
// with SHOW METRICS and the server's /metrics endpoint.
func (c *Context) Metrics() *metrics.Registry { return c.engine.RDDCtx.Metrics() }

// Trace returns the in-memory span buffer (job/stage/task/shuffle events)
// — the reproduction's Spark event log — or nil when tracing is disabled
// via RDDContext().SetTracing(false).
func (c *Context) Trace() *metrics.TraceBuffer { return c.engine.RDDCtx.Trace() }

// metricsFrame renders the registry as (metric, value) rows — the result
// of SHOW METRICS [LIKE '<glob>']. Histograms expand into
// _count/_sum/_min/_max/_p50/_p99 pseudo-metrics, matching the /metrics
// text endpoint line for line.
func (c *Context) metricsFrame(pattern string) (*DataFrame, error) {
	var buf strings.Builder
	if err := c.Metrics().WriteTextFiltered(&buf, pattern); err != nil {
		return nil, err
	}
	var rows []Row
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		name, value, _ := strings.Cut(line, " ")
		rows = append(rows, Row{name, value})
	}
	schema := types.NewStruct(
		types.StructField{Name: "metric", Type: types.String, Nullable: false},
		types.StructField{Name: "value", Type: types.String, Nullable: false},
	)
	return c.CreateDataFrame(schema, rows)
}

// clusterFrame renders cluster membership and per-worker health as rows —
// the result of SHOW CLUSTER. It harvests fresh worker metrics first so
// shuffle-byte columns reflect the moment of the query, not the last
// background pull. Without a cluster it returns zero rows.
func (c *Context) clusterFrame() (*DataFrame, error) {
	schema := types.NewStruct(
		types.StructField{Name: "worker", Type: types.String, Nullable: false},
		types.StructField{Name: "status", Type: types.String, Nullable: false},
		types.StructField{Name: "pid", Type: types.Long, Nullable: false},
		types.StructField{Name: "inflight", Type: types.Long, Nullable: false},
		types.StructField{Name: "failures", Type: types.Long, Nullable: false},
		types.StructField{Name: "tasks", Type: types.Long, Nullable: false},
		types.StructField{Name: "shuffle_bytes", Type: types.Long, Nullable: false},
	)
	rt := c.engine.Cluster()
	if rt == nil {
		return c.CreateDataFrame(schema, nil)
	}
	rt.Harvest(nil)
	reg := c.Metrics()
	var rows []Row
	for _, w := range rt.Coordinator().Workers() {
		status := "live"
		if w.Banned {
			status = "blacklisted"
		}
		rows = append(rows, Row{
			w.ID, status, w.PID, int64(w.Inflight), int64(w.Failures),
			reg.Counter("cluster.tasks.worker." + w.ID).Load(),
			rt.WorkerCounter(w.ID, "rdd.shuffle.bytes"),
		})
	}
	return c.CreateDataFrame(schema, rows)
}

// historyFrame renders the query event log as rows, oldest first — the
// result of SHOW HISTORY. Full entries (plan text, AQE decisions,
// per-stage and per-worker actuals) are in EventLog().Events() and the
// server's /history JSONL endpoint; this view keeps one line per query.
func (c *Context) historyFrame() (*DataFrame, error) {
	schema := types.NewStruct(
		types.StructField{Name: "id", Type: types.String, Nullable: false},
		types.StructField{Name: "query", Type: types.String, Nullable: true},
		types.StructField{Name: "action", Type: types.String, Nullable: false},
		types.StructField{Name: "plan_hash", Type: types.String, Nullable: true},
		types.StructField{Name: "rows", Type: types.Long, Nullable: false},
		types.StructField{Name: "millis", Type: types.Double, Nullable: false},
		types.StructField{Name: "status", Type: types.String, Nullable: false},
	)
	var rows []Row
	for _, ev := range c.engine.Events.Events() {
		status := "ok"
		if ev.Err != "" {
			status = "error: " + ev.Err
		}
		rows = append(rows, Row{ev.ID, ev.SQL, ev.Action, ev.PlanHash, ev.Rows, ev.Millis, status})
	}
	return c.CreateDataFrame(schema, rows)
}

// EventLog returns the persistent query history: one entry per completed
// query action with plan, plan hash, AQE decisions, per-stage actuals and
// per-worker task breakdown. Backs SHOW HISTORY and the server's /history
// endpoint.
func (c *Context) EventLog() *core.EventLog { return c.engine.Events }

// Table returns a DataFrame over a registered temp table.
func (c *Context) Table(name string) (*DataFrame, error) {
	return c.newDataFrame(&plan.UnresolvedRelation{Name: name})
}

// CreateDataFrame builds a DataFrame from a schema and rows. Row values
// must match the declared types (INT→int32, BIGINT→int64, DOUBLE→float64,
// STRING→string, ...).
func (c *Context) CreateDataFrame(schema StructType, rows []Row) (*DataFrame, error) {
	return c.newDataFrame(plan.NewLocalRelation(schema, rows))
}

// CreateDataFrameFromRDD views an existing row RDD as a DataFrame (paper
// §3.5: relational processing over native datasets inside Spark programs).
func (c *Context) CreateDataFrameFromRDD(schema StructType, r *rdd.RDD[Row]) (*DataFrame, error) {
	attrs := make([]*expr.AttributeReference, len(schema.Fields))
	for i, f := range schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	return c.newDataFrame(&plan.LogicalRDD{Attrs: attrs, RDD: r})
}

// Range produces the integers [0, n) as a single BIGINT column "id".
func (c *Context) Range(n int64) *DataFrame {
	df, err := c.newDataFrame(plan.NewRange(0, n, 1, 0))
	if err != nil {
		panic(err) // range plans always analyze
	}
	return df
}

// RegisterUDF registers a Go function as a scalar UDF callable from SQL
// and the DSL (paper §3.7). Parameter and result types are derived from
// the function signature by reflection; supported Go types are bool,
// int32, int64, float32, float64, string and types.Decimal.
func (c *Context) RegisterUDF(name string, fn any) error {
	udf, err := reflectUDF(name, fn)
	if err != nil {
		return err
	}
	c.engine.Catalog.RegisterUDF(udf)
	return nil
}

// RegisterTableUDF registers a MADLib-style table-valued function (paper
// §3.7): callable in SQL as `SELECT ... FROM name(table1, table2)`, it
// receives DataFrames for its argument tables and returns a DataFrame. The
// function body may use the full relational and procedural API.
func (c *Context) RegisterTableUDF(name string, fn func(args []*DataFrame) (*DataFrame, error)) {
	c.engine.Catalog.RegisterTableFunction(name, func(plans []plan.LogicalPlan) (plan.LogicalPlan, error) {
		dfs := make([]*DataFrame, len(plans))
		for i, p := range plans {
			df, err := c.newDataFrame(p)
			if err != nil {
				return nil, err
			}
			dfs[i] = df
		}
		out, err := fn(dfs)
		if err != nil {
			return nil, err
		}
		return out.logical, nil
	})
}

// CallUDF builds a DSL column invoking a registered UDF.
func (c *Context) CallUDF(name string, args ...Column) Column {
	exprs := make([]expr.Expression, len(args))
	for i, a := range args {
		exprs[i] = a.e
	}
	return Column{e: &expr.UnresolvedFunction{Name: name, Args: exprs}}
}

// DropTempTable removes a temp table registration.
func (c *Context) DropTempTable(name string) {
	c.engine.Catalog.DropTable(name)
}

// TableNames lists registered temp tables.
func (c *Context) TableNames() []string { return c.engine.Catalog.TableNames() }

// Read begins building a data source read.
func (c *Context) Read() *Reader { return &Reader{ctx: c, options: map[string]string{}} }

// newDataFrame analyzes eagerly and wraps the plan.
func (c *Context) newDataFrame(lp plan.LogicalPlan) (*DataFrame, error) {
	analyzed, err := c.engine.Analyze(lp)
	if err != nil {
		return nil, err
	}
	return &DataFrame{ctx: c, logical: lp, analyzed: analyzed}, nil
}

func (c *Context) emptyFrame() *DataFrame {
	lp := plan.NewLocalRelation(types.StructType{}, nil)
	return &DataFrame{ctx: c, logical: lp, analyzed: lp}
}

// frameForRelation wraps a data source relation as a DataFrame.
func (c *Context) frameForRelation(name string, rel datasource.Relation) (*DataFrame, error) {
	schema := rel.Schema()
	attrs := make([]*expr.AttributeReference, len(schema.Fields))
	for i, f := range schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	var size int64
	if sized, ok := rel.(datasource.SizedRelation); ok {
		size = sized.SizeInBytes()
	}
	return c.newDataFrame(&plan.DataSourceRelation{
		Name: name, Rel: rel, Attrs: attrs, SizeHint: size,
	})
}

// Catalog grants tests and tools access to the analysis catalog.
func (c *Context) Catalog() *analysis.Catalog { return c.engine.Catalog }
