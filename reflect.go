package sparksql

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/datasource/jsonds"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/types"
)

// This file implements schema inference for native Go datasets by
// reflection — the Go analogue of paper §3.5, where Spark SQL extracts
// schemas from Scala case classes and JavaBeans so RDDs of native objects
// can be queried relationally in place — and reflection-based registration
// of Go functions as UDFs (§3.7).

// CreateDataFrameFromStructs infers a schema from a []T of structs and
// builds a DataFrame over the converted rows. Supported field types: bool,
// int/int32/int64, float32/float64, string, types.Decimal, pointers to
// those (nullable), slices (arrays), nested structs, and any type with a
// registered UDT.
func (c *Context) CreateDataFrameFromStructs(slice any) (*DataFrame, error) {
	v := reflect.ValueOf(slice)
	if v.Kind() != reflect.Slice {
		return nil, fmt.Errorf("sparksql: CreateDataFrameFromStructs requires a slice, got %T", slice)
	}
	elem := v.Type().Elem()
	if elem.Kind() == reflect.Ptr {
		elem = elem.Elem()
	}
	if elem.Kind() != reflect.Struct {
		return nil, fmt.Errorf("sparksql: element type %s is not a struct", elem)
	}
	schema, err := c.inferStructSchema(elem)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, v.Len())
	for i := 0; i < v.Len(); i++ {
		ev := v.Index(i)
		if ev.Kind() == reflect.Ptr {
			ev = ev.Elem()
		}
		r, err := c.structToRow(ev, schema)
		if err != nil {
			return nil, err
		}
		rows[i] = r
	}
	return c.newDataFrame(plan.NewLocalRelation(schema, rows))
}

// inferStructSchema maps exported struct fields to SQL types.
func (c *Context) inferStructSchema(t reflect.Type) (StructType, error) {
	var schema StructType
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := f.Name
		if tag := f.Tag.Get("sql"); tag != "" {
			name = tag
		}
		dt, nullable, err := c.goTypeToSQL(f.Type)
		if err != nil {
			return StructType{}, fmt.Errorf("sparksql: field %s.%s: %w", t.Name(), f.Name, err)
		}
		schema = schema.Add(name, dt, nullable)
	}
	if len(schema.Fields) == 0 {
		return StructType{}, fmt.Errorf("sparksql: struct %s has no exported fields", t.Name())
	}
	return schema, nil
}

func (c *Context) goTypeToSQL(t reflect.Type) (DataType, bool, error) {
	// Registered UDTs win over structural mapping (paper §4.4.2: Points
	// are recognized within native objects).
	if udt, ok := c.lookupUDTForGoType(t); ok {
		return udt.SQLType(), true, nil
	}
	switch t.Kind() {
	case reflect.Ptr:
		dt, _, err := c.goTypeToSQL(t.Elem())
		return dt, true, err
	case reflect.Bool:
		return BooleanType, false, nil
	case reflect.Int32:
		return IntType, false, nil
	case reflect.Int, reflect.Int64:
		return LongType, false, nil
	case reflect.Float32:
		return FloatType, false, nil
	case reflect.Float64:
		return DoubleType, false, nil
	case reflect.String:
		return StringType, false, nil
	case reflect.Slice:
		elem, _, err := c.goTypeToSQL(t.Elem())
		if err != nil {
			return nil, false, err
		}
		return types.ArrayType{Elem: elem, ContainsNull: t.Elem().Kind() == reflect.Ptr}, false, nil
	case reflect.Struct:
		if t == reflect.TypeOf(types.Decimal{}) {
			return DecimalType(types.MaxLongDigits, 2), false, nil
		}
		nested, err := c.inferStructSchema(t)
		if err != nil {
			return nil, false, err
		}
		return nested, false, nil
	default:
		return nil, false, fmt.Errorf("unsupported Go type %s", t)
	}
}

// lookupUDTForGoType finds a registered UDT whose serialized sample type
// name matches; UDTs register under the Go type's name by convention.
func (c *Context) lookupUDTForGoType(t reflect.Type) (UserDefinedType, bool) {
	return c.engine.Catalog.UDTs().Lookup(t.Name())
}

// structToRow converts one struct value, applying UDT serialization where
// registered.
func (c *Context) structToRow(v reflect.Value, schema StructType) (Row, error) {
	t := v.Type()
	r := make(Row, 0, len(schema.Fields))
	fi := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		val, err := c.goValueToSQL(v.Field(i), schema.Fields[fi].Type)
		if err != nil {
			return nil, err
		}
		r = append(r, val)
		fi++
	}
	return r, nil
}

func (c *Context) goValueToSQL(v reflect.Value, dt DataType) (any, error) {
	if udt, ok := c.lookupUDTForGoType(v.Type()); ok {
		return udt.Serialize(v.Interface())
	}
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return nil, nil
		}
		return c.goValueToSQL(v.Elem(), dt)
	case reflect.Bool:
		return v.Bool(), nil
	case reflect.Int32:
		return int32(v.Int()), nil
	case reflect.Int, reflect.Int64:
		return v.Int(), nil
	case reflect.Float32:
		return float32(v.Float()), nil
	case reflect.Float64:
		return v.Float(), nil
	case reflect.String:
		return v.String(), nil
	case reflect.Slice:
		out := make([]any, v.Len())
		at := dt.(types.ArrayType)
		for i := 0; i < v.Len(); i++ {
			e, err := c.goValueToSQL(v.Index(i), at.Elem)
			if err != nil {
				return nil, err
			}
			out[i] = e
		}
		return out, nil
	case reflect.Struct:
		if d, ok := v.Interface().(types.Decimal); ok {
			return d, nil
		}
		st := dt.(StructType)
		return c.structToRow(v, st)
	default:
		return nil, fmt.Errorf("sparksql: unsupported value kind %s", v.Kind())
	}
}

// CreateDataFrameFromMaps infers a schema from dynamically-typed records
// (maps of column name to value) by sampling all of them with the §5.1
// most-specific-supertype merge — the analogue of paper §3.5's Python path:
// "In Python, Spark SQL samples the dataset to perform schema inference due
// to the dynamic type system." Values may be Go numerics, strings, bools,
// nested maps and slices; missing keys become NULL.
func (c *Context) CreateDataFrameFromMaps(records []map[string]any) (*DataFrame, error) {
	// Normalize to the JSON value model and reuse the JSON inference.
	norm := make([]map[string]any, len(records))
	for i, rec := range records {
		m := make(map[string]any, len(rec))
		for k, v := range rec {
			m[k] = normalizeDynamic(v)
		}
		norm[i] = m
	}
	rel := jsonds.NewRelation(norm, 0)
	return c.frameForRelation("maps", rel)
}

func normalizeDynamic(v any) any {
	switch x := v.(type) {
	case nil, bool, string, json.Number:
		return x
	case int:
		return json.Number(strconv.FormatInt(int64(x), 10))
	case int32:
		return json.Number(strconv.FormatInt(int64(x), 10))
	case int64:
		return json.Number(strconv.FormatInt(x, 10))
	case float32:
		return json.Number(strconv.FormatFloat(float64(x), 'g', -1, 64))
	case float64:
		return json.Number(strconv.FormatFloat(x, 'g', -1, 64))
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalizeDynamic(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = normalizeDynamic(e)
		}
		return out
	default:
		return fmt.Sprint(v)
	}
}

// reflectUDF derives a UDF definition from a Go function's signature.
func reflectUDF(name string, fn any) (*analysis.UDF, error) {
	v := reflect.ValueOf(fn)
	t := v.Type()
	if t.Kind() != reflect.Func {
		return nil, fmt.Errorf("sparksql: RegisterUDF(%s): not a function", name)
	}
	if t.NumOut() != 1 {
		return nil, fmt.Errorf("sparksql: RegisterUDF(%s): must return exactly one value", name)
	}
	in := make([]DataType, t.NumIn())
	for i := range in {
		dt, err := scalarGoType(t.In(i))
		if err != nil {
			return nil, fmt.Errorf("sparksql: RegisterUDF(%s) arg %d: %w", name, i, err)
		}
		in[i] = dt
	}
	ret, err := scalarGoType(t.Out(0))
	if err != nil {
		return nil, fmt.Errorf("sparksql: RegisterUDF(%s) result: %w", name, err)
	}
	call := func(args []any) any {
		vals := make([]reflect.Value, len(args))
		for i, a := range args {
			if a == nil {
				// NULL argument: Spark SQL's scalar UDFs see zero values;
				// NULL-out the result instead for safety.
				return nil
			}
			vals[i] = reflect.ValueOf(a)
		}
		out := v.Call(vals)
		return out[0].Interface()
	}
	return &analysis.UDF{Name: name, Fn: call, In: in, Ret: ret}, nil
}

func scalarGoType(t reflect.Type) (DataType, error) {
	switch t.Kind() {
	case reflect.Bool:
		return BooleanType, nil
	case reflect.Int32:
		return IntType, nil
	case reflect.Int64:
		return LongType, nil
	case reflect.Float32:
		return FloatType, nil
	case reflect.Float64:
		return DoubleType, nil
	case reflect.String:
		return StringType, nil
	}
	if t == reflect.TypeOf(types.Decimal{}) {
		return DecimalType(types.MaxLongDigits, 2), nil
	}
	return nil, fmt.Errorf("unsupported type %s (use bool, int32, int64, float32, float64, string)", t)
}

var _ = row.Row{}
