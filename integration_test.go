package sparksql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/memdb"
	"repro/internal/row"
	"repro/internal/types"
)

// setupBenchTables registers a deterministic pair of tables exercising
// every operator family.
func setupBenchTables(t *testing.T, ctx *Context) {
	t.Helper()
	emp := StructType{}.
		Add("id", IntType, false).
		Add("name", StringType, false).
		Add("deptId", IntType, true).
		Add("salary", DoubleType, false).
		Add("hired", DateType, false)
	var rows []Row
	for i := 0; i < 200; i++ {
		var dept any
		if i%17 != 0 {
			dept = int32(i % 5)
		}
		rows = append(rows, Row{
			int32(i),
			fmt.Sprintf("emp%03d", i),
			dept,
			float64(1000 + i*7%900),
			int32(15000 + i*3),
		})
	}
	df, err := ctx.CreateDataFrame(emp, rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("emp")

	dept := StructType{}.
		Add("id", IntType, false).
		Add("dname", StringType, false)
	drows := []Row{
		{int32(0), "eng"}, {int32(1), "sales"}, {int32(2), "hr"},
		{int32(3), "ops"}, {int32(4), "legal"}, {int32(9), "ghost"},
	}
	ddf, err := ctx.CreateDataFrame(dept, drows)
	if err != nil {
		t.Fatal(err)
	}
	ddf.RegisterTempTable("dept")
}

// differentialQueries covers filters, projections, joins of all types,
// aggregation, HAVING, sorting, limits, unions, DISTINCT, CASE, IN, LIKE,
// subqueries — each must produce identical results on every engine config.
var differentialQueries = []string{
	"SELECT * FROM emp WHERE salary > 1500",
	"SELECT name, salary * 1.1 AS raised FROM emp WHERE deptId = 2",
	"SELECT count(*), avg(salary), min(name), max(hired) FROM emp",
	"SELECT deptId, count(*) AS n, sum(salary) FROM emp GROUP BY deptId",
	"SELECT deptId, count(*) AS n FROM emp GROUP BY deptId HAVING count(*) > 30",
	"SELECT e.name, d.dname FROM emp e JOIN dept d ON e.deptId = d.id WHERE e.salary > 1200",
	"SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.deptId = d.id",
	"SELECT e.name, d.dname FROM emp e RIGHT JOIN dept d ON e.deptId = d.id",
	"SELECT e.name, d.dname FROM emp e FULL OUTER JOIN dept d ON e.deptId = d.id",
	"SELECT name FROM emp e LEFT SEMI JOIN dept d ON e.deptId = d.id",
	"SELECT d.dname, avg(e.salary) AS pay FROM emp e JOIN dept d ON e.deptId = d.id GROUP BY d.dname ORDER BY pay DESC",
	"SELECT name FROM emp WHERE deptId IS NULL",
	"SELECT name FROM emp WHERE deptId IN (1, 3) AND salary BETWEEN 1200 AND 1600 ORDER BY name LIMIT 10",
	"SELECT name FROM emp WHERE name LIKE 'emp00%' ORDER BY name",
	"SELECT CASE WHEN salary > 1700 THEN 'high' WHEN salary > 1300 THEN 'mid' ELSE 'low' END AS band, count(*) FROM emp GROUP BY CASE WHEN salary > 1700 THEN 'high' WHEN salary > 1300 THEN 'mid' ELSE 'low' END",
	"SELECT DISTINCT deptId FROM emp",
	"SELECT name FROM emp WHERE salary > 1800 UNION ALL SELECT dname FROM dept",
	"SELECT x.n FROM (SELECT deptId AS d, count(*) AS n FROM emp GROUP BY deptId) x WHERE x.n > 10",
	"SELECT upper(name), length(name), substr(name, 1, 3) FROM emp LIMIT 5",
	"SELECT a.name, b.name FROM emp a JOIN emp b ON a.deptId = b.deptId WHERE a.id < b.id AND a.salary > 1850",
	"SELECT hired, count(*) FROM emp WHERE hired > '2011-01-01' GROUP BY hired ORDER BY hired LIMIT 5",
	"SELECT coalesce(deptId, -1), count(*) FROM emp GROUP BY coalesce(deptId, -1)",
}

func canonical(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if f, ok := v.(float64); ok {
				parts[j] = fmt.Sprintf("%.6f", f)
			} else {
				parts[j] = row.FormatValue(v)
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestOptimizationPreservesSemantics is the repository's core differential
// test: every query returns identical rows with all Catalyst optimizations
// and codegen enabled, with everything disabled, and in Shark mode.
func TestOptimizationPreservesSemantics(t *testing.T) {
	configs := map[string]Config{
		"full":  DefaultConfig(),
		"shark": SharkConfig(),
		"bare": {
			Codegen: false, LogicalOptimization: false,
			SourcePushdown: false, PipelineCollapse: false,
			BroadcastThreshold: 1, // force shuffled joins
		},
		"broadcastAll": func() Config {
			c := DefaultConfig()
			c.BroadcastThreshold = 1 << 40
			return c
		}(),
	}
	results := map[string]map[string][]string{}
	for name, cfg := range configs {
		ctx := NewContextWithConfig(cfg)
		setupBenchTables(t, ctx)
		results[name] = map[string][]string{}
		for _, q := range differentialQueries {
			df, err := ctx.SQL(q)
			if err != nil {
				t.Fatalf("[%s] %s: %v", name, q, err)
			}
			rows, err := df.Collect()
			if err != nil {
				t.Fatalf("[%s] %s: %v", name, q, err)
			}
			results[name][q] = canonical(rows)
		}
	}
	base := results["full"]
	for name, byQuery := range results {
		for q, rows := range byQuery {
			if len(rows) != len(base[q]) {
				t.Errorf("[%s] %s: %d rows vs %d (full)", name, q, len(rows), len(base[q]))
				continue
			}
			for i := range rows {
				if rows[i] != base[q][i] {
					t.Errorf("[%s] %s: row %d differs:\n  %s\n  %s", name, q, i, rows[i], base[q][i])
					break
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// The paper's §4.4.2 Point UDT, verbatim: two-dimensional points stored as
// two DOUBLEs, recognized inside native objects, queryable, cacheable.

type Point struct {
	X, Y float64
}

type PointUDT struct{}

func (PointUDT) TypeName() string { return "Point" }
func (PointUDT) SQLType() types.DataType {
	return types.StructType{}.
		Add("x", types.Double, false).
		Add("y", types.Double, false)
}
func (PointUDT) Serialize(obj any) (any, error) {
	p := obj.(Point)
	return row.Row{p.X, p.Y}, nil
}
func (PointUDT) Deserialize(v any) (any, error) {
	r := v.(row.Row)
	return Point{X: r[0].(float64), Y: r[1].(float64)}, nil
}

type Place struct {
	Name string
	Loc  Point
}

func TestPointUDTEndToEnd(t *testing.T) {
	ctx := NewContext()
	if err := ctx.RegisterUDT(PointUDT{}); err != nil {
		t.Fatal(err)
	}
	// Points are recognized within native objects (paper: "Points will be
	// recognized within native objects that Spark SQL is asked to convert
	// to DataFrames").
	df, err := ctx.CreateDataFrameFromStructs([]Place{
		{"a", Point{1, 2}},
		{"b", Point{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The column is queryable as its built-in structure.
	df.RegisterTempTable("places")
	res, err := ctx.SQL("SELECT Loc.x, Loc.y FROM places WHERE Loc.x > 2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != 3.0 || rows[0][1] != 4.0 {
		t.Fatalf("rows = %v", rows)
	}
	// Caching stores the point's fields as separate columns (the paper:
	// "compressing x and y as separate columns").
	info, err := df.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 2 {
		t.Fatalf("cache info = %+v", info)
	}
	n, err := df.Count()
	if err != nil || n != 2 {
		t.Fatalf("count after cache = %d, %v", n, err)
	}
	// UDFs can operate on the type (deserializing the struct form).
	dist := UDFColumn("dist", func(args []any) any {
		r := args[0].(row.Row)
		p := Point{X: r[0].(float64), Y: r[1].(float64)}
		return p.X + p.Y
	}, []DataType{PointUDT{}.SQLType()}, DoubleType, Col("Loc"))
	sel, err := df.Select(dist.As("d"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err = sel.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 3.0 || rows[1][0] != 7.0 {
		t.Fatalf("udf over UDT = %v", rows)
	}
}

// ---------------------------------------------------------------------------
// DECIMAL end-to-end: the §4.3.2 DecimalAggregates rewrite must not change
// SUM results.

func TestDecimalSumEndToEnd(t *testing.T) {
	schema := StructType{}.Add("amount", DecimalType(5, 2), true)
	rows := []Row{
		{types.NewDecimal(1050, 2)}, // 10.50
		{types.NewDecimal(299, 2)},  // 2.99
		{nil},
		{types.NewDecimal(-151, 2)}, // -1.51
	}
	for _, optimized := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.LogicalOptimization = optimized
		ctx := NewContextWithConfig(cfg)
		df, err := ctx.CreateDataFrame(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		df.RegisterTempTable("sales")
		res, err := ctx.SQL("SELECT sum(amount) FROM sales")
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Collect()
		if err != nil {
			t.Fatal(err)
		}
		d := got[0][0].(types.Decimal)
		if d.String() != "11.98" {
			t.Fatalf("optimized=%v sum = %s, want 11.98", optimized, d)
		}
	}
	// The optimized plan really uses the unscaled-LONG rewrite.
	ctx := NewContext()
	df, _ := ctx.CreateDataFrame(schema, rows)
	df.RegisterTempTable("sales")
	res, _ := ctx.SQL("SELECT sum(amount) FROM sales")
	explain, err := res.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "unscaled") {
		t.Fatalf("DecimalAggregates not visible in plan:\n%s", explain)
	}
}

// ---------------------------------------------------------------------------
// Additional facade behaviours.

func TestWithColumnAndSelectExpr(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, _ := ctx.Table("emp")
	df2, err := df.WithColumn("bonus", Col("salary").Times(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(df2.Columns()) != 6 {
		t.Fatalf("columns = %v", df2.Columns())
	}
	// Replacing an existing column keeps the arity.
	df3, err := df2.WithColumn("bonus", Col("salary").Times(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(df3.Columns()) != 6 {
		t.Fatalf("columns = %v", df3.Columns())
	}
	se, err := df.SelectExpr("salary * 2 AS dbl", "upper(name)")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := se.Take(1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].(float64) <= 0 {
		t.Fatalf("selectExpr = %v", rows)
	}
}

func TestDSLSelfJoinViaAlias(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, _ := ctx.Table("emp")
	a, err := df.Alias("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.Alias("b")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := a.Join(b, Col("a.id").EQ(Col("b.id")))
	if err != nil {
		t.Fatal(err)
	}
	n, err := joined.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("self equi-join rows = %d", n)
	}
}

func TestSampleAndDistinctDSL(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, _ := ctx.Table("emp")
	s, err := df.Sample(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := s.Count()
	n2, _ := s.Count()
	if n1 != n2 {
		t.Fatal("sampling must be deterministic")
	}
	if n1 < 50 || n1 > 150 {
		t.Fatalf("sample = %d of 200", n1)
	}
	d, err := df.Select("deptId")
	if err != nil {
		t.Fatal(err)
	}
	dd, err := d.Distinct()
	if err != nil {
		t.Fatal(err)
	}
	n, _ := dd.Count()
	if n != 6 { // 5 departments + NULL
		t.Fatalf("distinct deptIds = %d", n)
	}
}

func TestWriterCSVRoundTrip(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, _ := ctx.Table("emp")
	sel, _ := df.Select("name", "salary")
	path := t.TempDir() + "/out.csv"
	if err := sel.Write().CSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := ctx.Read().CSV(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := back.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("round-trip rows = %d", n)
	}
}

func TestRangeDataFrame(t *testing.T) {
	ctx := NewContext()
	df := ctx.Range(1000)
	agg, err := df.Agg(Sum(Col("id")).As("s"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := agg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(499500) {
		t.Fatalf("sum(range(1000)) = %v", rows[0][0])
	}
}

func TestExplainPhases(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, err := ctx.SQL("SELECT name FROM emp WHERE salary > 1500")
	if err != nil {
		t.Fatal(err)
	}
	explain, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"Logical Plan", "Analyzed Plan", "Optimized Plan", "Physical Plan"} {
		if !strings.Contains(explain, section) {
			t.Errorf("explain missing %q", section)
		}
	}
	if !strings.Contains(explain, "WholeStagePipeline") {
		t.Errorf("project+filter should fuse:\n%s", explain)
	}
}

func TestBadSQLReportsPosition(t *testing.T) {
	ctx := NewContext()
	if _, err := ctx.SQL("SELEC name FROM emp"); err == nil {
		t.Fatal("typo must fail")
	}
	setupBenchTables(t, ctx)
	_, err := ctx.SQL("SELECT nosuch FROM emp")
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupedDataConvenience(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)
	df, _ := ctx.Table("emp")
	for _, f := range []func() (*DataFrame, error){
		func() (*DataFrame, error) { return df.GroupBy("deptId").Count() },
		func() (*DataFrame, error) { return df.GroupBy("deptId").Sum("salary") },
		func() (*DataFrame, error) { return df.GroupBy("deptId").Max("salary") },
		func() (*DataFrame, error) { return df.GroupBy("deptId").Min("salary") },
		func() (*DataFrame, error) { return df.GroupBy("deptId").Avg("salary") },
	} {
		g, err := f()
		if err != nil {
			t.Fatal(err)
		}
		n, err := g.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 6 {
			t.Fatalf("groups = %d", n)
		}
	}
}

// TestTableUDF exercises the paper's §3.7 MADLib-style table functions:
// a table-valued function registered inline, used in FROM, whose body uses
// the full DataFrame API.
func TestTableUDF(t *testing.T) {
	ctx := NewContext()
	setupBenchTables(t, ctx)

	// topPaid(emp): the three best-paid employees per department.
	ctx.RegisterTableUDF("wellpaid", func(args []*DataFrame) (*DataFrame, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("wellpaid expects 1 table, got %d", len(args))
		}
		return args[0].Where(Col("salary").Gt(1800.0))
	})

	df, err := ctx.SQL("SELECT count(*) FROM wellpaid(emp)")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctx.SQL("SELECT count(*) FROM emp WHERE salary > 1800")
	if err != nil {
		t.Fatal(err)
	}
	wrows, _ := want.Collect()
	if rows[0][0] != wrows[0][0] {
		t.Fatalf("table UDF result %v != direct %v", rows[0][0], wrows[0][0])
	}

	// Composes with the rest of the query (join against the function's
	// output, qualified references work via the function-name alias).
	df, err = ctx.SQL(`
		SELECT d.dname, count(*) FROM wellpaid(emp) w
		JOIN dept d ON w.deptId = d.id
		GROUP BY d.dname`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}

	// Unknown function and unknown argument table produce clear errors.
	if _, err := ctx.SQL("SELECT * FROM nosuchfn(emp)"); err == nil ||
		!strings.Contains(err.Error(), "nosuchfn") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ctx.SQL("SELECT * FROM wellpaid(nosuchtable)"); err == nil {
		t.Fatal("unknown argument table must fail")
	}
	// Error from the function body surfaces.
	if _, err := ctx.SQL("SELECT * FROM wellpaid(emp, dept)"); err == nil ||
		!strings.Contains(err.Error(), "expects 1 table") {
		t.Fatalf("err = %v", err)
	}
}

// TestInsertIntoDataSource exercises the §4.4.1 write-side interface:
// DataFrame rows flow into an InsertableRelation (here the federated
// database).
func TestInsertIntoDataSource(t *testing.T) {
	db := memdb.New()
	db.CreateTable("sink", types.StructType{}.
		Add("id", types.Long, false).
		Add("name", types.String, false), nil)
	ctx := NewContext()
	ctx.RegisterDataSource("jdbc", memdb.Provider(db))
	if _, err := ctx.SQL("CREATE TEMPORARY TABLE sink USING jdbc OPTIONS(`table` 'sink')"); err != nil {
		t.Fatal(err)
	}

	src, err := ctx.CreateDataFrame(
		StructType{}.Add("id", LongType, false).Add("name", StringType, false),
		[]Row{{int64(1), "a"}, {int64(2), "b"}, {int64(3), "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write().InsertInto("sink"); err != nil {
		t.Fatal(err)
	}
	// Read back through SQL.
	got, err := ctx.SQL("SELECT count(*) FROM sink WHERE id > 1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(2) {
		t.Fatalf("rows after insert = %v", rows)
	}
	// Arity mismatch is rejected.
	narrow, _ := src.Select("id")
	if err := narrow.Write().InsertInto("sink"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// Non-source tables are rejected.
	src.RegisterTempTable("plain")
	if err := src.Write().InsertInto("plain"); err == nil {
		t.Fatal("non-datasource target must fail")
	}
}

// catalystProbe is a CatalystScan relation recording the expression trees
// pushed to it — §4.4.1's fourth, most powerful interface.
type catalystProbe struct {
	schema   types.StructType
	rows     []Row
	gotCols  []string
	gotPreds int
	sawLike  bool
}

func (c *catalystProbe) Schema() types.StructType { return c.schema }
func (c *catalystProbe) ScanCatalyst(columns []string, predicates []expr.Expression) (datasource.Scan, error) {
	c.gotCols = columns
	c.gotPreds = len(predicates)
	for _, p := range predicates {
		if strings.Contains(p.String(), "LIKE") {
			c.sawLike = true
		}
	}
	rows := c.rows
	schema := c.schema
	ords := make([]int, len(columns))
	for i, col := range columns {
		ords[i] = schema.FieldIndex(col)
	}
	return datasource.Scan{
		NumPartitions: 1,
		Partition: func(int) []Row {
			out := make([]Row, len(rows))
			for i, r := range rows {
				proj := make(Row, len(ords))
				for j, o := range ords {
					proj[j] = r[o]
				}
				out[i] = proj
			}
			return out
		},
	}, nil
}

func TestCatalystScanReceivesExpressionTrees(t *testing.T) {
	probe := &catalystProbe{
		schema: types.StructType{}.
			Add("name", types.String, false).
			Add("v", types.Int, false),
		rows: []Row{{"a%b_c", int32(1)}, {"plain", int32(2)}},
	}
	ctx := NewContext()
	ctx.RegisterDataSource("probe", datasource.ProviderFunc(
		func(map[string]string) (datasource.Relation, error) { return probe, nil }))
	if _, err := ctx.SQL("CREATE TEMPORARY TABLE p USING probe"); err != nil {
		t.Fatal(err)
	}
	// An interior-wildcard LIKE cannot be expressed in the simple Filter
	// algebra — only CatalystScan sees it, as a full expression tree.
	df, err := ctx.SQL("SELECT name FROM p WHERE name LIKE 'a%b%c' AND v > 0")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Predicates are advisory: the engine keeps the residual filter, so
	// results are exact even if the source ignored them.
	if len(rows) != 1 || rows[0][0] != "a%b_c" {
		t.Fatalf("rows = %v", rows)
	}
	if probe.gotPreds < 2 || !probe.sawLike {
		t.Fatalf("CatalystScan should receive expression trees: n=%d sawLike=%v",
			probe.gotPreds, probe.sawLike)
	}
	// Column pruning also flows through.
	for _, col := range probe.gotCols {
		if col != "name" && col != "v" {
			t.Fatalf("cols = %v", probe.gotCols)
		}
	}
}
