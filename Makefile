.PHONY: check test bench

# Full gate: vet + build + race tests + one-iteration benchmark smoke.
check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -run '^$$' -bench . -benchmem ./...
