package sparksql

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// starSchemaContext registers a deterministic 3-table star schema: a fact
// table and two dimensions, where dim1 is small (20 rows) and dim2 is much
// larger (1000 rows) but the test query filters dim2 down to one name.
// Per-column statistics are what tell the optimizer that the filtered dim2
// is the smaller join input; without them the size-only guess prefers dim1.
func starSchemaContext(t *testing.T, cfg Config) *Context {
	t.Helper()
	ctx := NewContextWithConfig(cfg)

	fact := StructType{}.
		Add("f_id", LongType, false).
		Add("d1_k", LongType, false).
		Add("d2_k", LongType, false).
		Add("amount", DoubleType, false)
	var factRows []Row
	for i := int64(0); i < 5000; i++ {
		factRows = append(factRows, Row{i, i % 20, i % 1000, float64(i%97) / 2})
	}
	df, err := ctx.CreateDataFrame(fact, factRows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("fact")

	dim1 := StructType{}.
		Add("d1_k", LongType, false).
		Add("d1_name", StringType, false)
	var dim1Rows []Row
	for i := int64(0); i < 20; i++ {
		dim1Rows = append(dim1Rows, Row{i, "d1-" + string(rune('a'+i))})
	}
	df, err = ctx.CreateDataFrame(dim1, dim1Rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("dim1")

	dim2 := StructType{}.
		Add("d2_k", LongType, false).
		Add("d2_name", StringType, false)
	var dim2Rows []Row
	for i := int64(0); i < 1000; i++ {
		dim2Rows = append(dim2Rows, Row{i, "d2-" + strings.Repeat("x", int(i%7)) + string(rune('0'+i%10))})
	}
	df, err = ctx.CreateDataFrame(dim2, dim2Rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("dim2")
	return ctx
}

func analyzeStarSchema(t *testing.T, ctx *Context) {
	t.Helper()
	for _, name := range []string{"fact", "dim1", "dim2"} {
		if _, err := ctx.SQL("ANALYZE TABLE " + name + " COMPUTE STATISTICS"); err != nil {
			t.Fatal(err)
		}
	}
}

const starQuery = `SELECT f_id, d1_name, d2_name, amount
FROM fact
JOIN dim1 ON fact.d1_k = dim1.d1_k
JOIN dim2 ON fact.d2_k = dim2.d2_k
WHERE d2_name = 'd2-xxx3'
ORDER BY f_id`

// explainText runs EXPLAIN <starQuery> through the SQL front end and
// reassembles the returned rows into the plan text.
func explainText(t *testing.T, ctx *Context) string {
	t.Helper()
	df, err := ctx.SQL("EXPLAIN " + starQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r[0].(string))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// attrIDs normalizes expression IDs (#42 -> #N) so golden files survive
// unrelated ID-counter drift across test runs and orderings.
var attrIDs = regexp.MustCompile(`#\d+`)

func normalizePlan(s string) string { return attrIDs.ReplaceAllString(s, "#N") }

// TestExplainStarSchemaGolden pins the full annotated EXPLAIN output of a
// star-schema query after ANALYZE: every resolved node carries an est:
// annotation and the join order reflects the statistics (fact joins the
// filtered dim2 — estimated at a handful of rows via 1/NDV equality
// selectivity — before the 20-row dim1).
func TestExplainStarSchemaGolden(t *testing.T) {
	ctx := starSchemaContext(t, DefaultConfig())
	analyzeStarSchema(t, ctx)
	got := normalizePlan(explainText(t, ctx))

	golden := filepath.Join("testdata", "explain_star_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("EXPLAIN output differs from golden (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Structural assertions, independent of the golden bytes: every line of
	// the optimized plan is annotated.
	sections := strings.Split(got, "== ")
	var optimized string
	for _, s := range sections {
		if strings.HasPrefix(s, "Optimized Plan ==") {
			optimized = s
		}
	}
	if optimized == "" {
		t.Fatal("no optimized section in EXPLAIN output")
	}
	for _, line := range strings.Split(optimized, "\n")[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.Contains(line, "est: ") {
			t.Fatalf("optimized plan line lacks est: annotation: %q", line)
		}
	}
}

// TestJoinReorderChangesPlanNotResults is the end-to-end acceptance check:
// with collected statistics the join order changes relative to the
// reorder-disabled plan, while the query result stays byte-identical.
func TestJoinReorderChangesPlanNotResults(t *testing.T) {
	on := starSchemaContext(t, DefaultConfig())
	analyzeStarSchema(t, on)
	cfgOff := DefaultConfig()
	cfgOff.JoinReorder = false
	off := starSchemaContext(t, cfgOff)
	analyzeStarSchema(t, off)

	onPlan := normalizePlan(explainText(t, on))
	offPlan := normalizePlan(explainText(t, off))
	if onPlan == offPlan {
		t.Fatal("join reordering changed nothing on the star schema")
	}

	// In the reordered plan the deepest join must pair fact with the
	// filtered dim2; in the original order it pairs fact with dim1.
	deepestJoinLine := func(text string) string {
		var sections []string
		for _, s := range strings.Split(text, "== ") {
			if strings.HasPrefix(s, "Optimized Plan ==") {
				sections = append(sections, s)
			}
		}
		if len(sections) != 1 {
			t.Fatal("no optimized section")
		}
		last := ""
		for _, line := range strings.Split(sections[0], "\n") {
			if strings.Contains(line, "Join") {
				last = line
			}
		}
		return last
	}
	onDeep, offDeep := deepestJoinLine(onPlan), deepestJoinLine(offPlan)
	if !strings.Contains(onDeep, "d2_k") {
		t.Fatalf("reordered deepest join should use d2_k: %q", onDeep)
	}
	if !strings.Contains(offDeep, "d1_k") {
		t.Fatalf("original deepest join should use d1_k: %q", offDeep)
	}

	// Same rows, same order, byte for byte.
	run := func(ctx *Context) []Row {
		df, err := ctx.SQL(starQuery)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := df.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	onRows, offRows := run(on), run(off)
	if len(onRows) == 0 {
		t.Fatal("query returned no rows; the filter literal must match seeded data")
	}
	if !reflect.DeepEqual(onRows, offRows) {
		t.Fatalf("reordering changed results: %d vs %d rows", len(onRows), len(offRows))
	}
}
